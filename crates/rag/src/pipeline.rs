//! The end-to-end RAG pipeline and its latency harness.
//!
//! Lab 13 / Assignment 4: "Deploy real-time RAG inference pipeline" and
//! "optimize end-to-end RAG pipelines for efficient real-time GPU
//! inference". The pipeline here is the full loop — embed query → retrieve
//! top-k → assemble context → generate — with every stage's simulated GPU
//! time recorded, single-query and batched, plus a workload driver that
//! reports the p50/p99 latency and throughput numbers the lab rubric asks
//! students to optimize.

use crate::corpus::Corpus;
use crate::embed::Embedder;
use crate::generate::MarkovGenerator;
use crate::index::{RetrievalIndex, SearchHit};
use sagegpu_tensor::gpu_exec::GpuExecutor;
use std::sync::Arc;
use taskflow::{LocalCluster, TaskError};

/// One answered query.
#[derive(Debug, Clone)]
pub struct RagResponse {
    pub query: String,
    pub answer: String,
    pub hits: Vec<SearchHit>,
    /// Simulated retrieval time (ns).
    pub retrieve_ns: u64,
    /// Simulated generation time (ns).
    pub generate_ns: u64,
}

impl RagResponse {
    /// Total simulated latency.
    pub fn total_ns(&self) -> u64 {
        self.retrieve_ns + self.generate_ns
    }
}

/// Latency distribution over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    pub queries: usize,
    pub p50_us: f64,
    pub p99_us: f64,
    pub mean_us: f64,
    /// Queries per simulated second.
    pub throughput_qps: f64,
    /// Mean fraction of latency spent retrieving.
    pub retrieve_fraction: f64,
}

/// The assembled RAG service, generic over any read-path index shape
/// (flat, IVF, IVF-PQ, or multi-GPU sharded).
pub struct RagPipeline<I: RetrievalIndex> {
    pub embedder: Embedder,
    pub index: I,
    pub generator: MarkovGenerator,
    pub corpus: Corpus,
    gpu: GpuExecutor,
    /// Retrieved documents per query.
    pub top_k: usize,
    /// Generated answer length in tokens.
    pub answer_tokens: usize,
}

impl<I: RetrievalIndex> RagPipeline<I> {
    /// Assembles a pipeline over a pre-built index.
    pub fn new(
        embedder: Embedder,
        index: I,
        generator: MarkovGenerator,
        corpus: Corpus,
        gpu: GpuExecutor,
    ) -> Self {
        Self {
            embedder,
            index,
            generator,
            corpus,
            gpu,
            top_k: 3,
            answer_tokens: 24,
        }
    }

    /// The simulated GPU this pipeline charges.
    pub fn gpu(&self) -> &GpuExecutor {
        &self.gpu
    }

    /// Assembles the generation context from retrieved hits.
    pub fn context_of(&self, hits: &[SearchHit]) -> String {
        hits.iter()
            .filter_map(|h| self.corpus.get(h.doc_id))
            .map(|d| d.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Embeds `query` and retrieves its top-k hits plus assembled context —
    /// the cacheable front half of the pipeline.
    pub fn retrieve(&self, query: &str) -> (Vec<SearchHit>, String) {
        let qv = self.embedder.embed(query);
        let hits = self.index.search(&qv, self.top_k);
        let ctx = self.context_of(&hits);
        (hits, ctx)
    }

    /// Batched [`retrieve`](Self::retrieve): all queries embed first, then
    /// search as one [`RetrievalIndex::search_batch`] call, so GPU-backed
    /// indexes score them through their batched device kernels instead of
    /// rebuilding per-query work. Hits are bit-identical to per-query
    /// `retrieve`.
    pub fn retrieve_batch(&self, queries: &[&str]) -> Vec<(Vec<SearchHit>, String)> {
        let embedded: Vec<Vec<f32>> = queries.iter().map(|q| self.embedder.embed(q)).collect();
        self.index
            .search_batch(&embedded, self.top_k)
            .into_iter()
            .map(|hits| {
                let ctx = self.context_of(&hits);
                (hits, ctx)
            })
            .collect()
    }

    /// Answers one query, recording per-stage simulated time.
    pub fn answer(&self, query: &str, seed: u64) -> RagResponse {
        let t0 = self.gpu.gpu().now_ns();
        let (hits, context) = self.retrieve(query);
        let t1 = self.gpu.gpu().now_ns();
        let answers = self.generator.generate_batch_on_gpu(
            &self.gpu,
            &[context.as_str()],
            self.answer_tokens,
            seed,
        );
        let t2 = self.gpu.gpu().now_ns();
        RagResponse {
            query: query.to_owned(),
            answer: answers.into_iter().next().unwrap_or_default(),
            hits,
            retrieve_ns: t1 - t0,
            generate_ns: t2 - t1,
        }
    }

    /// Answers a batch in one generation pass (shared decode steps) —
    /// the optimization Lab 13 asks for.
    pub fn answer_batch(&self, queries: &[&str], seed: u64) -> Vec<RagResponse> {
        if queries.is_empty() {
            return Vec::new();
        }
        let t0 = self.gpu.gpu().now_ns();
        let per_query: Vec<(Vec<SearchHit>, String)> =
            queries.iter().map(|q| self.retrieve(q)).collect();
        let t1 = self.gpu.gpu().now_ns();
        let contexts: Vec<&str> = per_query.iter().map(|(_, c)| c.as_str()).collect();
        let answers =
            self.generator
                .generate_batch_on_gpu(&self.gpu, &contexts, self.answer_tokens, seed);
        let t2 = self.gpu.gpu().now_ns();
        let n = queries.len() as u64;
        queries
            .iter()
            .zip(per_query)
            .zip(answers)
            .enumerate()
            .map(|(i, ((q, (hits, _)), answer))| RagResponse {
                query: (*q).to_owned(),
                answer,
                hits,
                retrieve_ns: split_exact(t1 - t0, n, i as u64),
                generate_ns: split_exact(t2 - t1, n, i as u64),
            })
            .collect()
    }

    /// Drives `queries` through the pipeline with the given batch size and
    /// summarizes the latency distribution.
    pub fn run_workload(&self, queries: &[String], batch_size: usize, seed: u64) -> LatencyReport {
        let start = self.gpu.gpu().now_ns();
        let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries.len());
        let mut retrieve_total = 0u64;
        let mut total = 0u64;
        let batch_size = batch_size.max(1);
        for (b, chunk) in queries.chunks(batch_size).enumerate() {
            let refs: Vec<&str> = chunk.iter().map(|s| s.as_str()).collect();
            let responses = self.answer_batch(&refs, seed.wrapping_add(b as u64));
            for r in responses {
                latencies_ns.push(r.total_ns());
                retrieve_total += r.retrieve_ns;
                total += r.total_ns();
            }
        }
        let end = self.gpu.gpu().now_ns();
        let span_s = (end - start) as f64 * 1e-9;
        summarize(queries.len(), latencies_ns, retrieve_total, total, span_s)
    }
}

impl<I: RetrievalIndex + 'static> RagPipeline<I> {
    /// [`run_workload`](Self::run_workload) with batches dispatched as
    /// cluster tasks — the serving deployment of Assignment 4, where a
    /// request router spreads query batches over a worker pool. On a
    /// single-worker cluster this reproduces `run_workload` exactly; with
    /// more workers, batches overlap on the shared simulated device and
    /// per-query latencies include that interference.
    ///
    /// A batch whose retry budget is exhausted (injected faults, panics,
    /// deadlines) surfaces its [`TaskError`] instead of panicking the
    /// workload; callers composing layers lift it into
    /// `sagegpu_core::error::SageError` via `?`.
    pub fn run_workload_on(
        self: &Arc<Self>,
        cluster: &LocalCluster,
        queries: &[String],
        batch_size: usize,
        seed: u64,
    ) -> Result<LatencyReport, TaskError> {
        let start = self.gpu.gpu().now_ns();
        let batch_size = batch_size.max(1);
        let futures: Vec<_> = queries
            .chunks(batch_size)
            .enumerate()
            .map(|(b, chunk)| {
                let pipe = Arc::clone(self);
                let chunk: Vec<String> = chunk.to_vec();
                let batch_seed = seed.wrapping_add(b as u64);
                cluster.submit(move |_ctx| {
                    let refs: Vec<&str> = chunk.iter().map(|s| s.as_str()).collect();
                    pipe.answer_batch(&refs, batch_seed)
                })
            })
            .collect();
        let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries.len());
        let mut retrieve_total = 0u64;
        let mut total = 0u64;
        for responses in cluster.gather(futures)? {
            for r in responses {
                latencies_ns.push(r.total_ns());
                retrieve_total += r.retrieve_ns;
                total += r.total_ns();
            }
        }
        let end = self.gpu.gpu().now_ns();
        let span_s = (end - start) as f64 * 1e-9;
        Ok(summarize(
            queries.len(),
            latencies_ns,
            retrieve_total,
            total,
            span_s,
        ))
    }
}

/// Share `i` of `span` split across `n` ways with the remainder spread over
/// the first `span % n` shares, so the shares sum to `span` exactly.
pub(crate) fn split_exact(span: u64, n: u64, i: u64) -> u64 {
    span / n + u64::from(i < span % n)
}

/// Ceil-based nearest-rank percentile — the ⌈p·N⌉-th smallest sample — so
/// small samples never report below the true rank (p99 of 100 samples is
/// the 99th value, not the 98th that `round()` could pick).
pub(crate) fn percentile_ns(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() as f64 * p).ceil().max(1.0) as usize;
    sorted_ns[rank.min(sorted_ns.len()) - 1]
}

/// Folds raw per-query numbers into a [`LatencyReport`].
fn summarize(
    queries: usize,
    mut latencies_ns: Vec<u64>,
    retrieve_total: u64,
    total: u64,
    span_s: f64,
) -> LatencyReport {
    latencies_ns.sort_unstable();
    let pct = |p: f64| -> f64 { percentile_ns(&latencies_ns, p) as f64 / 1e3 };
    LatencyReport {
        queries,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mean_us: if latencies_ns.is_empty() {
            0.0
        } else {
            latencies_ns.iter().sum::<u64>() as f64 / latencies_ns.len() as f64 / 1e3
        },
        throughput_qps: if span_s > 0.0 {
            queries as f64 / span_s
        } else {
            0.0
        },
        retrieve_fraction: if total > 0 {
            retrieve_total as f64 / total as f64
        } else {
            0.0
        },
    }
}

/// Builds the standard demo pipeline: synthetic corpus, flat GPU index,
/// Markov generator — the Lab 12 configuration.
pub fn build_flat_pipeline(
    corpus_size: usize,
    embed_dim: usize,
    gpu: GpuExecutor,
    seed: u64,
) -> RagPipeline<crate::index::FlatIndex> {
    use crate::index::VectorIndex;
    let corpus = Corpus::synthetic(corpus_size, 80, seed);
    let embedder = Embedder::new(embed_dim, seed.wrapping_add(1));
    let mut index = crate::index::FlatIndex::with_gpu(embed_dim, gpu.clone());
    for d in corpus.docs() {
        index.add(d.id, embedder.embed(&d.text));
    }
    let generator = MarkovGenerator::train(&corpus.full_text(), 512);
    RagPipeline::new(embedder, index, generator, corpus, gpu)
}

/// Builds the scale-out variant of the demo pipeline: the same synthetic
/// corpus, embedded once and indexed as sharded IVF-PQ across the devices
/// of a simulated cluster. Retrieval scatter-gathers across every device;
/// generation is charged to device 0.
pub fn build_sharded_pipeline(
    corpus_size: usize,
    embed_dim: usize,
    plan: crate::shard::ShardPlan,
    gpus: std::sync::Arc<gpu_sim::GpuCluster>,
    seed: u64,
) -> Result<RagPipeline<crate::shard::ShardedIndex>, crate::error::IndexError> {
    use sagegpu_tensor::TensorError;
    let corpus = Corpus::synthetic(corpus_size, 80, seed);
    let embedder = Embedder::new(embed_dim, seed.wrapping_add(1));
    let data: Vec<(usize, Vec<f32>)> = corpus
        .docs()
        .iter()
        .map(|d| (d.id, embedder.embed(&d.text)))
        .collect();
    let index = crate::shard::ShardedIndex::build(embed_dim, plan, &data, gpus.clone(), seed)?;
    let generator = MarkovGenerator::train(&corpus.full_text(), 512);
    let gpu = GpuExecutor::new(gpus.device(0).map_err(TensorError::from)?.clone());
    Ok(RagPipeline::new(embedder, index, generator, corpus, gpu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Gpu};
    use std::sync::Arc;

    fn gpu() -> GpuExecutor {
        GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())))
    }

    #[test]
    fn answer_retrieves_on_topic_documents() {
        let p = build_flat_pipeline(50, 96, gpu(), 3);
        let q = Corpus::topic_query(0, 6, 17); // CUDA vocabulary
        let r = p.answer(&q, 1);
        assert_eq!(r.hits.len(), 3);
        let on_topic = r
            .hits
            .iter()
            .filter(|h| p.corpus.get(h.doc_id).unwrap().topic == 0)
            .count();
        assert!(on_topic >= 2, "{on_topic}/3 on topic");
        assert!(r.retrieve_ns > 0);
        assert!(r.generate_ns > 0);
        assert!(!r.answer.is_empty());
    }

    #[test]
    fn batching_improves_per_query_generation_latency() {
        let queries: Vec<String> = (0..16)
            .map(|i| Corpus::topic_query(i % 5, 5, i as u64))
            .collect();
        let p_single = build_flat_pipeline(40, 64, gpu(), 5);
        let single = p_single.run_workload(&queries, 1, 0);
        let p_batched = build_flat_pipeline(40, 64, gpu(), 5);
        let batched = p_batched.run_workload(&queries, 16, 0);
        assert!(
            batched.throughput_qps > 1.5 * single.throughput_qps,
            "batched {} qps vs single {} qps",
            batched.throughput_qps,
            single.throughput_qps
        );
        assert!(batched.mean_us < single.mean_us);
    }

    #[test]
    fn latency_report_is_coherent() {
        let p = build_flat_pipeline(30, 64, gpu(), 7);
        let queries: Vec<String> = (0..10)
            .map(|i| Corpus::topic_query(i % 5, 4, i as u64))
            .collect();
        let rep = p.run_workload(&queries, 4, 0);
        assert_eq!(rep.queries, 10);
        assert!(rep.p50_us > 0.0);
        assert!(rep.p99_us >= rep.p50_us);
        assert!(rep.throughput_qps > 0.0);
        assert!((0.0..=1.0).contains(&rep.retrieve_fraction));
    }

    #[test]
    fn empty_batch_is_fine() {
        let p = build_flat_pipeline(10, 32, gpu(), 9);
        assert!(p.answer_batch(&[], 0).is_empty());
        let rep = p.run_workload(&[], 4, 0);
        assert_eq!(rep.queries, 0);
        assert_eq!(rep.p50_us, 0.0);
    }

    #[test]
    fn distributed_workload_matches_sequential_on_one_worker() {
        use taskflow::cluster::ClusterBuilder;
        let queries: Vec<String> = (0..12)
            .map(|i| Corpus::topic_query(i % 5, 4, i as u64))
            .collect();
        let sequential = build_flat_pipeline(30, 64, gpu(), 7).run_workload(&queries, 4, 0);
        let p = Arc::new(build_flat_pipeline(30, 64, gpu(), 7));
        let cluster = ClusterBuilder::new().workers(1).build();
        let distributed = p.run_workload_on(&cluster, &queries, 4, 0).unwrap();
        assert_eq!(distributed, sequential);

        // More workers still answer every query with a coherent report.
        let cluster = ClusterBuilder::new().workers(3).build();
        let rep = p.run_workload_on(&cluster, &queries, 4, 1).unwrap();
        assert_eq!(rep.queries, 12);
        assert!(rep.p99_us >= rep.p50_us);
        assert_eq!(cluster.metrics().total_tasks(), 3, "one task per batch");
    }

    #[test]
    fn batch_latency_attribution_is_exact() {
        // Summed per-query stage times must equal the batch spans exactly
        // (integer division used to drop up to n-1 ns per stage).
        let p = build_flat_pipeline(30, 64, gpu(), 7);
        for n in [1usize, 3, 7] {
            let queries: Vec<String> = (0..n)
                .map(|i| Corpus::topic_query(i % 5, 4, i as u64))
                .collect();
            let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
            let t0 = p.gpu().gpu().now_ns();
            let responses = p.answer_batch(&refs, 0);
            let t1 = p.gpu().gpu().now_ns();
            let retrieve_sum: u64 = responses.iter().map(|r| r.retrieve_ns).sum();
            let generate_sum: u64 = responses.iter().map(|r| r.generate_ns).sum();
            assert_eq!(retrieve_sum + generate_sum, t1 - t0, "batch of {n}");
        }
        // The splitter itself is exact for awkward remainders.
        for (span, n) in [(10u64, 3u64), (7, 7), (5, 4), (0, 2)] {
            let total: u64 = (0..n).map(|i| split_exact(span, n, i)).sum();
            assert_eq!(total, span);
        }
    }

    #[test]
    fn percentiles_use_ceil_nearest_rank() {
        // 100 distinct values 1..=100 µs: p50 must be the 50th smallest
        // (50 µs) and p99 the 99th (99 µs). The old round()-based rank
        // selected index 98.01→98 → 99 µs only by luck on p99 but gave
        // 50.5→50→51 µs at p50 of even-sized samples.
        let ns: Vec<u64> = (1..=100u64).map(|v| v * 1_000).collect();
        assert_eq!(percentile_ns(&ns, 0.50), 50_000);
        assert_eq!(percentile_ns(&ns, 0.99), 99_000);
        assert_eq!(percentile_ns(&ns, 1.0), 100_000);
        // Small sample: p99 of 10 samples is the 10th (max), never the 9th.
        let small: Vec<u64> = (1..=10u64).map(|v| v * 100).collect();
        assert_eq!(percentile_ns(&small, 0.99), 1_000);
        assert_eq!(percentile_ns(&small, 0.50), 500);
        assert_eq!(percentile_ns(&[], 0.5), 0);
        // End-to-end: the report reflects the same rank rule.
        let report = summarize(100, ns, 1, 2, 1.0);
        assert_eq!(report.p50_us, 50.0);
        assert_eq!(report.p99_us, 99.0);
    }

    #[test]
    fn exhausted_retries_surface_error_instead_of_panicking() {
        use taskflow::cluster::ClusterBuilder;
        use taskflow::policy::FaultPlan;
        // Every attempt crashes and there are no retries: the workload must
        // return the task error rather than panic.
        let p = Arc::new(build_flat_pipeline(20, 64, gpu(), 3));
        let cluster = ClusterBuilder::new()
            .workers(2)
            .fault_plan(FaultPlan::crashes(1, 1.0))
            .build();
        let queries: Vec<String> = (0..6)
            .map(|i| Corpus::topic_query(i % 5, 4, i as u64))
            .collect();
        let err = p.run_workload_on(&cluster, &queries, 2, 0).unwrap_err();
        assert!(matches!(err, taskflow::TaskError::Panicked(_)), "{err:?}");
    }

    #[test]
    fn responses_are_deterministic() {
        let q = Corpus::topic_query(2, 5, 33);
        let p1 = build_flat_pipeline(20, 64, gpu(), 11);
        let p2 = build_flat_pipeline(20, 64, gpu(), 11);
        let a = p1.answer(&q, 3);
        let b = p2.answer(&q, 3);
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.total_ns(), b.total_ns());
    }
}
