//! Word tokenization.

/// Lowercases and splits on non-alphanumeric boundaries, dropping empties.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_owned())
        .collect()
}

/// Token count without allocating the tokens.
pub fn token_count(text: &str) -> usize {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("CUDA kernels launch on SMs!"),
            vec!["cuda", "kernels", "launch", "on", "sms"]
        );
    }

    #[test]
    fn handles_punctuation_and_numbers() {
        assert_eq!(
            tokenize("g4dn.xlarge costs $0.526/hr"),
            vec!["g4dn", "xlarge", "costs", "0", "526", "hr"]
        );
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ***").is_empty());
    }

    #[test]
    fn count_matches_tokenize() {
        let text = "The GPU, the whole GPU, and nothing but the GPU.";
        assert_eq!(token_count(text), tokenize(text).len());
    }
}
