//! # sagegpu-rag — retrieval-augmented generation on simulated GPUs
//!
//! Weeks 12–14 of the reproduced course build RAG systems: "experiment
//! with GPU-tuned retrievers and generators to optimize latency and
//! throughput" (§I), with FAISS retrieval in Lab 11, a GPU-enabled
//! retriever + small LLM in Lab 12, and a deployed real-time inference
//! pipeline in Lab 13 / Assignment 4.
//!
//! FAISS and an actual LLM are out of reach offline, so this crate builds
//! the equivalents from scratch:
//!
//! - [`corpus`] — a deterministic synthetic technical corpus (documents
//!   about GPUs, CUDA, cloud infrastructure — the course's own subject
//!   matter) so retrieval quality is meaningfully testable.
//! - [`tokenize`] — lowercase word tokenizer + vocabulary.
//! - [`embed`] — hashed bag-of-words with seeded random projection to a
//!   dense unit vector (a deterministic stand-in for a sentence encoder).
//! - [`index`] — [`index::FlatIndex`] (exact dot-product search, optionally
//!   scored on a simulated GPU) and [`index::IvfIndex`] (k-means coarse
//!   quantizer, `nlist`/`nprobe` — the FAISS IVF design), with recall@k
//!   measurement against the exact baseline.
//! - [`generate`] — a bigram Markov "small LLM" whose decode cost is
//!   charged to the GPU per token (the latency shape of autoregressive
//!   generation).
//! - [`pq`] — product quantization: trained per-subspace codebooks,
//!   asymmetric-distance (ADC) tables, and [`pq::IvfPqIndex`] whose coded
//!   lists live in pooled device memory — corpora far larger than device
//!   memory stay resident (the FAISS `IndexIVFPQ` design).
//! - [`shard`] — [`shard::ShardedIndex`]: inverted lists partitioned
//!   across a simulated multi-GPU cluster (size-balanced greedy placement
//!   by default) with taskflow scatter-gather search and an order-stable
//!   top-k merge tree.
//! - [`residency`] — [`residency::ListResidency`]: tiered list residency
//!   under a device byte budget — hot lists hold pooled leases, cold
//!   lists spill to host and promote charge-on-miss, with clock/LRU
//!   victim selection; results stay bit-identical at every budget.
//! - [`bm25`] — Okapi BM25 lexical retrieval and reciprocal-rank fusion,
//!   the hybrid-retrieval extension the optimization assignment invites.
//! - [`pipeline`] — the end-to-end RAG service: retrieve → assemble
//!   context → generate, single-query and batched, with per-stage
//!   simulated-latency breakdowns and a workload harness reporting
//!   p50/p99/throughput (experiment E20).
//! - [`serve`] — the online serving layer over the pipeline: bounded
//!   admission with load-shedding, dynamic micro-batching, an LRU
//!   retrieval cache, fault-tolerant cluster dispatch with retries, and
//!   per-stage histograms + chrome-trace request spans (experiment A05).

pub mod bm25;
pub mod corpus;
pub mod embed;
pub mod error;
pub mod generate;
pub mod index;
pub mod pipeline;
pub mod pq;
pub mod residency;
pub mod serve;
pub mod shard;
pub mod tokenize;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::bm25::{reciprocal_rank_fusion, Bm25Index};
    pub use crate::corpus::{Corpus, Document};
    pub use crate::embed::Embedder;
    pub use crate::error::IndexError;
    pub use crate::generate::MarkovGenerator;
    pub use crate::index::{
        recall_at_k, FlatIndex, IvfIndex, RetrievalIndex, SearchHit, VectorIndex,
    };
    pub use crate::pipeline::{LatencyReport, RagPipeline, RagResponse};
    pub use crate::pq::{IvfPqIndex, PqCodebook, PqConfig};
    pub use crate::residency::{EvictionPolicy, ListResidency, TierStats};
    pub use crate::serve::{
        CacheStats, RagServer, ResponseHandle, RetrievalCache, ServeError, ServedResponse,
        ServerConfig, ServerReport,
    };
    pub use crate::shard::{Placement, ShardPlan, ShardedIndex};
    pub use crate::tokenize::tokenize;
}
