//! Integration tests for the online serving layer: load-shedding under
//! backpressure, determinism under injected faults, and cache-hit fidelity.

use gpu_sim::{DeviceSpec, Gpu};
use sagegpu_rag::corpus::Corpus;
use sagegpu_rag::pipeline::build_flat_pipeline;
use sagegpu_rag::serve::{RagServer, ServeError, ServerConfig};
use sagegpu_tensor::gpu_exec::GpuExecutor;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use taskflow::{ClusterBuilder, FaultPlan, RetryPolicy};

fn gpu() -> GpuExecutor {
    GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())))
}

#[test]
fn backpressure_sheds_when_the_queue_is_full() {
    let pipeline = Arc::new(build_flat_pipeline(30, 64, gpu(), 7));
    // One worker and a 100%-slow fault plan pin every dispatched batch on
    // the worker for ~300 ms, so the first admissions are still in flight
    // when the later submissions arrive.
    let slow_plan = FaultPlan {
        seed: 1,
        crash_rate: 0.0,
        slow_rate: 1.0,
        drop_rate: 0.0,
        slow_delay: Duration::from_millis(300),
    };
    let cluster = ClusterBuilder::new()
        .workers(1)
        .fault_plan(slow_plan)
        .build();
    let server = RagServer::start(
        pipeline,
        cluster,
        ServerConfig::new()
            .queue_capacity(4)
            .max_batch(2)
            .batch_window(Duration::ZERO),
    );

    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..8 {
        match server.submit(Corpus::topic_query(i % 5, 4, i as u64)) {
            Ok(handle) => admitted.push(handle),
            Err(ServeError::Overloaded {
                in_flight,
                capacity,
            }) => {
                assert_eq!(in_flight, 4);
                assert_eq!(capacity, 4);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(admitted.len(), 4, "capacity bounds admissions exactly");
    assert_eq!(shed, 4);
    assert_eq!(server.shed_count(), 4);

    for handle in admitted {
        let served = handle.wait().expect("slow faults delay but still serve");
        assert!(!served.response.answer.is_empty());
    }
    let report = server.shutdown();
    assert_eq!(report.served, 4);
    assert_eq!(report.failed, 0);
    assert_eq!(report.shed, 4);
}

#[test]
fn seeded_fault_run_returns_the_same_answers_as_a_fault_free_run() {
    let queries: Vec<String> = (0..12)
        .map(|i| Corpus::topic_query(i % 5, 5, i as u64))
        .collect();

    let run = |faults: bool| -> BTreeMap<u64, (String, Vec<usize>)> {
        let pipeline = Arc::new(build_flat_pipeline(30, 64, gpu(), 7));
        let plan = if faults {
            FaultPlan {
                seed: 42,
                crash_rate: 0.2,
                slow_rate: 0.1,
                drop_rate: 0.1,
                slow_delay: Duration::from_millis(1),
            }
        } else {
            FaultPlan::none()
        };
        let cluster = ClusterBuilder::new().workers(3).fault_plan(plan).build();
        let server = RagServer::start(
            pipeline,
            cluster,
            ServerConfig::new()
                .max_batch(4)
                .batch_window(Duration::from_micros(200))
                .retry(RetryPolicy::fixed(10, Duration::ZERO))
                .seed(99),
        );
        let handles: Vec<_> = queries
            .iter()
            .map(|q| server.submit(q.clone()).expect("ample capacity"))
            .collect();
        let mut answers = BTreeMap::new();
        for handle in handles {
            let served = handle.wait().expect("faults are retried, not fatal");
            let doc_ids = served.response.hits.iter().map(|h| h.doc_id).collect();
            answers.insert(served.request_id, (served.response.answer, doc_ids));
        }
        let report = server.shutdown();
        assert_eq!(report.served, 12);
        assert_eq!(report.failed, 0);
        if faults {
            assert!(
                report.retries > 0,
                "the fault plan should have forced at least one retry"
            );
        }
        answers
    };

    let clean = run(false);
    let faulted = run(true);
    assert_eq!(
        clean, faulted,
        "per-request seeding must make answers independent of batching and retries"
    );
}

#[test]
fn cache_hit_returns_identical_hits_to_a_cold_query() {
    let pipeline = Arc::new(build_flat_pipeline(40, 64, gpu(), 5));
    let query = Corpus::topic_query(1, 5, 17);
    let expected_hits = pipeline.retrieve(&query).0;

    let cluster = ClusterBuilder::new().workers(2).build();
    let server = RagServer::start(
        Arc::clone(&pipeline),
        cluster,
        ServerConfig::new().cache_capacity(16),
    );

    // Cold: waits for completion, so the cache is warm before the repeat.
    let cold = server.submit(query.clone()).unwrap().wait().unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(cold.response.hits, expected_hits);
    assert!(cold.response.retrieve_ns > 0);

    let warm = server.submit(query.clone()).unwrap().wait().unwrap();
    assert!(warm.cache_hit, "repeat of an identical query must hit");
    assert_eq!(warm.response.hits, expected_hits, "hits must be identical");
    assert_eq!(
        warm.response.retrieve_ns, 0,
        "a cache hit never touches the index"
    );

    let stats = server.cache_stats();
    assert!(stats.hits >= 1);
    assert!(stats.misses >= 1);
    assert_eq!(stats.entries, 1);

    let report = server.shutdown();
    assert_eq!(report.cache.hits, stats.hits);
    assert_eq!(report.served, 2);
}

#[test]
fn sharded_index_serves_end_to_end() {
    use gpu_sim::{GpuCluster, LinkKind};
    use sagegpu_rag::pipeline::build_sharded_pipeline;
    use sagegpu_rag::pq::PqConfig;
    use sagegpu_rag::shard::ShardPlan;

    let gpus = Arc::new(GpuCluster::homogeneous(4, DeviceSpec::t4(), LinkKind::Pcie));
    let plan = ShardPlan {
        nlist: 16,
        nprobe: 8,
        pq: PqConfig::new(16, 8),
        sample: usize::MAX,
        shards: 4,
        refine: 16,
        placement: sagegpu_rag::shard::Placement::SizeBalanced,
        budget_bytes: None,
    };
    let pipeline =
        Arc::new(build_sharded_pipeline(200, 96, plan, gpus.clone(), 7).expect("builds"));
    let queries: Vec<String> = (0..10)
        .map(|i| Corpus::topic_query(i % 5, 5, i as u64))
        .collect();
    // Offline ground truth before the server exists: the served hits must
    // be exactly what a direct scatter-gather retrieve returns.
    let expected: Vec<_> = queries.iter().map(|q| pipeline.retrieve(q).0).collect();

    let cluster = ClusterBuilder::new().workers(2).build();
    let server = RagServer::start(
        Arc::clone(&pipeline),
        cluster,
        ServerConfig::new()
            .max_batch(4)
            .batch_window(Duration::from_micros(200))
            .cache_capacity(8),
    );
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("ample capacity"))
        .collect();
    for (handle, expected_hits) in handles.into_iter().zip(&expected) {
        let served = handle.wait().expect("sharded retrieval serves");
        assert!(!served.response.answer.is_empty());
        assert_eq!(&served.response.hits, expected_hits);
    }
    let report = server.shutdown();
    assert_eq!(report.served, 10);
    assert_eq!(report.failed, 0);
    // The scatter side really fanned out: more than one device in the
    // retrieval cluster accrued simulated time.
    let busy = gpus.devices().filter(|d| d.now_ns() > 0).count();
    assert!(busy >= 2, "only {busy} devices saw work");
}

#[test]
fn disabled_cache_never_hits() {
    let pipeline = Arc::new(build_flat_pipeline(20, 64, gpu(), 3));
    let cluster = ClusterBuilder::new().workers(1).build();
    let server = RagServer::start(pipeline, cluster, ServerConfig::new().cache_capacity(0));
    let query = Corpus::topic_query(0, 4, 1);
    for _ in 0..3 {
        let served = server.submit(query.clone()).unwrap().wait().unwrap();
        assert!(!served.cache_hit);
        assert!(served.response.retrieve_ns > 0);
    }
    let report = server.shutdown();
    assert_eq!(report.cache.hits, 0);
    assert_eq!(report.cache.entries, 0);
}
