//! Property-based invariants of the RAG stack.

use proptest::prelude::*;
use sagegpu_rag::embed::{cosine, Embedder};
use sagegpu_rag::index::{recall_at_k, FlatIndex, IvfIndex, SearchHit, VectorIndex};
use sagegpu_rag::tokenize::tokenize;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Embeddings of non-empty token sets are unit vectors; empty are zero.
    #[test]
    fn embeddings_normalized(text in "[a-z ]{0,80}", dim in 4usize..128, seed in 0u64..100) {
        let e = Embedder::new(dim, seed);
        let v = e.embed(&text);
        prop_assert_eq!(v.len(), dim);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if tokenize(&text).is_empty() {
            prop_assert_eq!(norm, 0.0);
        } else {
            prop_assert!((norm - 1.0).abs() < 1e-4, "norm {}", norm);
        }
    }

    /// Cosine self-similarity of a non-empty embedding is 1.
    #[test]
    fn self_similarity(words in prop::collection::vec("[a-z]{1,8}", 1..12), seed in 0u64..50) {
        let text = words.join(" ");
        let e = Embedder::new(64, seed);
        let v = e.embed(&text);
        prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-4);
    }

    /// Flat search returns at most k hits, sorted descending, all ids real.
    #[test]
    fn flat_search_wellformed(n in 1usize..80, k in 1usize..20, seed in 0u64..50) {
        let e = Embedder::new(32, seed);
        let mut idx = FlatIndex::new(32);
        for i in 0..n {
            idx.add(i, e.embed(&format!("doc number {i} about topic {}", i % 5)));
        }
        let q = e.embed("topic 3 doc");
        let hits = idx.search(&q, k);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.len() <= n);
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.doc_id < n);
        }
    }

    /// Recall@k is always within [0, 1] and equals 1 against itself.
    #[test]
    fn recall_bounds(ids_a in prop::collection::vec(0usize..100, 0..10), ids_b in prop::collection::vec(0usize..100, 0..10)) {
        let to_hits = |ids: &[usize]| -> Vec<SearchHit> {
            ids.iter().map(|&doc_id| SearchHit { doc_id, score: 0.0 }).collect()
        };
        let a = to_hits(&ids_a);
        let b = to_hits(&ids_b);
        let r = recall_at_k(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(recall_at_k(&a, &a), 1.0);
    }

    /// IVF with full probing has perfect recall against flat.
    #[test]
    fn ivf_full_probe_exact(n in 8usize..60, nlist in 1usize..8, seed in 0u64..20) {
        let e = Embedder::new(48, seed);
        let data: Vec<(usize, Vec<f32>)> = (0..n)
            .map(|i| (i, e.embed(&format!("document {i} topic {}", i % 3))))
            .collect();
        let mut flat = FlatIndex::new(48);
        for (id, v) in &data {
            flat.add(*id, v.clone());
        }
        let ivf = IvfIndex::train(48, nlist, nlist, &data, seed);
        let q = e.embed("topic 1 document");
        let exact = flat.search(&q, 5);
        let approx = ivf.search(&q, 5);
        prop_assert_eq!(recall_at_k(&exact, &approx), 1.0);
    }
}
