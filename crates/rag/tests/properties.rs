//! Property-based invariants of the RAG stack.

use proptest::prelude::*;
use sagegpu_rag::embed::{cosine, Embedder};
use sagegpu_rag::index::{
    recall_at_k, FlatIndex, IvfIndex, RetrievalIndex, SearchHit, VectorIndex,
};
use sagegpu_rag::pq::{IvfPqIndex, PqConfig};
use sagegpu_rag::shard::{Placement, ShardPlan, ShardedIndex};
use sagegpu_rag::tokenize::tokenize;
use std::sync::Arc;

fn embedded_docs(n: usize, dim: usize, seed: u64) -> (Embedder, Vec<(usize, Vec<f32>)>) {
    let e = Embedder::new(dim, seed);
    let data = (0..n)
        .map(|i| (i, e.embed(&format!("document {i} topic {}", i % 3))))
        .collect();
    (e, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Embeddings of non-empty token sets are unit vectors; empty are zero.
    #[test]
    fn embeddings_normalized(text in "[a-z ]{0,80}", dim in 4usize..128, seed in 0u64..100) {
        let e = Embedder::new(dim, seed);
        let v = e.embed(&text);
        prop_assert_eq!(v.len(), dim);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if tokenize(&text).is_empty() {
            prop_assert_eq!(norm, 0.0);
        } else {
            prop_assert!((norm - 1.0).abs() < 1e-4, "norm {}", norm);
        }
    }

    /// Cosine self-similarity of a non-empty embedding is 1.
    #[test]
    fn self_similarity(words in prop::collection::vec("[a-z]{1,8}", 1..12), seed in 0u64..50) {
        let text = words.join(" ");
        let e = Embedder::new(64, seed);
        let v = e.embed(&text);
        prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-4);
    }

    /// Flat search returns at most k hits, sorted descending, all ids real.
    #[test]
    fn flat_search_wellformed(n in 1usize..80, k in 1usize..20, seed in 0u64..50) {
        let e = Embedder::new(32, seed);
        let mut idx = FlatIndex::new(32);
        for i in 0..n {
            idx.add(i, e.embed(&format!("doc number {i} about topic {}", i % 5)));
        }
        let q = e.embed("topic 3 doc");
        let hits = idx.search(&q, k);
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.len() <= n);
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.doc_id < n);
        }
    }

    /// Recall@k is always within [0, 1] and equals 1 against itself.
    #[test]
    fn recall_bounds(ids_a in prop::collection::vec(0usize..100, 0..10), ids_b in prop::collection::vec(0usize..100, 0..10)) {
        let to_hits = |ids: &[usize]| -> Vec<SearchHit> {
            ids.iter().map(|&doc_id| SearchHit { doc_id, score: 0.0 }).collect()
        };
        let a = to_hits(&ids_a);
        let b = to_hits(&ids_b);
        let r = recall_at_k(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(recall_at_k(&a, &a), 1.0);
    }

    /// IVF with full probing has perfect recall against flat.
    #[test]
    fn ivf_full_probe_exact(n in 8usize..60, nlist in 1usize..8, seed in 0u64..20) {
        let e = Embedder::new(48, seed);
        let data: Vec<(usize, Vec<f32>)> = (0..n)
            .map(|i| (i, e.embed(&format!("document {i} topic {}", i % 3))))
            .collect();
        let mut flat = FlatIndex::new(48);
        for (id, v) in &data {
            flat.add(*id, v.clone());
        }
        let ivf = IvfIndex::train(48, nlist, nlist, &data, seed).expect("ivf trains");
        let q = e.embed("topic 1 document");
        let exact = flat.search(&q, 5);
        let approx = ivf.search(&q, 5);
        prop_assert_eq!(recall_at_k(&exact, &approx), 1.0);
    }

    /// Sharded scatter-gather search is bit-identical to a single shard,
    /// for any shard count the cluster can hold: shards partition exactly
    /// the rows one shard would scan, score them with the same ADC
    /// arithmetic, and the merge tree's ranking is a total order — so the
    /// global top-k cannot depend on how candidates were grouped.
    #[test]
    fn sharded_search_is_shard_count_invariant(
        n in 40usize..120,
        shards in 2usize..5,
        nprobe in 1usize..9,
        k in 1usize..12,
        refine in 0usize..20,
        seed in 0u64..10,
    ) {
        use gpu_sim::{DeviceSpec, GpuCluster, LinkKind};
        let (e, data) = embedded_docs(n, 48, seed);
        let plan = |s: usize| ShardPlan {
            nlist: 8,
            nprobe,
            pq: PqConfig::new(8, 6),
            sample: usize::MAX,
            shards: s,
            refine,
            placement: Placement::SizeBalanced,
            budget_bytes: None,
        };
        let cluster = |s: usize| {
            Arc::new(GpuCluster::homogeneous(s, DeviceSpec::t4(), LinkKind::Pcie))
        };
        let one = ShardedIndex::build(48, plan(1), &data, cluster(1), seed).expect("builds");
        let many = ShardedIndex::build(48, plan(shards), &data, cluster(shards), seed)
            .expect("builds");
        let queries: Vec<Vec<f32>> = (0..4)
            .map(|i| e.embed(&format!("topic {} document", i % 3)))
            .collect();
        prop_assert_eq!(one.search_batch(&queries, k), many.search_batch(&queries, k));
    }

    /// Tiered residency moves bytes, never values: for random corpora,
    /// budgets, eviction policies, and query streams, a budgeted index
    /// returns hits bit-identical to the fully-resident one — and the
    /// tier's resident-byte high-water never exceeds the budget.
    #[test]
    fn tiered_search_is_bit_identical_and_respects_budget(
        n in 40usize..120,
        budget_pct in 2u64..120,
        clock in 0u8..2,
        stream in prop::collection::vec(0usize..6, 1..10),
        seed in 0u64..10,
    ) {
        use gpu_sim::{DeviceSpec, Gpu};
        use sagegpu_rag::residency::EvictionPolicy;
        use sagegpu_tensor::gpu_exec::GpuExecutor;
        let (e, data) = embedded_docs(n, 48, seed);
        let exec = || GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
        let train = || {
            IvfPqIndex::train(48, 8, 3, PqConfig::new(8, 6), &data, seed).expect("trains")
        };
        let full = train().with_gpu(exec()).expect("attaches");
        let budget = full.list_code_bytes() * budget_pct / 100;
        let policy = if clock == 1 { EvictionPolicy::Clock } else { EvictionPolicy::Lru };
        let tiered = train().with_gpu_tiered(exec(), budget, policy).expect("attaches");
        for &t in &stream {
            let q = e.embed(&format!("topic {t} document"));
            prop_assert_eq!(full.search(&q, 5), tiered.search(&q, 5));
        }
        let batch: Vec<Vec<f32>> = stream
            .iter()
            .map(|&t| e.embed(&format!("document about topic {t}")))
            .collect();
        prop_assert_eq!(full.search_batch(&batch, 5), tiered.search_batch(&batch, 5));
        let stats = tiered.tier_stats().expect("tier attached");
        prop_assert!(
            stats.high_water_bytes <= stats.budget_bytes,
            "resident high-water {} exceeded budget {}",
            stats.high_water_bytes,
            stats.budget_bytes
        );
        prop_assert!(stats.resident_bytes <= stats.budget_bytes);
        prop_assert!(stats.hits + stats.misses > 0, "stream must touch the tier");
    }

    /// IVF-PQ recall against the exact flat baseline never drops as
    /// nprobe grows: each probe set is a superset of the last, so the
    /// candidate pool only gains rows.
    #[test]
    fn ivfpq_recall_monotone_in_nprobe(n in 60usize..150, seed in 0u64..10) {
        let (e, data) = embedded_docs(n, 48, seed);
        let mut flat = FlatIndex::new(48);
        for (id, v) in &data {
            flat.add(*id, v.clone());
        }
        let mut idx = IvfPqIndex::train(48, 8, 1, PqConfig::new(8, 8), &data, seed)
            .expect("trains");
        let queries: Vec<Vec<f32>> = (0..4)
            .map(|i| e.embed(&format!("topic {} document", i % 3)))
            .collect();
        let exact: Vec<Vec<SearchHit>> = queries.iter().map(|q| flat.search(q, 5)).collect();
        let mut prev = -1.0f64;
        for nprobe in [1usize, 2, 4, 8] {
            idx.set_nprobe(nprobe);
            let mean: f64 = queries
                .iter()
                .zip(&exact)
                .map(|(q, ex)| recall_at_k(ex, &idx.search(q, 5)))
                .sum::<f64>() / queries.len() as f64;
            prop_assert!(
                mean >= prev - 1e-12,
                "recall dropped from {} to {} at nprobe {}", prev, mean, nprobe
            );
            prev = mean;
        }
    }

    /// On a corpus small enough that PQ is lossless (every distinct
    /// residual fits the codebook), full-probe IVF-PQ reproduces the
    /// exact flat top-k: quantization introduces zero error and probing
    /// covers every list, so recall is exactly 1. The PQ score regroups
    /// flat's sum as `query·centroid + query·residual`, which can move
    /// the last ulp — inputs whose flat ranking has a near-tie exactly at
    /// the k boundary are discarded rather than letting fp regrouping
    /// legitimately swap them.
    #[test]
    fn lossless_pq_full_probe_matches_flat(n in 6usize..40, seed in 0u64..10) {
        let (e, data) = embedded_docs(n, 48, seed);
        let mut flat = FlatIndex::new(48);
        for (id, v) in &data {
            flat.add(*id, v.clone());
        }
        let nlist = 4.min(n);
        let idx = IvfPqIndex::train(48, nlist, nlist, PqConfig::new(1, 8), &data, seed)
            .expect("trains");
        let q = e.embed("topic 1 document");
        let exact = flat.search(&q, n);
        prop_assume!((exact[4].score - exact[5].score).abs() > 1e-4);
        prop_assert_eq!(recall_at_k(&exact[..5], &idx.search(&q, 5)), 1.0);
    }
}
