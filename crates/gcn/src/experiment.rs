//! The §III-B experiment harness: sequential vs. distributed sweeps.

use crate::distributed::{train_distributed, PartitionStrategy};
use crate::sequential::train_sequential;
use crate::TrainConfig;
use sagegpu_graph::generators::GraphDataset;
use sagegpu_graph::GraphError;

/// One row of the scaling table (experiment E17/E18).
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Partition / GPU count (1 = sequential baseline).
    pub k: usize,
    /// `"sequential"`, `"metis"`, or `"random"`.
    pub strategy: String,
    pub test_accuracy: f64,
    pub sim_time_ms: f64,
    /// Speedup over the sequential baseline.
    pub speedup: f64,
    pub edge_cut: f64,
    pub balance: f64,
    /// Mean device utilization.
    pub mean_utilization: f64,
    pub final_loss: f32,
}

/// Runs the full §III-B sweep: sequential, then METIS and random
/// partitioning for each k. Returns rows in presentation order.
pub fn scaling_experiment(
    ds: &GraphDataset,
    ks: &[usize],
    cfg: &TrainConfig,
) -> Result<Vec<ScalingRow>, GraphError> {
    let seq = train_sequential(ds, cfg);
    let seq_time = seq.sim_time_ns as f64;
    let mut rows = vec![ScalingRow {
        k: 1,
        strategy: "sequential".to_owned(),
        test_accuracy: seq.test_accuracy,
        sim_time_ms: seq_time / 1e6,
        speedup: 1.0,
        edge_cut: 0.0,
        balance: 1.0,
        mean_utilization: 1.0,
        final_loss: seq.epoch_stats.last().map(|e| e.loss).unwrap_or(0.0),
    }];
    for &k in ks {
        for strategy in [
            PartitionStrategy::Metis,
            PartitionStrategy::Random { seed: 1 },
        ] {
            let r = train_distributed(ds, k, cfg, strategy)?;
            let mean_util = if r.device_utilization.is_empty() {
                0.0
            } else {
                r.device_utilization.iter().sum::<f64>() / r.device_utilization.len() as f64
            };
            rows.push(ScalingRow {
                k,
                strategy: r.strategy.to_owned(),
                test_accuracy: r.test_accuracy,
                sim_time_ms: r.sim_time_ns as f64 / 1e6,
                speedup: seq_time / r.sim_time_ns as f64,
                edge_cut: r.edge_cut,
                balance: r.balance,
                mean_utilization: mean_util,
                final_loss: r.epoch_stats.last().map(|e| e.loss).unwrap_or(0.0),
            });
        }
    }
    Ok(rows)
}

/// Renders the scaling table as aligned text (the `repro` binary's output).
pub fn render_scaling_table(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>2} {:<12} {:>9} {:>12} {:>8} {:>10} {:>8} {:>6} {:>8}\n",
        "k",
        "strategy",
        "test-acc",
        "sim-time(ms)",
        "speedup",
        "edge-cut",
        "balance",
        "util",
        "loss"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>2} {:<12} {:>9.4} {:>12.2} {:>8.2} {:>10.1} {:>8.3} {:>6.2} {:>8.4}\n",
            r.k,
            r.strategy,
            r.test_accuracy,
            r.sim_time_ms,
            r.speedup,
            r.edge_cut,
            r.balance,
            r.mean_utilization,
            r.final_loss
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagegpu_graph::generators::{sbm, SbmParams};

    #[test]
    fn sweep_produces_expected_rows() {
        let ds = sbm(
            &SbmParams {
                block_sizes: vec![40, 40],
                p_in: 0.2,
                p_out: 0.02,
                feature_dim: 8,
                feature_separation: 1.5,
                train_fraction: 0.5,
            },
            5,
        )
        .unwrap();
        let rows = scaling_experiment(
            &ds,
            &[2],
            &TrainConfig {
                epochs: 10,
                ..Default::default()
            },
        )
        .unwrap();
        // 1 sequential + metis + random.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].strategy, "sequential");
        assert_eq!(rows[0].speedup, 1.0);
        assert!(rows.iter().any(|r| r.strategy == "metis"));
        assert!(rows.iter().any(|r| r.strategy == "random"));
        let table = render_scaling_table(&rows);
        assert!(table.contains("metis"));
        assert!(table.contains("speedup"));
    }
}
