//! Algorithm 1: distributed GCN training over partitioned subgraphs.

use crate::sequential::{dataset_adjacency, dataset_features, epoch_profile, infer};
use crate::{EpochStats, TrainConfig};
use gpu_sim::{DeviceSpec, GpuCluster, LaunchConfig, LinkKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sagegpu_graph::generators::GraphDataset;
use sagegpu_graph::normalize::normalized_adjacency;
use sagegpu_graph::partition::{edge_cut, metis_partition, partition_balance, random_partition};
use sagegpu_graph::GraphError;
use sagegpu_nn::layers::Gcn;
use sagegpu_nn::metrics::accuracy;
use sagegpu_nn::optim::{Adam, Optimizer};
use sagegpu_nn::parallel::weighted_average_gradients;
use sagegpu_nn::tape::Tape;
use sagegpu_profiler::timeline::Timeline;
use sagegpu_tensor::dense::Tensor;
use sagegpu_tensor::sparse::CsrMatrix;
use std::sync::Arc;
use taskflow::cluster::ClusterBuilder;
use taskflow::metrics::SchedulerMetrics;
use taskflow::policy::{FaultPlan, RetryPolicy};

/// How the graph is split across workers (line 3 of Algorithm 1 uses
/// METIS; the course had students also try random splits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    Metis,
    Random { seed: u64 },
}

impl PartitionStrategy {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::Metis => "metis",
            PartitionStrategy::Random { .. } => "random",
        }
    }
}

/// Everything one worker holds about its partition.
struct PartitionData {
    /// Original node ids, local index order.
    nodes: Vec<usize>,
    adj: Arc<CsrMatrix>,
    x: Tensor,
    labels: Vec<usize>,
    train_mask: Vec<bool>,
    nnz: u64,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    pub k: usize,
    pub strategy: &'static str,
    pub epoch_stats: Vec<EpochStats>,
    /// Accuracy with partitioned inference (each node aggregates within its
    /// partition — how the course's students evaluated).
    pub test_accuracy: f64,
    /// Accuracy running the trained model over the full, uncut graph.
    pub test_accuracy_full_graph: f64,
    /// Simulated makespan of the whole run.
    pub sim_time_ns: u64,
    /// Partition quality: total cut edge weight.
    pub edge_cut: f64,
    /// Partition balance (1.0 = perfect).
    pub balance: f64,
    /// Per-device busy fraction of the makespan.
    pub device_utilization: Vec<f64>,
    pub model: Gcn,
    /// Scheduler-side counters and task spans for the run (retries show up
    /// here when fault injection was active).
    pub sched_metrics: SchedulerMetrics,
}

/// Execution knobs for a distributed run beyond the training config:
/// interconnect, fault injection, and the retry budget that absorbs it.
#[derive(Debug, Clone)]
pub struct DistOptions {
    pub link: LinkKind,
    pub fault_plan: FaultPlan,
    pub retry: RetryPolicy,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            link: LinkKind::Ethernet,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::none(),
        }
    }
}

fn build_partition(ds: &GraphDataset, nodes: Vec<usize>) -> Result<PartitionData, GraphError> {
    let (subgraph, mapping) = ds.graph.subgraph(&nodes)?;
    let (indptr, indices, values) = normalized_adjacency(&subgraph);
    let adj = Arc::new(
        CsrMatrix::new(nodes.len(), nodes.len(), indptr, indices, values)
            .expect("normalized subgraph CSR is valid"),
    );
    let mut feats = Vec::with_capacity(nodes.len() * ds.feature_dim);
    for &u in &mapping {
        feats.extend_from_slice(ds.feature_row(u));
    }
    let x = Tensor::from_vec(nodes.len(), ds.feature_dim, feats).expect("feature dims");
    let labels = mapping.iter().map(|&u| ds.labels[u]).collect();
    let train_mask = mapping.iter().map(|&u| ds.train_mask[u]).collect();
    let nnz = (2 * subgraph.num_edges() + subgraph.num_nodes()) as u64;
    Ok(PartitionData {
        nodes: mapping,
        adj,
        x,
        labels,
        train_mask,
        nnz,
    })
}

/// Trains a GCN distributed over `k` simulated GPUs per Algorithm 1,
/// with the course's default interconnect (VPC Ethernet between separate
/// instances — see [`train_distributed_with_link`] to ablate it).
pub fn train_distributed(
    ds: &GraphDataset,
    k: usize,
    cfg: &TrainConfig,
    strategy: PartitionStrategy,
) -> Result<DistResult, GraphError> {
    train_distributed_with_link(ds, k, cfg, strategy, LinkKind::Ethernet)
}

/// [`train_distributed`] with an explicit device interconnect — the
/// ablation of DESIGN.md (what if the course had NVLink instead of VPC
/// networking?).
pub fn train_distributed_with_link(
    ds: &GraphDataset,
    k: usize,
    cfg: &TrainConfig,
    strategy: PartitionStrategy,
    link: LinkKind,
) -> Result<DistResult, GraphError> {
    train_distributed_with_opts(
        ds,
        k,
        cfg,
        strategy,
        DistOptions {
            link,
            ..DistOptions::default()
        },
    )
}

/// [`train_distributed`] with full execution options, including seeded
/// fault injection. Injected worker crashes are synthesized *before* the
/// task body runs, so a retried epoch task recomputes from identical
/// inputs — a faulty run with enough retry budget converges to exactly the
/// same losses as a fault-free run (the resilience experiment of
/// EXPERIMENTS.md).
pub fn train_distributed_with_opts(
    ds: &GraphDataset,
    k: usize,
    cfg: &TrainConfig,
    strategy: PartitionStrategy,
    opts: DistOptions,
) -> Result<DistResult, GraphError> {
    // Line 3: partition.
    let parts = match strategy {
        PartitionStrategy::Metis => metis_partition(&ds.graph, k)?,
        PartitionStrategy::Random { seed } => random_partition(ds.num_nodes(), k, seed)?,
    };
    let cut = edge_cut(&ds.graph, &parts);
    let balance = partition_balance(&ds.graph, &parts, k);

    // Line 4: cluster with one worker per GPU. The course's multi-GPU
    // setups were 2–3 *separate* single-GPU instances in one VPC, so the
    // default gradient exchange crosses Ethernet — the main reason the
    // paper saw "minimal performance improvement" from splitting.
    let gpus = Arc::new(GpuCluster::homogeneous(k, DeviceSpec::t4(), opts.link));
    let cluster = ClusterBuilder::new()
        .gpus(Arc::clone(&gpus))
        .fault_plan(opts.fault_plan)
        .retry_policy(opts.retry)
        .build();

    // Lines 5–6: build and distribute partitions (features charged as H2D).
    let mut partition_keys = Vec::with_capacity(k);
    for part in 0..k {
        let nodes: Vec<usize> = (0..ds.num_nodes()).filter(|&u| parts[u] == part).collect();
        let data = Arc::new(build_partition(ds, nodes)?);
        let key = taskflow::store::DataKey::fresh();
        let data_clone = Arc::clone(&data);
        cluster
            .submit_to(part, move |ctx| {
                // Charge the feature upload to this worker's GPU.
                let _ = ctx.gpu().htod(data_clone.x.data()).expect("features fit");
                ctx.store.put(key, Arc::clone(&data_clone));
            })
            .expect("worker exists")
            .wait()
            .expect("scatter succeeds");
        partition_keys.push(key);
    }

    // Line 7: global model.
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut model = Gcn::new(ds.feature_dim, cfg.hidden, ds.num_classes, &mut rng);
    let mut opt = Adam::new(cfg.lr);
    let param_bytes = model.parameter_bytes();
    let (in_dim, hidden, classes) = (ds.feature_dim, cfg.hidden, ds.num_classes);

    // Lines 9–14: epochs.
    let mut epoch_stats = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        // Line 8 (per epoch): broadcast current θ.
        let params = model.get_parameters();
        let mut futures = Vec::with_capacity(k);
        for (worker, &key) in partition_keys.iter().enumerate() {
            let params = params.clone();
            let fut = cluster
                .submit_to(worker, move |ctx| {
                    let data = ctx
                        .store
                        .get::<Arc<PartitionData>>(key)
                        .expect("partition scattered");
                    let gpu = ctx.gpu();
                    let profile = epoch_profile(
                        data.nodes.len() as u64,
                        data.nnz,
                        in_dim as u64,
                        hidden as u64,
                        classes as u64,
                    );
                    let launch = LaunchConfig::for_elements(data.nodes.len().max(1) as u64, 128);
                    gpu.launch("gcn_epoch_local", launch, profile, || {
                        // Lines 10–11: local loss and gradients.
                        let mut local =
                            Gcn::new(in_dim, hidden, classes, &mut SmallRng::seed_from_u64(0));
                        local.set_parameters(&params);
                        let tape = Tape::new();
                        let fwd = local.forward(&tape, Arc::clone(&data.adj), &data.x);
                        let loss = tape.cross_entropy(fwd.logits, &data.labels, &data.train_mask);
                        let loss_val = tape.value(loss).get(0, 0);
                        let grads = tape.backward(loss);
                        let grad_tensors: Vec<Tensor> = fwd
                            .params
                            .iter()
                            .map(|v| grads[v.index()].clone().expect("param grad"))
                            .collect();
                        let train_count = data.train_mask.iter().filter(|&&m| m).count();
                        (grad_tensors, loss_val, train_count)
                    })
                    .expect("valid launch")
                })
                .expect("worker exists");
            futures.push(fut);
        }
        let results = cluster.gather(futures).expect("epoch tasks succeed");

        // Line 12: aggregate gradients (ring all-reduce on the links).
        gpus.all_reduce_cost(param_bytes);
        let weights: Vec<f64> = results.iter().map(|(_, _, c)| *c as f64).collect();
        let per_worker: Vec<Vec<Tensor>> = results.iter().map(|(g, _, _)| g.clone()).collect();
        let total_train: f64 = weights.iter().sum();
        if total_train > 0.0 {
            let avg = weighted_average_gradients(&per_worker, &weights);
            // Line 13: global update.
            opt.step_all(model.parameters_mut(), &avg);
        }
        // Line 14: report epoch loss (train-count-weighted).
        let loss = if total_train > 0.0 {
            results.iter().map(|(_, l, c)| *l * *c as f32).sum::<f32>() / total_train as f32
        } else {
            0.0
        };
        epoch_stats.push(EpochStats { epoch, loss });
    }

    // Evaluation 1: partitioned inference (students' setup).
    let mut preds = vec![0usize; ds.num_nodes()];
    let final_params = model.get_parameters();
    let mut eval_futures = Vec::with_capacity(k);
    for (worker, &key) in partition_keys.iter().enumerate() {
        let params = final_params.clone();
        let fut = cluster
            .submit_to(worker, move |ctx| {
                let data = ctx
                    .store
                    .get::<Arc<PartitionData>>(key)
                    .expect("partition scattered");
                let mut local = Gcn::new(in_dim, hidden, classes, &mut SmallRng::seed_from_u64(0));
                local.set_parameters(&params);
                let logits = infer(&local, &data.adj, &data.x);
                (data.nodes.clone(), logits.argmax_rows())
            })
            .expect("worker exists");
        eval_futures.push(fut);
    }
    for (nodes, local_preds) in cluster.gather(eval_futures).expect("eval succeeds") {
        for (local, &orig) in nodes.iter().enumerate() {
            preds[orig] = local_preds[local];
        }
    }
    let test_mask: Vec<bool> = ds.train_mask.iter().map(|&m| !m).collect();
    let mut correct = 0usize;
    let mut total = 0usize;
    for u in 0..ds.num_nodes() {
        if test_mask[u] {
            total += 1;
            if preds[u] == ds.labels[u] {
                correct += 1;
            }
        }
    }
    let test_accuracy = if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    };

    // Evaluation 2: full-graph inference with the same trained weights.
    let full_adj = dataset_adjacency(ds);
    let full_x = dataset_features(ds);
    let full_logits = infer(&model, &full_adj, &full_x);
    let test_accuracy_full_graph = accuracy(&full_logits, &ds.labels, &test_mask);

    let timeline = Timeline::from_recorder(gpus.recorder());
    let device_utilization = (0..k as u32).map(|d| timeline.utilization(d)).collect();
    let sched_metrics = cluster.metrics();

    Ok(DistResult {
        k,
        strategy: strategy.name(),
        epoch_stats,
        test_accuracy,
        test_accuracy_full_graph,
        sim_time_ns: gpus.makespan_ns(),
        edge_cut: cut,
        balance,
        device_utilization,
        model,
        sched_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::train_sequential;
    use sagegpu_graph::generators::{sbm, SbmParams};

    fn ds() -> GraphDataset {
        sbm(
            &SbmParams {
                block_sizes: vec![50, 50, 50, 50],
                p_in: 0.18,
                p_out: 0.015,
                feature_dim: 16,
                feature_separation: 1.2,
                train_fraction: 0.5,
            },
            21,
        )
        .unwrap()
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            epochs: 25,
            ..Default::default()
        }
    }

    #[test]
    fn distributed_training_converges() {
        let r = train_distributed(&ds(), 2, &cfg(), PartitionStrategy::Metis).unwrap();
        let first = r.epoch_stats.first().unwrap().loss;
        let last = r.epoch_stats.last().unwrap().loss;
        assert!(last < 0.8 * first, "loss {first} → {last}");
        assert!(r.test_accuracy > 0.6, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn metis_cut_below_random_cut() {
        let d = ds();
        let m = train_distributed(&d, 4, &cfg(), PartitionStrategy::Metis).unwrap();
        let r = train_distributed(&d, 4, &cfg(), PartitionStrategy::Random { seed: 3 }).unwrap();
        assert!(
            m.edge_cut < r.edge_cut,
            "metis {} vs random {}",
            m.edge_cut,
            r.edge_cut
        );
        assert!(m.balance < 1.2);
    }

    #[test]
    fn metis_partitioned_accuracy_at_least_random() {
        // §III-B: community-aligned partitions drop noise edges; random
        // partitions drop signal edges. METIS should not be worse.
        let d = ds();
        let m = train_distributed(&d, 4, &cfg(), PartitionStrategy::Metis).unwrap();
        let r = train_distributed(&d, 4, &cfg(), PartitionStrategy::Random { seed: 3 }).unwrap();
        assert!(
            m.test_accuracy >= r.test_accuracy - 0.05,
            "metis {} vs random {}",
            m.test_accuracy,
            r.test_accuracy
        );
    }

    #[test]
    fn speedup_is_minimal_on_small_graphs() {
        // The paper's observation: splitting a modest graph buys little.
        let d = ds();
        let seq = train_sequential(&d, &cfg());
        let dist = train_distributed(&d, 2, &cfg(), PartitionStrategy::Metis).unwrap();
        let speedup = seq.sim_time_ns as f64 / dist.sim_time_ns as f64;
        assert!(
            speedup < 2.0,
            "2 GPUs must not give ≥2× on a small graph (got {speedup:.2}×)"
        );
    }

    #[test]
    fn utilization_reported_per_device() {
        let r = train_distributed(&ds(), 3, &cfg(), PartitionStrategy::Metis).unwrap();
        assert_eq!(r.device_utilization.len(), 3);
        for &u in &r.device_utilization {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn injected_crashes_with_retries_match_fault_free_losses() {
        // The resilience acceptance experiment: workers are killed mid-run
        // by seeded fault injection; because crashes fire before the task
        // body runs, retried epoch tasks recompute from identical state and
        // the run converges to exactly the fault-free losses.
        let d = ds();
        let clean = train_distributed(&d, 2, &cfg(), PartitionStrategy::Metis).unwrap();
        let faulty = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                fault_plan: FaultPlan::crashes(17, 0.15),
                retry: RetryPolicy::fixed(5, std::time::Duration::ZERO),
                ..DistOptions::default()
            },
        )
        .unwrap();
        assert!(
            faulty.sched_metrics.total_retries() > 0,
            "the plan must actually kill some workers"
        );
        assert_eq!(clean.epoch_stats.len(), faulty.epoch_stats.len());
        for (c, f) in clean.epoch_stats.iter().zip(&faulty.epoch_stats) {
            assert_eq!(c.loss, f.loss, "epoch {} diverged under faults", c.epoch);
        }
        assert_eq!(clean.test_accuracy, faulty.test_accuracy);
    }

    #[test]
    fn k1_distributed_close_to_sequential_accuracy() {
        let d = ds();
        let seq = train_sequential(&d, &cfg());
        let dist = train_distributed(&d, 1, &cfg(), PartitionStrategy::Metis).unwrap();
        assert!(
            (dist.test_accuracy - seq.test_accuracy).abs() < 0.1,
            "k=1 {} vs sequential {}",
            dist.test_accuracy,
            seq.test_accuracy
        );
        assert_eq!(dist.edge_cut, 0.0);
    }
}
