//! Algorithm 1: distributed GCN training over partitioned subgraphs.

use crate::exec::{
    capture_epoch, charge_epoch_tracked, EpochDims, EpochGraph, ExecMode, SubmitMode,
};
use crate::sequential::{dataset_adjacency, dataset_features, infer};
use crate::{EpochStats, TrainConfig};
use gpu_sim::{
    DeviceSpec, EventKind, GpuCluster, GpuEvent, LinkKind, ResidencySnapshot, StreamId, Topology,
    TraceV1,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sagegpu_graph::generators::GraphDataset;
use sagegpu_graph::normalize::normalized_adjacency;
use sagegpu_graph::partition::{edge_cut, metis_partition, partition_balance, random_partition};
use sagegpu_graph::GraphError;
use sagegpu_nn::layers::Gcn;
use sagegpu_nn::metrics::accuracy;
use sagegpu_nn::optim::{Adam, Optimizer};
use sagegpu_nn::parallel::{
    bucket_gradients, charge_bucketed_all_reduce, weighted_average_gradients, Compression,
    GradCompressor,
};
use sagegpu_nn::resident::{ResidentAdam, ResidentParams};
use sagegpu_nn::tape::Tape;
use sagegpu_profiler::bottleneck::{analyze_with_residency, BottleneckReport};
use sagegpu_profiler::timeline::Timeline;
use sagegpu_tensor::dense::Tensor;
use sagegpu_tensor::gpu_exec::GpuExecutor;
use sagegpu_tensor::sparse::CsrMatrix;
use std::sync::Arc;
use taskflow::cluster::ClusterBuilder;
use taskflow::metrics::SchedulerMetrics;
use taskflow::policy::{FaultPlan, RetryPolicy};

/// How the graph is split across workers (line 3 of Algorithm 1 uses
/// METIS; the course had students also try random splits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    Metis,
    Random { seed: u64 },
}

impl PartitionStrategy {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::Metis => "metis",
            PartitionStrategy::Random { .. } => "random",
        }
    }
}

/// Where training state lives between epochs — the week-5 memory-hierarchy
/// lesson applied to Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidencyMode {
    /// Host-mediated exchange: every epoch re-broadcasts θ over the host
    /// link (H2D) and pulls every worker's gradients back to host RAM
    /// (D2H) before the network exchange — how a first, unoptimized
    /// student implementation moves data.
    Naive,
    /// Device-resident: θ and the optimizer moments are uploaded once and
    /// live in each worker's memory pool across epochs; gradients move
    /// over the peer links only, and the trained parameters come back to
    /// the host at a single explicit sync point after the last epoch.
    Resident,
}

impl ResidencyMode {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ResidencyMode::Naive => "naive",
            ResidencyMode::Resident => "resident",
        }
    }
}

/// How the per-epoch gradient exchange is scheduled — the A08 ablation
/// knob. Both modes compute **bit-identical** averaged gradients; they
/// differ only in when the communication occupies the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// One opaque ring all-reduce of the full parameter payload *after*
    /// the backward pass — communication fully exposed on the critical
    /// path (the unoptimized Algorithm 1, and why the paper saw minimal
    /// speedup from splitting).
    Monolithic,
    /// DDP-style bucketed overlap: gradients are grouped into size-capped
    /// buckets in reverse layer order and each bucket's chunked ring
    /// all-reduce launches on the dedicated comm stream as soon as the
    /// backward op producing its last gradient retires, overlapping comm
    /// with the remaining backward compute.
    BucketedOverlap {
        /// Size cap per bucket; a gradient larger than this gets its own
        /// bucket.
        bucket_bytes: u64,
    },
}

impl CommMode {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            CommMode::Monolithic => "monolithic",
            CommMode::BucketedOverlap { .. } => "bucketed",
        }
    }
}

/// Everything one worker holds about its partition.
struct PartitionData {
    /// Original node ids, local index order.
    nodes: Vec<usize>,
    adj: Arc<CsrMatrix>,
    x: Tensor,
    labels: Vec<usize>,
    train_mask: Vec<bool>,
    nnz: u64,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    pub k: usize,
    pub strategy: &'static str,
    pub epoch_stats: Vec<EpochStats>,
    /// Accuracy with partitioned inference (each node aggregates within its
    /// partition — how the course's students evaluated).
    pub test_accuracy: f64,
    /// Accuracy running the trained model over the full, uncut graph.
    pub test_accuracy_full_graph: f64,
    /// Simulated makespan of the whole run.
    pub sim_time_ns: u64,
    /// Partition quality: total cut edge weight.
    pub edge_cut: f64,
    /// Partition balance (1.0 = perfect).
    pub balance: f64,
    /// Per-device busy fraction of the makespan.
    pub device_utilization: Vec<f64>,
    pub model: Gcn,
    /// Scheduler-side counters and task spans for the run (retries show up
    /// here when fault injection was active).
    pub sched_metrics: SchedulerMetrics,
    /// Which residency mode charged the run's data movement.
    pub residency: &'static str,
    /// Which execution mode charged the run's kernels ("serial"/"fused").
    pub exec: &'static str,
    /// Total kernel launches charged across all workers.
    pub kernel_launches: u64,
    /// Total host→device bytes charged across all workers.
    pub h2d_bytes: u64,
    /// Total device→host bytes charged across all workers.
    pub d2h_bytes: u64,
    /// Total peer-link (D2D/P2P) bytes charged across all workers.
    pub p2p_bytes: u64,
    /// Which comm schedule charged the gradient exchange
    /// ("monolithic"/"bucketed").
    pub comm: &'static str,
    /// Which interconnect shape carried it ("flat"/"hierarchical").
    pub topology: &'static str,
    /// Which wire format the gradients crossed it in ("f32"/"fp16").
    pub compression: &'static str,
    /// Which submission mode issued epoch kernels ("eager"/"captured").
    pub submit: &'static str,
    /// Gradient-exchange time left on the critical path (after the epoch's
    /// compute had already finished), summed over epochs.
    pub exposed_comm_ns: u64,
    /// Gradient-exchange time hidden behind backward compute, summed over
    /// epochs. Always 0 for [`CommMode::Monolithic`].
    pub overlapped_comm_ns: u64,
    /// Bucket collectives launched per epoch (0 when monolithic).
    pub comm_buckets_per_epoch: u64,
    /// Per-epoch θ residency lookups (one per worker per epoch: a hit when
    /// the parameters were already device-resident, a miss when they had to
    /// be re-staged) plus the host-link bytes that resulted.
    pub residency_lookups: ResidencySnapshot,
    /// Device 0's residency-aware bottleneck verdict for the run.
    pub bottleneck: BottleneckReport,
    /// The recorded command trace, when [`DistOptions::record_trace`] was
    /// set — replayable via `gpu_sim::trace::replay` without this trainer.
    pub trace: Option<TraceV1>,
}

impl DistResult {
    /// Bytes that crossed the host link (H2D + D2H) — the PCIe traffic the
    /// residency layer exists to eliminate. Peer-link bytes are excluded:
    /// they flow GPU-to-GPU without touching host RAM.
    pub fn host_link_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }
}

/// Execution knobs for a distributed run beyond the training config:
/// interconnect, fault injection, and the retry budget that absorbs it.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Interconnect shape: a flat homogeneous fabric, or NVLink islands
    /// bridged by Ethernet with hierarchical collectives (the A10 knob).
    pub topology: Topology,
    /// Gradient wire format: full-precision f32 (bit-identical) or fp16
    /// with error-feedback accumulation (half the collective payload,
    /// bounded error — the A10 compression arm).
    pub compression: Compression,
    pub fault_plan: FaultPlan,
    pub retry: RetryPolicy,
    pub residency: ResidencyMode,
    /// How epoch kernels are charged: one launch per op, or fused epilogues
    /// with copy/compute overlap (the A07 ablation knob).
    pub exec: ExecMode,
    /// How the gradient exchange is scheduled: one exposed monolithic
    /// all-reduce, or bucketed collectives overlapped with backward (the
    /// A08 ablation knob).
    pub comm: CommMode,
    /// How epoch commands are submitted: eagerly kernel-by-kernel, or as a
    /// captured graph replayed per epoch (the A09 ablation knob).
    pub submit: SubmitMode,
    /// Record every submitted command into a portable [`TraceV1`] returned
    /// in [`DistResult::trace`] (the A11 what-if / regression-gate input).
    pub record_trace: bool,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            topology: Topology::Flat(LinkKind::Ethernet),
            compression: Compression::None,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::none(),
            residency: ResidencyMode::Naive,
            exec: ExecMode::FusedOverlapped,
            comm: CommMode::Monolithic,
            submit: SubmitMode::Eager,
            record_trace: false,
        }
    }
}

fn build_partition(ds: &GraphDataset, nodes: Vec<usize>) -> Result<PartitionData, GraphError> {
    let (subgraph, mapping) = ds.graph.subgraph(&nodes)?;
    let (indptr, indices, values) = normalized_adjacency(&subgraph);
    let adj = Arc::new(
        CsrMatrix::new(nodes.len(), nodes.len(), indptr, indices, values)
            .expect("normalized subgraph CSR is valid"),
    );
    let mut feats = Vec::with_capacity(nodes.len() * ds.feature_dim);
    for &u in &mapping {
        feats.extend_from_slice(ds.feature_row(u));
    }
    let x = Tensor::from_vec(nodes.len(), ds.feature_dim, feats).expect("feature dims");
    let labels = mapping.iter().map(|&u| ds.labels[u]).collect();
    let train_mask = mapping.iter().map(|&u| ds.train_mask[u]).collect();
    let nnz = (2 * subgraph.num_edges() + subgraph.num_nodes()) as u64;
    Ok(PartitionData {
        nodes: mapping,
        adj,
        x,
        labels,
        train_mask,
        nnz,
    })
}

/// Trains a GCN distributed over `k` simulated GPUs per Algorithm 1,
/// with the course's default interconnect (VPC Ethernet between separate
/// instances — see [`train_distributed_with_link`] to ablate it).
pub fn train_distributed(
    ds: &GraphDataset,
    k: usize,
    cfg: &TrainConfig,
    strategy: PartitionStrategy,
) -> Result<DistResult, GraphError> {
    train_distributed_with_link(ds, k, cfg, strategy, LinkKind::Ethernet)
}

/// [`train_distributed`] with an explicit device interconnect — the
/// ablation of DESIGN.md (what if the course had NVLink instead of VPC
/// networking?).
pub fn train_distributed_with_link(
    ds: &GraphDataset,
    k: usize,
    cfg: &TrainConfig,
    strategy: PartitionStrategy,
    link: LinkKind,
) -> Result<DistResult, GraphError> {
    train_distributed_with_opts(
        ds,
        k,
        cfg,
        strategy,
        DistOptions {
            topology: Topology::Flat(link),
            ..DistOptions::default()
        },
    )
}

/// [`train_distributed`] with full execution options, including seeded
/// fault injection. Injected worker crashes are synthesized *before* the
/// task body runs, so a retried epoch task recomputes from identical
/// inputs — a faulty run with enough retry budget converges to exactly the
/// same losses as a fault-free run (the resilience experiment of
/// EXPERIMENTS.md).
pub fn train_distributed_with_opts(
    ds: &GraphDataset,
    k: usize,
    cfg: &TrainConfig,
    strategy: PartitionStrategy,
    opts: DistOptions,
) -> Result<DistResult, GraphError> {
    // Line 3: partition.
    let parts = match strategy {
        PartitionStrategy::Metis => metis_partition(&ds.graph, k)?,
        PartitionStrategy::Random { seed } => random_partition(ds.num_nodes(), k, seed)?,
    };
    let cut = edge_cut(&ds.graph, &parts);
    let balance = partition_balance(&ds.graph, &parts, k);

    // Line 4: cluster with one worker per GPU. The course's multi-GPU
    // setups were 2–3 *separate* single-GPU instances in one VPC, so the
    // default gradient exchange crosses Ethernet — the main reason the
    // paper saw "minimal performance improvement" from splitting. A
    // two-tier topology models the fix: NVLink islands bridged by that
    // same Ethernet, with the collectives scheduled hierarchically.
    let gpus = Arc::new(GpuCluster::with_topology(
        k,
        DeviceSpec::t4(),
        opts.topology,
    ));
    if opts.record_trace {
        let _ = gpus.record_trace();
    }
    let cluster = ClusterBuilder::new()
        .gpus(Arc::clone(&gpus))
        .fault_plan(opts.fault_plan)
        .retry_policy(opts.retry)
        .build();

    // Lines 5–6: build and distribute partitions (features charged as H2D).
    // In fused+resident mode the upload rides a dedicated copy stream and
    // hands back an event, so the θ staging (and anything else the default
    // stream does before epoch 0) overlaps the feature copy instead of
    // queueing behind it; epoch 0 waits on the event before its first
    // kernel, exactly like a `cudaStreamWaitEvent` dependency.
    let overlap_upload =
        opts.exec == ExecMode::FusedOverlapped && opts.residency == ResidencyMode::Resident;
    let mut partition_keys = Vec::with_capacity(k);
    let mut feature_ready: Vec<Option<GpuEvent>> = Vec::with_capacity(k);
    for part in 0..k {
        let nodes: Vec<usize> = (0..ds.num_nodes()).filter(|&u| parts[u] == part).collect();
        let data = Arc::new(build_partition(ds, nodes)?);
        let key = taskflow::store::DataKey::fresh();
        let data_clone = Arc::clone(&data);
        let event = cluster
            .submit_to(part, move |ctx| {
                // Charge the feature upload to this worker's GPU.
                let gpu = ctx.gpu();
                let event = if overlap_upload {
                    let copy = gpu.create_stream();
                    let _ = gpu
                        .htod_on(copy, data_clone.x.data())
                        .expect("features fit");
                    Some(gpu.record_event(copy))
                } else {
                    let _ = gpu.htod(data_clone.x.data()).expect("features fit");
                    None
                };
                ctx.store.put(key, Arc::clone(&data_clone));
                event
            })
            .expect("worker exists")
            .wait()
            .expect("scatter succeeds");
        partition_keys.push(key);
        feature_ready.push(event);
    }

    // Line 7: global model.
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut model = Gcn::new(ds.feature_dim, cfg.hidden, ds.num_classes, &mut rng);
    let mut opt = Adam::new(cfg.lr);
    let param_bytes = model.parameter_bytes();
    let (in_dim, hidden, classes) = (ds.feature_dim, cfg.hidden, ds.num_classes);
    let naive = opts.residency == ResidencyMode::Naive;

    // Resident mode: upload θ once per worker (the only per-worker H2D for
    // parameters in the whole run) and pin replicated optimizer state in
    // each device's memory pool. Every replica steps on the same averaged
    // gradients, so replicas stay bit-identical across epochs — standard
    // synchronous DDP. The driver-side host model mirrors the same math
    // for broadcasting current values into epoch tasks.
    let mut resident_workers: Option<Vec<(GpuExecutor, ResidentParams, ResidentAdam)>> =
        match opts.residency {
            ResidencyMode::Naive => None,
            ResidencyMode::Resident => {
                let init = model.get_parameters();
                let mut workers = Vec::with_capacity(k);
                for w in 0..k {
                    let exec = GpuExecutor::new(Arc::clone(gpus.device(w).expect("worker device")));
                    let params = ResidentParams::upload(&exec, &init).expect("θ fits on device");
                    workers.push((exec, params, ResidentAdam::new(cfg.lr)));
                }
                Some(workers)
            }
        };

    // Captured submission: one graph per worker (partitions differ in
    // shape), captured lazily inside the worker's first epoch task and
    // cached in the scheduler store for every later epoch to replay.
    let graph_keys: Vec<taskflow::store::DataKey> =
        (0..k).map(|_| taskflow::store::DataKey::fresh()).collect();

    // fp16 wire format: each worker carries an error-feedback residual
    // across epochs, so what enters the average is exactly the payload
    // that crossed the interconnect (plus nothing — the residual stays
    // local and bounded).
    let mut compressors: Vec<GradCompressor> = match opts.compression {
        Compression::None => Vec::new(),
        Compression::Fp16ErrorFeedback => (0..k).map(|_| GradCompressor::new()).collect(),
    };

    // Lines 9–14: epochs.
    let mut epoch_stats = Vec::with_capacity(cfg.epochs);
    let (mut theta_hits, mut theta_misses) = (0u64, 0u64);
    let (mut exposed_comm_ns, mut overlapped_comm_ns) = (0u64, 0u64);
    let mut comm_buckets_per_epoch = 0u64;
    for epoch in 0..cfg.epochs {
        // One θ residency lookup per worker per epoch.
        if naive {
            theta_misses += k as u64;
        } else {
            theta_hits += k as u64;
        }
        // Line 8 (per epoch): broadcast current θ.
        let params = model.get_parameters();
        let exec_mode = opts.exec;
        let mut futures = Vec::with_capacity(k);
        for (worker, &key) in partition_keys.iter().enumerate() {
            let params = params.clone();
            let graph_key = graph_keys[worker];
            let submit = opts.submit;
            // Epoch 0 must not start its first kernel until the copy-stream
            // feature upload has landed.
            let ready = if epoch == 0 {
                feature_ready[worker]
            } else {
                None
            };
            let fut = cluster
                .submit_to(worker, move |ctx| {
                    let data = ctx
                        .store
                        .get::<Arc<PartitionData>>(key)
                        .expect("partition scattered");
                    let gpu = ctx.gpu();
                    if let Some(event) = &ready {
                        gpu.stream_wait(StreamId::DEFAULT, event);
                    }
                    // Naive residency: re-stage θ onto the device every
                    // epoch. Resident mode skips this — the parameters are
                    // already in the worker's pool.
                    let staged_theta = if naive {
                        let flat: Vec<f32> = params
                            .iter()
                            .flat_map(|t| t.data().iter().copied())
                            .collect();
                        Some(gpu.htod(&flat).expect("θ fits"))
                    } else {
                        None
                    };
                    let dims = EpochDims {
                        n: data.nodes.len() as u64,
                        nnz: data.nnz,
                        d: in_dim as u64,
                        h: hidden as u64,
                        c: classes as u64,
                    };
                    let body = || {
                        // Lines 10–11: local loss and gradients.
                        let mut local =
                            Gcn::new(in_dim, hidden, classes, &mut SmallRng::seed_from_u64(0));
                        local.set_parameters(&params);
                        let tape = Tape::new();
                        let fwd = local.forward(&tape, Arc::clone(&data.adj), &data.x);
                        let loss = tape.cross_entropy(fwd.logits, &data.labels, &data.train_mask);
                        let loss_val = tape.value(loss).get(0, 0);
                        let grads = tape.backward(loss);
                        let grad_tensors: Vec<Tensor> = fwd
                            .params
                            .iter()
                            .map(|v| grads[v.index()].clone().expect("param grad"))
                            .collect();
                        let train_count = data.train_mask.iter().filter(|&&m| m).count();
                        (grad_tensors, loss_val, train_count)
                    };
                    let ((grad_tensors, loss_val, train_count), mut grads_ready) = match submit {
                        SubmitMode::Eager => charge_epoch_tracked(gpu, exec_mode, dims, body),
                        SubmitMode::Captured => {
                            // First epoch on this worker: record the DAG
                            // once; every later epoch replays it.
                            let graph = match ctx.store.get::<EpochGraph>(graph_key) {
                                Some(g) => g,
                                None => {
                                    let g = capture_epoch(gpu, exec_mode, dims)
                                        .expect("epoch plan is capturable");
                                    ctx.store.put(graph_key, g);
                                    ctx.store.get::<EpochGraph>(graph_key).expect("just stored")
                                }
                            };
                            graph.charge(gpu, body)
                        }
                    };
                    // Naive residency: pull the gradients (same footprint
                    // as θ) back through host RAM for the exchange. No
                    // gradient can enter a collective before that D2H
                    // lands, so the retirement timestamps clamp to it —
                    // naive residency forfeits most of the overlap window.
                    if let Some(buf) = &staged_theta {
                        let _ = gpu.dtoh(buf).expect("gradients return");
                        let t = gpu.record_event(StreamId::DEFAULT).timestamp_ns();
                        for r in grads_ready.iter_mut() {
                            *r = (*r).max(t);
                        }
                    }
                    (grad_tensors, loss_val, train_count, grads_ready)
                })
                .expect("worker exists");
            futures.push(fut);
        }
        let results = cluster.gather(futures).expect("epoch tasks succeed");

        // Line 12: aggregate gradients (ring all-reduce on the links).
        // Monolithic mode barriers and charges one opaque collective after
        // backward; bucketed mode replays the per-gradient retirement
        // timestamps the workers recorded, so each bucket's chunked ring
        // starts mid-backward and only the tail past the epoch's compute
        // end is exposed.
        match opts.comm {
            CommMode::Monolithic => {
                exposed_comm_ns +=
                    gpus.all_reduce_cost(opts.compression.payload_bytes(param_bytes));
            }
            CommMode::BucketedOverlap { bucket_bytes } => {
                let compute_end = gpus.makespan_ns();
                let buckets = bucket_gradients(&results[0].0, bucket_bytes);
                comm_buckets_per_epoch = buckets.len() as u64;
                let ready: Vec<Vec<u64>> = results.iter().map(|r| r.3.clone()).collect();
                let (_, stats) =
                    charge_bucketed_all_reduce(&gpus, &buckets, &ready, opts.compression);
                let exposed = stats.comm_end_ns.saturating_sub(compute_end);
                exposed_comm_ns += exposed;
                overlapped_comm_ns += stats.total_comm_ns.saturating_sub(exposed);
                // Synchronous DDP: the optimizer step waits for the last
                // bucket on every replica.
                gpus.advance_all_to(stats.comm_end_ns);
            }
        }
        let weights: Vec<f64> = results.iter().map(|(_, _, c, _)| *c as f64).collect();
        let per_worker: Vec<Vec<Tensor>> = match opts.compression {
            Compression::None => results.iter().map(|(g, _, _, _)| g.clone()).collect(),
            Compression::Fp16ErrorFeedback => results
                .iter()
                .zip(compressors.iter_mut())
                .map(|((g, _, _, _), c)| c.compress(g))
                .collect(),
        };
        let total_train: f64 = weights.iter().sum();
        if total_train > 0.0 {
            let avg = weighted_average_gradients(&per_worker, &weights);
            // Line 13: global update. In resident mode every device replica
            // applies the same averaged gradients in place — no transfer;
            // the host model mirrors the identical arithmetic.
            if let Some(workers) = resident_workers.as_mut() {
                for (exec, params, ropt) in workers.iter_mut() {
                    ropt.step_all(exec, params, &avg).expect("resident step");
                }
            }
            opt.step_all(model.parameters_mut(), &avg);
        }
        // Line 14: report epoch loss (train-count-weighted).
        let loss = if total_train > 0.0 {
            results
                .iter()
                .map(|(_, l, c, _)| *l * *c as f32)
                .sum::<f32>()
                / total_train as f32
        } else {
            0.0
        };
        epoch_stats.push(EpochStats { epoch, loss });
    }

    // Resident mode: the single explicit sync point — read the trained θ
    // back from one replica (they are bit-identical) and make it the
    // model the evaluations run with.
    if let Some(workers) = resident_workers.as_ref() {
        let (exec, params, _) = &workers[0];
        let synced = params.to_host(exec).expect("final sync");
        model.set_parameters(&synced);
    }

    // Evaluation 1: partitioned inference (students' setup).
    let mut preds = vec![0usize; ds.num_nodes()];
    let final_params = model.get_parameters();
    let mut eval_futures = Vec::with_capacity(k);
    for (worker, &key) in partition_keys.iter().enumerate() {
        let params = final_params.clone();
        let fut = cluster
            .submit_to(worker, move |ctx| {
                let data = ctx
                    .store
                    .get::<Arc<PartitionData>>(key)
                    .expect("partition scattered");
                let mut local = Gcn::new(in_dim, hidden, classes, &mut SmallRng::seed_from_u64(0));
                local.set_parameters(&params);
                let logits = infer(&local, &data.adj, &data.x);
                (data.nodes.clone(), logits.argmax_rows())
            })
            .expect("worker exists");
        eval_futures.push(fut);
    }
    for (nodes, local_preds) in cluster.gather(eval_futures).expect("eval succeeds") {
        for (local, &orig) in nodes.iter().enumerate() {
            preds[orig] = local_preds[local];
        }
    }
    let test_mask: Vec<bool> = ds.train_mask.iter().map(|&m| !m).collect();
    let mut correct = 0usize;
    let mut total = 0usize;
    for u in 0..ds.num_nodes() {
        if test_mask[u] {
            total += 1;
            if preds[u] == ds.labels[u] {
                correct += 1;
            }
        }
    }
    let test_accuracy = if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    };

    // Evaluation 2: full-graph inference with the same trained weights.
    let full_adj = dataset_adjacency(ds);
    let full_x = dataset_features(ds);
    let full_logits = infer(&model, &full_adj, &full_x);
    let test_accuracy_full_graph = accuracy(&full_logits, &ds.labels, &test_mask);

    let timeline = Timeline::from_recorder(gpus.recorder());
    let device_utilization = (0..k as u32).map(|d| timeline.utilization(d)).collect();
    let sched_metrics = cluster.metrics();

    let (mut h2d_bytes, mut d2h_bytes, mut p2p_bytes) = (0u64, 0u64, 0u64);
    for e in gpus.recorder().snapshot() {
        match e.kind {
            EventKind::MemcpyH2D => h2d_bytes += e.bytes,
            EventKind::MemcpyD2H => d2h_bytes += e.bytes,
            EventKind::MemcpyD2D | EventKind::MemcpyP2P => p2p_bytes += e.bytes,
            _ => {}
        }
    }
    let residency_lookups = ResidencySnapshot {
        hits: theta_hits,
        misses: theta_misses,
        h2d_bytes,
        d2h_bytes,
    };
    let bottleneck =
        analyze_with_residency(&timeline, 0, &DeviceSpec::t4(), Some(&residency_lookups));
    let trace = if opts.record_trace {
        gpus.finish_trace(&format!("gcn-dist-k{k}-{}", opts.comm.name()))
    } else {
        None
    };

    Ok(DistResult {
        k,
        strategy: strategy.name(),
        epoch_stats,
        test_accuracy,
        test_accuracy_full_graph,
        sim_time_ns: gpus.makespan_ns(),
        edge_cut: cut,
        balance,
        device_utilization,
        model,
        sched_metrics,
        residency: opts.residency.name(),
        exec: opts.exec.name(),
        kernel_launches: (0..k)
            .map(|w| gpus.device(w).expect("worker device").kernels_launched())
            .sum(),
        h2d_bytes,
        d2h_bytes,
        p2p_bytes,
        comm: opts.comm.name(),
        topology: opts.topology.name(),
        compression: opts.compression.name(),
        submit: opts.submit.name(),
        exposed_comm_ns,
        overlapped_comm_ns,
        comm_buckets_per_epoch,
        residency_lookups,
        bottleneck,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::train_sequential;
    use sagegpu_graph::generators::{sbm, SbmParams};

    fn ds() -> GraphDataset {
        sbm(
            &SbmParams {
                block_sizes: vec![50, 50, 50, 50],
                p_in: 0.18,
                p_out: 0.015,
                feature_dim: 16,
                feature_separation: 1.2,
                train_fraction: 0.5,
            },
            21,
        )
        .unwrap()
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            epochs: 25,
            ..Default::default()
        }
    }

    #[test]
    fn distributed_training_converges() {
        let r = train_distributed(&ds(), 2, &cfg(), PartitionStrategy::Metis).unwrap();
        let first = r.epoch_stats.first().unwrap().loss;
        let last = r.epoch_stats.last().unwrap().loss;
        assert!(last < 0.8 * first, "loss {first} → {last}");
        assert!(r.test_accuracy > 0.6, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn metis_cut_below_random_cut() {
        let d = ds();
        let m = train_distributed(&d, 4, &cfg(), PartitionStrategy::Metis).unwrap();
        let r = train_distributed(&d, 4, &cfg(), PartitionStrategy::Random { seed: 3 }).unwrap();
        assert!(
            m.edge_cut < r.edge_cut,
            "metis {} vs random {}",
            m.edge_cut,
            r.edge_cut
        );
        assert!(m.balance < 1.2);
    }

    #[test]
    fn metis_partitioned_accuracy_at_least_random() {
        // §III-B: community-aligned partitions drop noise edges; random
        // partitions drop signal edges. METIS should not be worse.
        let d = ds();
        let m = train_distributed(&d, 4, &cfg(), PartitionStrategy::Metis).unwrap();
        let r = train_distributed(&d, 4, &cfg(), PartitionStrategy::Random { seed: 3 }).unwrap();
        assert!(
            m.test_accuracy >= r.test_accuracy - 0.05,
            "metis {} vs random {}",
            m.test_accuracy,
            r.test_accuracy
        );
    }

    #[test]
    fn speedup_is_minimal_on_small_graphs() {
        // The paper's observation: splitting a modest graph buys little.
        let d = ds();
        let seq = train_sequential(&d, &cfg());
        let dist = train_distributed(&d, 2, &cfg(), PartitionStrategy::Metis).unwrap();
        let speedup = seq.sim_time_ns as f64 / dist.sim_time_ns as f64;
        assert!(
            speedup < 2.0,
            "2 GPUs must not give ≥2× on a small graph (got {speedup:.2}×)"
        );
    }

    #[test]
    fn utilization_reported_per_device() {
        let r = train_distributed(&ds(), 3, &cfg(), PartitionStrategy::Metis).unwrap();
        assert_eq!(r.device_utilization.len(), 3);
        for &u in &r.device_utilization {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn recorded_trace_identity_replays_exactly() {
        // The tentpole invariant at the trainer level: a hierarchical,
        // bucketed-overlap run recorded through the submit interposer must
        // replay — with no overrides, on fresh devices, without this
        // trainer — to exactly the recorded makespan, submission count,
        // and kernel-launch count.
        let r = train_distributed_with_opts(
            &ds(),
            4,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                topology: Topology::nvlink_islands(2),
                residency: ResidencyMode::Resident,
                comm: CommMode::BucketedOverlap { bucket_bytes: 2560 },
                record_trace: true,
                ..DistOptions::default()
            },
        )
        .unwrap();
        let trace = r.trace.expect("record_trace captures a trace");
        assert_eq!(
            trace.sim_time_ns, r.sim_time_ns,
            "trace snapshots the run's makespan"
        );
        assert_eq!(trace.kernel_launches, r.kernel_launches);
        let rep = gpu_sim::trace::replay(&trace, &gpu_sim::WhatIf::default())
            .expect("identity replay succeeds");
        assert_eq!(
            rep.sim_time_ns, trace.sim_time_ns,
            "identity replay is exact"
        );
        assert_eq!(rep.submissions, trace.submissions());
        assert_eq!(rep.kernel_launches, trace.kernel_launches);
        // And the artifact survives serialization unchanged.
        let round = TraceV1::from_json(&trace.to_json()).unwrap();
        let rep2 = gpu_sim::trace::replay(&round, &gpu_sim::WhatIf::default()).unwrap();
        assert_eq!(rep2.sim_time_ns, rep.sim_time_ns);
    }

    #[test]
    fn injected_crashes_with_retries_match_fault_free_losses() {
        // The resilience acceptance experiment: workers are killed mid-run
        // by seeded fault injection; because crashes fire before the task
        // body runs, retried epoch tasks recompute from identical state and
        // the run converges to exactly the fault-free losses.
        let d = ds();
        let clean = train_distributed(&d, 2, &cfg(), PartitionStrategy::Metis).unwrap();
        let faulty = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                fault_plan: FaultPlan::crashes(17, 0.15),
                retry: RetryPolicy::fixed(5, std::time::Duration::ZERO),
                ..DistOptions::default()
            },
        )
        .unwrap();
        assert!(
            faulty.sched_metrics.total_retries() > 0,
            "the plan must actually kill some workers"
        );
        assert_eq!(clean.epoch_stats.len(), faulty.epoch_stats.len());
        for (c, f) in clean.epoch_stats.iter().zip(&faulty.epoch_stats) {
            assert_eq!(c.loss, f.loss, "epoch {} diverged under faults", c.epoch);
        }
        assert_eq!(clean.test_accuracy, faulty.test_accuracy);
    }

    #[test]
    fn resident_training_is_bit_identical_and_moves_fewer_host_bytes() {
        // The tentpole acceptance, in miniature: keeping θ and optimizer
        // state device-resident must not change a single bit of the
        // training trajectory — only where the bytes flow.
        let d = ds();
        let naive = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                residency: ResidencyMode::Naive,
                ..DistOptions::default()
            },
        )
        .unwrap();
        let resident = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                residency: ResidencyMode::Resident,
                ..DistOptions::default()
            },
        )
        .unwrap();
        assert_eq!(naive.epoch_stats, resident.epoch_stats, "losses diverged");
        assert_eq!(naive.test_accuracy, resident.test_accuracy);
        assert_eq!(
            naive.model.get_parameters(),
            resident.model.get_parameters(),
            "trained parameters must be bit-identical"
        );
        assert_eq!(naive.residency, "naive");
        assert_eq!(resident.residency, "resident");
        // Both exchange gradient payload over the links…
        assert_eq!(naive.p2p_bytes, resident.p2p_bytes);
        // …but only the naive run round-trips θ/gradients through host RAM
        // every epoch.
        assert!(
            naive.host_link_bytes() > 3 * resident.host_link_bytes(),
            "naive {} vs resident {} host-link bytes",
            naive.host_link_bytes(),
            resident.host_link_bytes()
        );
        assert!(resident.d2h_bytes > 0, "final sync must charge one D2H");
    }

    #[test]
    fn resident_training_survives_fault_injection() {
        // Resident optimizer steps happen once per epoch on the driver
        // side of the gather barrier, so injected worker crashes (and
        // their retries) cannot double-apply an update.
        let d = ds();
        let clean = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                residency: ResidencyMode::Resident,
                ..DistOptions::default()
            },
        )
        .unwrap();
        let faulty = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                residency: ResidencyMode::Resident,
                fault_plan: FaultPlan::crashes(17, 0.15),
                retry: RetryPolicy::fixed(5, std::time::Duration::ZERO),
                ..DistOptions::default()
            },
        )
        .unwrap();
        assert!(faulty.sched_metrics.total_retries() > 0);
        for (c, f) in clean.epoch_stats.iter().zip(&faulty.epoch_stats) {
            assert_eq!(c.loss, f.loss, "epoch {} diverged under faults", c.epoch);
        }
        assert_eq!(clean.test_accuracy, faulty.test_accuracy);
    }

    #[test]
    fn fused_exec_matches_serial_bitwise_with_fewer_launches() {
        // The A07 acceptance in miniature: fusion + overlap change the cost
        // model, never the arithmetic.
        let d = ds();
        let serial = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                residency: ResidencyMode::Resident,
                exec: ExecMode::PerOpSerial,
                ..DistOptions::default()
            },
        )
        .unwrap();
        let fused = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                residency: ResidencyMode::Resident,
                exec: ExecMode::FusedOverlapped,
                ..DistOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.epoch_stats, fused.epoch_stats, "losses diverged");
        assert_eq!(serial.test_accuracy, fused.test_accuracy);
        assert_eq!(
            serial.model.get_parameters(),
            fused.model.get_parameters(),
            "trained parameters must be bit-identical"
        );
        assert_eq!(serial.exec, "serial");
        assert_eq!(fused.exec, "fused");
        assert!(
            fused.kernel_launches < serial.kernel_launches,
            "fused {} vs serial {} launches",
            fused.kernel_launches,
            serial.kernel_launches
        );
        assert!(
            fused.sim_time_ns < serial.sim_time_ns,
            "fused {} vs serial {} ns",
            fused.sim_time_ns,
            serial.sim_time_ns
        );
    }

    #[test]
    fn bucketed_comm_is_bit_identical_and_overlaps() {
        // The A08 acceptance in miniature: rescheduling the gradient
        // exchange must not change a single bit of the trajectory — only
        // how much of the comm hides behind backward compute.
        let d = ds();
        for residency in [ResidencyMode::Naive, ResidencyMode::Resident] {
            let mono = train_distributed_with_opts(
                &d,
                2,
                &cfg(),
                PartitionStrategy::Metis,
                DistOptions {
                    residency,
                    comm: CommMode::Monolithic,
                    ..DistOptions::default()
                },
            )
            .unwrap();
            let bucketed = train_distributed_with_opts(
                &d,
                2,
                &cfg(),
                PartitionStrategy::Metis,
                DistOptions {
                    residency,
                    comm: CommMode::BucketedOverlap {
                        bucket_bytes: 1 << 20,
                    },
                    ..DistOptions::default()
                },
            )
            .unwrap();
            assert_eq!(mono.epoch_stats, bucketed.epoch_stats, "losses diverged");
            assert_eq!(mono.test_accuracy, bucketed.test_accuracy);
            assert_eq!(
                mono.model.get_parameters(),
                bucketed.model.get_parameters(),
                "trained parameters must be bit-identical ({residency:?})"
            );
            assert_eq!(mono.comm, "monolithic");
            assert_eq!(bucketed.comm, "bucketed");
            assert_eq!(mono.overlapped_comm_ns, 0, "monolithic comm never hides");
            assert!(mono.exposed_comm_ns > 0);
            assert!(bucketed.comm_buckets_per_epoch >= 1);
            // Never worse — and in resident mode (gradients stay on
            // device, retirement timestamps mid-backward) strictly better.
            assert!(
                bucketed.exposed_comm_ns <= mono.exposed_comm_ns,
                "{residency:?}: bucketed exposed {} vs monolithic {}",
                bucketed.exposed_comm_ns,
                mono.exposed_comm_ns
            );
            assert!(bucketed.sim_time_ns <= mono.sim_time_ns);
            if residency == ResidencyMode::Resident {
                assert!(
                    bucketed.exposed_comm_ns < mono.exposed_comm_ns,
                    "resident: bucketed exposed {} must beat monolithic {}",
                    bucketed.exposed_comm_ns,
                    mono.exposed_comm_ns
                );
                assert!(
                    bucketed.sim_time_ns < mono.sim_time_ns,
                    "resident: bucketed {} ns must beat monolithic {} ns",
                    bucketed.sim_time_ns,
                    mono.sim_time_ns
                );
                assert!(bucketed.overlapped_comm_ns > 0);
            }
        }
    }

    #[test]
    fn resident_overlap_hides_more_comm_than_naive() {
        // Naive residency drags every gradient through host RAM before the
        // exchange, clamping all retirement timestamps to the D2H — the
        // resident path keeps the mid-backward launch points.
        let d = ds();
        let run = |residency| {
            train_distributed_with_opts(
                &d,
                2,
                &cfg(),
                PartitionStrategy::Metis,
                DistOptions {
                    residency,
                    comm: CommMode::BucketedOverlap {
                        bucket_bytes: 1 << 20,
                    },
                    ..DistOptions::default()
                },
            )
            .unwrap()
        };
        let naive = run(ResidencyMode::Naive);
        let resident = run(ResidencyMode::Resident);
        assert!(
            resident.overlapped_comm_ns > naive.overlapped_comm_ns,
            "resident {} ns overlapped vs naive {} ns",
            resident.overlapped_comm_ns,
            naive.overlapped_comm_ns
        );
    }

    #[test]
    fn captured_submission_is_bit_identical_with_fewer_launches() {
        // The A09 acceptance in miniature: replaying each epoch from a
        // captured graph must not change a single bit of the training
        // trajectory — only how many submissions the device processes and
        // what share of kernel time is launch overhead.
        let d = ds();
        let run = |submit| {
            train_distributed_with_opts(
                &d,
                2,
                &cfg(),
                PartitionStrategy::Metis,
                DistOptions {
                    residency: ResidencyMode::Resident,
                    submit,
                    ..DistOptions::default()
                },
            )
            .unwrap()
        };
        let eager = run(SubmitMode::Eager);
        let captured = run(SubmitMode::Captured);
        assert_eq!(eager.epoch_stats, captured.epoch_stats, "losses diverged");
        assert_eq!(eager.test_accuracy, captured.test_accuracy);
        assert_eq!(
            eager.model.get_parameters(),
            captured.model.get_parameters(),
            "trained parameters must be bit-identical"
        );
        assert_eq!(eager.submit, "eager");
        assert_eq!(captured.submit, "captured");
        // 9 fused kernels per epoch collapse into 1 graph launch.
        assert!(
            captured.kernel_launches < eager.kernel_launches / 4,
            "captured {} vs eager {} launches",
            captured.kernel_launches,
            eager.kernel_launches
        );
        assert!(
            captured.sim_time_ns < eager.sim_time_ns,
            "captured {} vs eager {} ns",
            captured.sim_time_ns,
            eager.sim_time_ns
        );
        assert!(
            captured.bottleneck.launch_overhead_fraction
                < eager.bottleneck.launch_overhead_fraction,
            "captured overhead share {} must beat eager {}",
            captured.bottleneck.launch_overhead_fraction,
            eager.bottleneck.launch_overhead_fraction
        );
    }

    #[test]
    fn captured_submission_survives_fault_injection() {
        // Injected crashes fire before the task body, so a retried epoch
        // task re-resolves the cached graph (or captures fresh) and the
        // trajectory is unchanged.
        let d = ds();
        let clean = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                submit: SubmitMode::Captured,
                ..DistOptions::default()
            },
        )
        .unwrap();
        let faulty = train_distributed_with_opts(
            &d,
            2,
            &cfg(),
            PartitionStrategy::Metis,
            DistOptions {
                submit: SubmitMode::Captured,
                fault_plan: FaultPlan::crashes(17, 0.15),
                retry: RetryPolicy::fixed(5, std::time::Duration::ZERO),
                ..DistOptions::default()
            },
        )
        .unwrap();
        assert!(faulty.sched_metrics.total_retries() > 0);
        for (c, f) in clean.epoch_stats.iter().zip(&faulty.epoch_stats) {
            assert_eq!(c.loss, f.loss, "epoch {} diverged under faults", c.epoch);
        }
        assert_eq!(clean.test_accuracy, faulty.test_accuracy);
    }

    #[test]
    fn hierarchical_topology_is_bit_identical_and_faster_over_the_bridge() {
        // The A10 acceptance in miniature: re-wiring the same workers into
        // NVLink islands bridged by the course's Ethernet must not change
        // a single bit of the trajectory — collectives are charge-only —
        // while the hierarchical schedule moves most ring steps onto the
        // fast tier and beats the flat bridge ring outright.
        let d = ds();
        let run = |topology| {
            train_distributed_with_opts(
                &d,
                4,
                &cfg(),
                PartitionStrategy::Metis,
                DistOptions {
                    topology,
                    residency: ResidencyMode::Resident,
                    comm: CommMode::BucketedOverlap {
                        bucket_bytes: 1 << 20,
                    },
                    ..DistOptions::default()
                },
            )
            .unwrap()
        };
        let flat = run(Topology::Flat(LinkKind::Ethernet));
        let hier = run(Topology::nvlink_islands(2));
        assert_eq!(flat.epoch_stats, hier.epoch_stats, "losses diverged");
        assert_eq!(flat.test_accuracy, hier.test_accuracy);
        assert_eq!(
            flat.model.get_parameters(),
            hier.model.get_parameters(),
            "trained parameters must be bit-identical"
        );
        assert_eq!(flat.topology, "flat");
        assert_eq!(hier.topology, "hierarchical");
        assert!(
            hier.sim_time_ns < flat.sim_time_ns,
            "hierarchical {} ns must beat flat bridge {} ns",
            hier.sim_time_ns,
            flat.sim_time_ns
        );
        assert!(hier.exposed_comm_ns <= flat.exposed_comm_ns);
        // Per-tier profiler attribution: only the hierarchical run has
        // bridge-tier events on device 0's lane.
        assert_eq!(flat.bottleneck.comm_exposed_fraction_inter, 0.0);
        assert!(hier.bottleneck.comm_exposed_fraction_intra >= 0.0);
    }

    #[test]
    fn fp16_compression_halves_wire_bytes_with_bounded_error() {
        // The compression arm: fp16 + error feedback halves the collective
        // payload (and the simulated comm time with it); the trajectory is
        // no longer bit-identical, but stays pinned to the f32 run.
        let d = ds();
        let run = |compression| {
            train_distributed_with_opts(
                &d,
                2,
                &cfg(),
                PartitionStrategy::Metis,
                DistOptions {
                    compression,
                    residency: ResidencyMode::Resident,
                    comm: CommMode::BucketedOverlap {
                        bucket_bytes: 1 << 20,
                    },
                    ..DistOptions::default()
                },
            )
            .unwrap()
        };
        let full = run(Compression::None);
        let half = run(Compression::Fp16ErrorFeedback);
        assert_eq!(full.compression, "f32");
        assert_eq!(half.compression, "fp16");
        assert!(
            half.p2p_bytes * 10 < full.p2p_bytes * 6,
            "fp16 wire bytes {} must be ~half of f32's {}",
            half.p2p_bytes,
            full.p2p_bytes
        );
        assert!(
            half.sim_time_ns < full.sim_time_ns,
            "half the payload must shorten the makespan ({} vs {})",
            half.sim_time_ns,
            full.sim_time_ns
        );
        // Bounded error, not drift: every epoch's loss tracks the f32 run
        // and the compressed run still converges to the same quality.
        for (a, b) in full.epoch_stats.iter().zip(&half.epoch_stats) {
            assert!(
                (a.loss - b.loss).abs() < 0.05,
                "epoch {} loss drifted: f32 {} vs fp16 {}",
                a.epoch,
                a.loss,
                b.loss
            );
        }
        let first = half.epoch_stats.first().unwrap().loss;
        let last = half.epoch_stats.last().unwrap().loss;
        assert!(last < 0.8 * first, "compressed run must converge");
        assert!(
            (half.test_accuracy - full.test_accuracy).abs() < 0.05,
            "accuracy {} vs {}",
            half.test_accuracy,
            full.test_accuracy
        );
    }

    #[test]
    fn k1_distributed_close_to_sequential_accuracy() {
        let d = ds();
        let seq = train_sequential(&d, &cfg());
        let dist = train_distributed(&d, 1, &cfg(), PartitionStrategy::Metis).unwrap();
        assert!(
            (dist.test_accuracy - seq.test_accuracy).abs() < 0.1,
            "k=1 {} vs sequential {}",
            dist.test_accuracy,
            seq.test_accuracy
        );
        assert_eq!(dist.edge_cut, 0.0);
    }
}
