//! # sagegpu-gcn — Algorithm 1: distributed GCN training
//!
//! This crate is the reproduction of the paper's only algorithm —
//! *Distributed GCN Training Using METIS Partitioning and Dask* — plus the
//! sequential baseline students compared against and the experiment
//! harness behind §III-B's two empirical observations:
//!
//! 1. "simply splitting the graph and distributing the training yielded
//!    **minimal performance improvement**", and
//! 2. "a notable outcome was the **enhanced prediction accuracy** scores
//!    after splitting and training, particularly when compared to
//!    sequential approaches."
//!
//! The pipeline follows the paper's pseudocode line by line:
//!
//! | Algorithm 1 | This crate |
//! |---|---|
//! | 2: compute normalized adjacency Ã | [`sagegpu_graph::normalize`] |
//! | 3: partition G with METIS | [`sagegpu_graph::partition::metis_partition`] |
//! | 4: Dask cluster, worker per GPU | [`taskflow::cluster::ClusterBuilder::gpus`] |
//! | 5–6: distribute Gᵢ, Xᵢ, Yᵢ | [`distributed::train_distributed`] scatter phase |
//! | 7–8: init + broadcast θ | broadcast of [`sagegpu_nn::layers::Gcn`] params |
//! | 9–11: local loss + gradients | per-worker tape autograd |
//! | 12: aggregate gradients | [`sagegpu_nn::parallel::weighted_average_gradients`] + ring all-reduce cost |
//! | 13: global optimizer update | [`sagegpu_nn::optim::Adam`] |
//!
//! Every kernel and transfer is charged to the simulated GPUs, so the
//! experiment reports both real accuracy (the arithmetic is genuine) and
//! simulated wall-clock (the timing model is the GPU simulator's).

pub mod distributed;
pub mod exec;
pub mod experiment;
pub mod sequential;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::distributed::{train_distributed, CommMode, DistResult, PartitionStrategy};
    pub use crate::exec::{charge_epoch, charge_epoch_tracked, EpochDims, ExecMode};
    pub use crate::experiment::{scaling_experiment, ScalingRow};
    pub use crate::sequential::{train_sequential, SeqResult};
    pub use crate::TrainConfig;
}

/// Hyperparameters shared by sequential and distributed training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Model initialization seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 30,
            lr: 0.05,
            seed: 42,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    pub epoch: usize,
    pub loss: f32,
}
