//! Per-phase kernel charging for one GCN training epoch.
//!
//! Training arithmetic runs on the host (the tape autograd is real); the
//! simulator only *prices* it. Earlier revisions priced a whole epoch as a
//! single mega-kernel, which made launch overhead invisible and left
//! nothing for fusion to save. This module charges an epoch as the kernel
//! sequence a real implementation would issue, in two flavors:
//!
//! * [`ExecMode::PerOpSerial`] — every logical op is its own launch
//!   (sgemm, then bias add, then ReLU, …): 17 launches per epoch.
//! * [`ExecMode::FusedOverlapped`] — the bias and ReLU epilogues ride the
//!   sgemm launches ([`KernelProfile::fused_linear_relu`]) and the backward
//!   dX/dW/db triple collapses into one [`KernelProfile::fused_linear_bwd`]
//!   launch: 9 launches per epoch.
//!
//! Both plans charge the *same* sparse-aggregation and softmax/cross-entropy
//! launches with the same access patterns, so the fused plan's advantage is
//! exactly what fusion buys on hardware: fewer launch overheads and no
//! intermediate round-trips through global memory for the dense epilogues.
//! The model arithmetic is identical in both modes — only the cost model
//! changes — so losses and accuracies are bit-for-bit equal.

use gpu_sim::{Gpu, KernelProfile, LaunchConfig, StreamId};

/// Number of trainable parameters of the two-layer GCN, in the order
/// [`sagegpu_nn::layers::Gcn::get_parameters`] lists them: `[W1, b1, W2, b2]`.
pub const GCN_PARAM_COUNT: usize = 4;

/// How an epoch's kernel work is priced (and, in the distributed trainer,
/// whether uploads overlap compute across streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One launch per logical op, everything on the default stream.
    PerOpSerial,
    /// Fused epilogues + copy/compute overlap where the trainer supports it.
    FusedOverlapped,
}

impl ExecMode {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::PerOpSerial => "serial",
            ExecMode::FusedOverlapped => "fused",
        }
    }
}

/// The shapes that determine an epoch's kernel sequence: `n` nodes, `nnz`
/// adjacency non-zeros, input width `d`, hidden width `h`, `c` classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochDims {
    pub n: u64,
    pub nnz: u64,
    pub d: u64,
    pub h: u64,
    pub c: u64,
}

impl EpochDims {
    fn sanitized(&self) -> EpochDims {
        EpochDims {
            n: self.n.max(1),
            nnz: self.nnz.max(1),
            d: self.d.max(1),
            h: self.h.max(1),
            c: self.c.max(1),
        }
    }

    /// The launch sequence an epoch charges under `mode`.
    fn launch_plan(&self, mode: ExecMode) -> Vec<(&'static str, LaunchConfig, KernelProfile)> {
        let EpochDims { n, nnz, d, h, c } = self.sanitized();
        let rows = |m: u64| LaunchConfig::for_elements(m, 128);
        let elems = |m: u64| LaunchConfig::for_elements(m, 256);
        let tile = |r: u64, cc: u64| LaunchConfig::for_matrix(r, cc, 16);
        // Shared by both plans: the gather-heavy sparse aggregations and the
        // softmax/cross-entropy head are charged identically, so the modes
        // differ only in how the dense linear work is packaged.
        let softmax = (
            "softmax_xent",
            rows(n),
            KernelProfile::elementwise(n * c, 6, 12),
        );
        match mode {
            ExecMode::PerOpSerial => vec![
                // Forward, layer 1: aggregate, sgemm, bias, ReLU.
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
                ("sgemm", tile(n, h), KernelProfile::matmul(n, d, h)),
                (
                    "bias_add",
                    elems(n * h),
                    KernelProfile::elementwise(n * h, 1, 12),
                ),
                (
                    "relu",
                    elems(n * h),
                    KernelProfile::elementwise(n * h, 1, 8),
                ),
                // Forward, layer 2: aggregate, sgemm, bias.
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                ("sgemm", tile(n, c), KernelProfile::matmul(n, h, c)),
                (
                    "bias_add",
                    elems(n * c),
                    KernelProfile::elementwise(n * c, 1, 12),
                ),
                softmax,
                // Backward, layer 2: db, dX, dW, then back through Â.
                ("bias_bwd", elems(n * c), KernelProfile::reduction(n * c)),
                ("sgemm_bwd", tile(n, h), KernelProfile::matmul(n, c, h)),
                ("sgemm_bwd", tile(h, c), KernelProfile::matmul(h, n, c)),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                // Backward, layer 1: ReLU mask, db, dX, dW, back through Â.
                (
                    "relu_bwd",
                    elems(n * h),
                    KernelProfile::elementwise(n * h, 1, 12),
                ),
                ("bias_bwd", elems(n * h), KernelProfile::reduction(n * h)),
                ("sgemm_bwd", tile(n, d), KernelProfile::matmul(n, h, d)),
                ("sgemm_bwd", tile(d, h), KernelProfile::matmul(d, n, h)),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
            ],
            ExecMode::FusedOverlapped => vec![
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
                (
                    "linear_relu",
                    tile(n, h),
                    KernelProfile::fused_linear_relu(n, d, h),
                ),
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                ("linear", tile(n, c), KernelProfile::fused_linear(n, h, c)),
                softmax,
                (
                    "linear_bwd",
                    tile(n, c),
                    KernelProfile::fused_linear_bwd(n, h, c, false),
                ),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                (
                    "linear_relu_bwd",
                    tile(n, h),
                    KernelProfile::fused_linear_bwd(n, d, h, true),
                ),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
            ],
        }
    }

    /// Number of kernel launches one epoch charges under `mode`.
    pub fn launch_count(&self, mode: ExecMode) -> usize {
        self.launch_plan(mode).len()
    }
}

/// Which launch of the plan *retires* each parameter gradient: pairs of
/// `(launch index, parameter indices)`. Parameter indices follow
/// [`sagegpu_nn::layers::Gcn::get_parameters`] order (`[W1, b1, W2, b2]`); launch
/// indices follow `launch_plan(mode)`. Backward runs last layer first, so
/// high-indexed parameters retire first — the property DDP-style bucketing
/// exploits to overlap their all-reduce with the rest of backward.
fn grad_ready_marks(mode: ExecMode) -> &'static [(usize, &'static [usize])] {
    match mode {
        // Serial: db2 at `bias_bwd` (8), dW2 at the second `sgemm_bwd` (10),
        // db1 at `bias_bwd` (13), dW1 at the fifth `sgemm_bwd` (15).
        ExecMode::PerOpSerial => &[(8, &[3]), (10, &[2]), (13, &[1]), (15, &[0])],
        // Fused: `linear_bwd` (5) emits {dW2, db2}; `linear_relu_bwd` (7)
        // emits {dW1, db1}. The trailing `spmm_bwd` (8) only produces input
        // gradients — the overlap window even a single bucket can use.
        ExecMode::FusedOverlapped => &[(5, &[2, 3]), (7, &[0, 1])],
    }
}

/// Charges one epoch's kernel sequence to `gpu` and runs `body` (the real
/// forward/backward/step arithmetic) inside the first launch. The remaining
/// launches of the plan are cost-only — the work they price already happened
/// in `body`, which keeps the host arithmetic independent of the plan.
pub fn charge_epoch<T>(gpu: &Gpu, mode: ExecMode, dims: EpochDims, body: impl FnOnce() -> T) -> T {
    charge_epoch_tracked(gpu, mode, dims, body).0
}

/// Like [`charge_epoch`], but also records *when each parameter gradient
/// retired* on the simulated timeline: the returned vector has
/// [`GCN_PARAM_COUNT`] entries, `ready[p]` being the default-stream event
/// timestamp after the launch that produced gradient `p` (see
/// `grad_ready_marks`). These timestamps are what lets a bucketed
/// all-reduce launch each bucket mid-backward instead of after the epoch.
pub fn charge_epoch_tracked<T>(
    gpu: &Gpu,
    mode: ExecMode,
    dims: EpochDims,
    body: impl FnOnce() -> T,
) -> (T, Vec<u64>) {
    let marks = grad_ready_marks(mode);
    let mut ready = vec![0u64; GCN_PARAM_COUNT];
    let mut body = Some(body);
    let mut out = None;
    for (i, (name, cfg, profile)) in dims.launch_plan(mode).into_iter().enumerate() {
        match body.take() {
            Some(b) => {
                out = Some(
                    gpu.launch(name, cfg, profile, b)
                        .expect("epoch launch is valid"),
                )
            }
            None => {
                gpu.launch(name, cfg, profile, || ())
                    .expect("epoch launch is valid");
            }
        }
        if let Some((_, params)) = marks.iter().find(|(idx, _)| *idx == i) {
            let t = gpu.record_event(StreamId::DEFAULT).timestamp_ns();
            for &p in *params {
                ready[p] = t;
            }
        }
    }
    (out.expect("launch plan is never empty"), ready)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn dims() -> EpochDims {
        EpochDims {
            n: 120,
            nnz: 900,
            d: 16,
            h: 32,
            c: 3,
        }
    }

    #[test]
    fn fused_plan_launches_fewer_kernels() {
        assert_eq!(dims().launch_count(ExecMode::PerOpSerial), 17);
        assert_eq!(dims().launch_count(ExecMode::FusedOverlapped), 9);
    }

    #[test]
    fn charge_epoch_runs_body_once_and_returns_its_value() {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let mut calls = 0;
        let out = charge_epoch(&gpu, ExecMode::FusedOverlapped, dims(), || {
            calls += 1;
            41 + calls
        });
        assert_eq!(out, 42);
        assert_eq!(calls, 1);
        assert_eq!(gpu.kernels_launched(), 9);
    }

    #[test]
    fn fused_epoch_is_strictly_cheaper_than_serial() {
        let serial = Gpu::new(0, DeviceSpec::t4());
        let fused = Gpu::new(1, DeviceSpec::t4());
        charge_epoch(&serial, ExecMode::PerOpSerial, dims(), || ());
        charge_epoch(&fused, ExecMode::FusedOverlapped, dims(), || ());
        assert_eq!(serial.kernels_launched(), 17);
        assert_eq!(fused.kernels_launched(), 9);
        assert!(
            fused.now_ns() < serial.now_ns(),
            "fused {} ns must beat serial {} ns",
            fused.now_ns(),
            serial.now_ns()
        );
        // The gap is at least the eight saved launch overheads.
        let saved = serial.now_ns() - fused.now_ns();
        assert!(saved as f64 >= 8.0 * DeviceSpec::t4().launch_overhead_ns);
    }

    #[test]
    fn tracked_epoch_reports_grad_retirement_in_reverse_layer_order() {
        for mode in [ExecMode::PerOpSerial, ExecMode::FusedOverlapped] {
            let gpu = Gpu::new(0, DeviceSpec::t4());
            let (out, ready) = charge_epoch_tracked(&gpu, mode, dims(), || 7);
            assert_eq!(out, 7);
            assert_eq!(ready.len(), GCN_PARAM_COUNT);
            assert!(ready.iter().all(|&t| t > 0), "every gradient retires");
            // Layer-2 gradients (W2 = 2, b2 = 3) retire before layer-1's.
            assert!(ready[3] <= ready[2] || mode == ExecMode::FusedOverlapped);
            assert!(ready[2] < ready[0], "dW2 retires before dW1 ({mode:?})");
            assert!(ready[1] <= ready[0]);
            // The last gradient retires strictly before the epoch ends: the
            // trailing spmm_bwd (input gradients) is still in flight — the
            // window bucketed comm overlaps.
            let last = ready.iter().copied().max().unwrap();
            assert!(
                last < gpu.now_ns(),
                "grads ready at {last}, epoch ends at {} ({mode:?})",
                gpu.now_ns()
            );
        }
    }

    #[test]
    fn tracked_epoch_charges_the_same_timeline_as_untracked() {
        let plain = Gpu::new(0, DeviceSpec::t4());
        let tracked = Gpu::new(1, DeviceSpec::t4());
        charge_epoch(&plain, ExecMode::FusedOverlapped, dims(), || ());
        let _ = charge_epoch_tracked(&tracked, ExecMode::FusedOverlapped, dims(), || ());
        assert_eq!(plain.now_ns(), tracked.now_ns(), "tracking is free");
        assert_eq!(plain.kernels_launched(), tracked.kernels_launched());
    }

    #[test]
    fn zero_sized_partitions_still_charge_a_valid_plan() {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let empty = EpochDims {
            n: 0,
            nnz: 0,
            d: 0,
            h: 0,
            c: 0,
        };
        let out = charge_epoch(&gpu, ExecMode::PerOpSerial, empty, || "ok");
        assert_eq!(out, "ok");
        assert_eq!(gpu.kernels_launched(), 17);
    }
}
