//! Per-phase kernel charging for one GCN training epoch.
//!
//! Training arithmetic runs on the host (the tape autograd is real); the
//! simulator only *prices* it. Earlier revisions priced a whole epoch as a
//! single mega-kernel, which made launch overhead invisible and left
//! nothing for fusion to save. This module charges an epoch as the kernel
//! sequence a real implementation would issue, in two flavors:
//!
//! * [`ExecMode::PerOpSerial`] — every logical op is its own launch
//!   (sgemm, then bias add, then ReLU, …): 17 launches per epoch.
//! * [`ExecMode::FusedOverlapped`] — the bias and ReLU epilogues ride the
//!   sgemm launches ([`KernelProfile::fused_linear_relu`]) and the backward
//!   dX/dW/db triple collapses into one [`KernelProfile::fused_linear_bwd`]
//!   launch: 9 launches per epoch.
//!
//! Both plans charge the *same* sparse-aggregation and softmax/cross-entropy
//! launches with the same access patterns, so the fused plan's advantage is
//! exactly what fusion buys on hardware: fewer launch overheads and no
//! intermediate round-trips through global memory for the dense epilogues.
//! The model arithmetic is identical in both modes — only the cost model
//! changes — so losses and accuracies are bit-for-bit equal.

use gpu_sim::{
    CmdEvent, Command, Gpu, GpuError, Graph, KernelCommand, KernelPricing, KernelProfile,
    LaunchConfig, StreamId,
};

/// Number of trainable parameters of the two-layer GCN, in the order
/// [`sagegpu_nn::layers::Gcn::get_parameters`] lists them: `[W1, b1, W2, b2]`.
pub const GCN_PARAM_COUNT: usize = 4;

/// How an epoch's kernel work is priced (and, in the distributed trainer,
/// whether uploads overlap compute across streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One launch per logical op, everything on the default stream.
    PerOpSerial,
    /// Fused epilogues + copy/compute overlap where the trainer supports it.
    FusedOverlapped,
}

impl ExecMode {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::PerOpSerial => "serial",
            ExecMode::FusedOverlapped => "fused",
        }
    }
}

/// How epoch commands reach the device — the A09 ablation knob. Both modes
/// charge the same kernels with the same durations; they differ only in
/// submission cost: eager pays one launch overhead per kernel, captured
/// pays one per epoch (the graph launch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitMode {
    /// Every kernel submitted and retired individually (per-launch
    /// overhead), as [`charge_epoch_tracked`] does.
    Eager,
    /// The epoch's command DAG is captured once ([`capture_epoch`]) and
    /// replayed per epoch ([`EpochGraph::charge`]).
    Captured,
}

impl SubmitMode {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            SubmitMode::Eager => "eager",
            SubmitMode::Captured => "captured",
        }
    }
}

/// The shapes that determine an epoch's kernel sequence: `n` nodes, `nnz`
/// adjacency non-zeros, input width `d`, hidden width `h`, `c` classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochDims {
    pub n: u64,
    pub nnz: u64,
    pub d: u64,
    pub h: u64,
    pub c: u64,
}

impl EpochDims {
    fn sanitized(&self) -> EpochDims {
        EpochDims {
            n: self.n.max(1),
            nnz: self.nnz.max(1),
            d: self.d.max(1),
            h: self.h.max(1),
            c: self.c.max(1),
        }
    }

    /// The launch sequence an epoch charges under `mode`.
    fn launch_plan(&self, mode: ExecMode) -> Vec<(&'static str, LaunchConfig, KernelProfile)> {
        let EpochDims { n, nnz, d, h, c } = self.sanitized();
        let rows = |m: u64| LaunchConfig::for_elements(m, 128);
        let elems = |m: u64| LaunchConfig::for_elements(m, 256);
        let tile = |r: u64, cc: u64| LaunchConfig::for_matrix(r, cc, 16);
        // Shared by both plans: the gather-heavy sparse aggregations and the
        // softmax/cross-entropy head are charged identically, so the modes
        // differ only in how the dense linear work is packaged.
        let softmax = (
            "softmax_xent",
            rows(n),
            KernelProfile::elementwise(n * c, 6, 12),
        );
        match mode {
            ExecMode::PerOpSerial => vec![
                // Forward, layer 1: aggregate, sgemm, bias, ReLU.
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
                ("sgemm", tile(n, h), KernelProfile::matmul(n, d, h)),
                (
                    "bias_add",
                    elems(n * h),
                    KernelProfile::elementwise(n * h, 1, 12),
                ),
                (
                    "relu",
                    elems(n * h),
                    KernelProfile::elementwise(n * h, 1, 8),
                ),
                // Forward, layer 2: aggregate, sgemm, bias.
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                ("sgemm", tile(n, c), KernelProfile::matmul(n, h, c)),
                (
                    "bias_add",
                    elems(n * c),
                    KernelProfile::elementwise(n * c, 1, 12),
                ),
                softmax,
                // Backward, layer 2: db, dX, dW, then back through Â.
                ("bias_bwd", elems(n * c), KernelProfile::reduction(n * c)),
                ("sgemm_bwd", tile(n, h), KernelProfile::matmul(n, c, h)),
                ("sgemm_bwd", tile(h, c), KernelProfile::matmul(h, n, c)),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                // Backward, layer 1: ReLU mask, db, dX, dW, back through Â.
                (
                    "relu_bwd",
                    elems(n * h),
                    KernelProfile::elementwise(n * h, 1, 12),
                ),
                ("bias_bwd", elems(n * h), KernelProfile::reduction(n * h)),
                ("sgemm_bwd", tile(n, d), KernelProfile::matmul(n, h, d)),
                ("sgemm_bwd", tile(d, h), KernelProfile::matmul(d, n, h)),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
            ],
            ExecMode::FusedOverlapped => vec![
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
                (
                    "linear_relu",
                    tile(n, h),
                    KernelProfile::fused_linear_relu(n, d, h),
                ),
                ("spmm_agg", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                ("linear", tile(n, c), KernelProfile::fused_linear(n, h, c)),
                softmax,
                (
                    "linear_bwd",
                    tile(n, c),
                    KernelProfile::fused_linear_bwd(n, h, c, false),
                ),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, h)),
                (
                    "linear_relu_bwd",
                    tile(n, h),
                    KernelProfile::fused_linear_bwd(n, d, h, true),
                ),
                ("spmm_bwd", rows(n), KernelProfile::sparse_aggregate(nnz, d)),
            ],
        }
    }

    /// Number of kernel launches one epoch charges under `mode`.
    pub fn launch_count(&self, mode: ExecMode) -> usize {
        self.launch_plan(mode).len()
    }
}

/// Which launch of the plan *retires* each parameter gradient: pairs of
/// `(launch index, parameter indices)`. Parameter indices follow
/// [`sagegpu_nn::layers::Gcn::get_parameters`] order (`[W1, b1, W2, b2]`); launch
/// indices follow `launch_plan(mode)`. Backward runs last layer first, so
/// high-indexed parameters retire first — the property DDP-style bucketing
/// exploits to overlap their all-reduce with the rest of backward.
fn grad_ready_marks(mode: ExecMode) -> &'static [(usize, &'static [usize])] {
    match mode {
        // Serial: db2 at `bias_bwd` (8), dW2 at the second `sgemm_bwd` (10),
        // db1 at `bias_bwd` (13), dW1 at the fifth `sgemm_bwd` (15).
        ExecMode::PerOpSerial => &[(8, &[3]), (10, &[2]), (13, &[1]), (15, &[0])],
        // Fused: `linear_bwd` (5) emits {dW2, db2}; `linear_relu_bwd` (7)
        // emits {dW1, db1}. The trailing `spmm_bwd` (8) only produces input
        // gradients — the overlap window even a single bucket can use.
        ExecMode::FusedOverlapped => &[(5, &[2, 3]), (7, &[0, 1])],
    }
}

/// Emits one epoch's command stream onto the default stream — every kernel
/// of the plan, with an `EventRecord` after each gradient-retiring launch —
/// running `body` (the real forward/backward/step arithmetic) at the first
/// kernel's submission. Nothing is charged here: the caller rings the
/// doorbell once (eager), or the whole batch lands in an in-flight capture.
/// Returns the body's value and the recorded events with the parameter
/// indices each one retires.
fn emit_epoch<T>(
    gpu: &Gpu,
    mode: ExecMode,
    dims: EpochDims,
    body: impl FnOnce() -> T,
) -> (T, Vec<(CmdEvent, &'static [usize])>) {
    let marks = grad_ready_marks(mode);
    let mut body = Some(body);
    let mut out = None;
    let mut records = Vec::new();
    for (i, (name, cfg, profile)) in dims.launch_plan(mode).into_iter().enumerate() {
        let (dur, occ) = gpu
            .kernel_duration_ns(&cfg, &profile)
            .expect("epoch launch is valid");
        if let Some(b) = body.take() {
            out = Some(b());
        }
        gpu.submit(
            StreamId::DEFAULT,
            Command::Kernel(KernelCommand {
                name: name.to_owned(),
                dur_ns: dur,
                bytes: profile.bytes,
                flops: profile.flops,
                occupancy: occ.occupancy,
                graph: false,
                pricing: Some(KernelPricing { cfg, profile }),
            }),
        );
        if let Some((_, params)) = marks.iter().find(|(idx, _)| *idx == i) {
            let ev = gpu.create_cmd_event();
            gpu.submit(StreamId::DEFAULT, Command::EventRecord { event: ev });
            records.push((ev, *params));
        }
    }
    (out.expect("launch plan is never empty"), records)
}

/// Charges one epoch's kernel sequence to `gpu` and runs `body` (the real
/// forward/backward/step arithmetic) at the first kernel's submission. The
/// remaining launches of the plan are cost-only — the work they price
/// already happened in `body`, which keeps the host arithmetic independent
/// of the plan. The whole epoch is submitted as one command batch and
/// retired by a single doorbell.
pub fn charge_epoch<T>(gpu: &Gpu, mode: ExecMode, dims: EpochDims, body: impl FnOnce() -> T) -> T {
    charge_epoch_tracked(gpu, mode, dims, body).0
}

/// Like [`charge_epoch`], but also records *when each parameter gradient
/// retired* on the simulated timeline: the returned vector has
/// [`GCN_PARAM_COUNT`] entries, `ready[p]` being the timestamp the command
/// processor resolved for the `EventRecord` after the launch that produced
/// gradient `p` (see `grad_ready_marks`). These timestamps are what lets a
/// bucketed all-reduce launch each bucket mid-backward instead of after the
/// epoch.
pub fn charge_epoch_tracked<T>(
    gpu: &Gpu,
    mode: ExecMode,
    dims: EpochDims,
    body: impl FnOnce() -> T,
) -> (T, Vec<u64>) {
    let (out, records) = emit_epoch(gpu, mode, dims, body);
    gpu.doorbell().expect("a single-stream epoch never stalls");
    let mut ready = vec![0u64; GCN_PARAM_COUNT];
    for (ev, params) in records {
        let t = gpu
            .cmd_event_ns(ev)
            .expect("every epoch record retires at the doorbell");
        for &p in params {
            ready[p] = t;
        }
    }
    (out, ready)
}

/// One GCN epoch captured as a command graph: [`capture_epoch`] records the
/// full kernel DAG (with its gradient-retirement `EventRecord`s) once, and
/// [`EpochGraph::charge`] replays it per epoch — one launch overhead for
/// the whole plan instead of one per kernel, with the gradient-readiness
/// timestamps still resolved per replay.
pub struct EpochGraph {
    graph: Graph,
    /// Parameter indices retired by each captured `EventRecord`, in capture
    /// (= replay event) order.
    marks: Vec<&'static [usize]>,
}

/// Records `mode`'s epoch plan for `dims` as a replayable graph. Charges
/// nothing: capture diverts the submissions, and the kernel bodies are
/// no-ops (the real arithmetic runs per epoch, in [`EpochGraph::charge`]'s
/// `body`).
pub fn capture_epoch(gpu: &Gpu, mode: ExecMode, dims: EpochDims) -> Result<EpochGraph, GpuError> {
    gpu.begin_capture(match mode {
        ExecMode::PerOpSerial => "gcn-epoch/serial",
        ExecMode::FusedOverlapped => "gcn-epoch/fused",
    })?;
    let (_, records) = emit_epoch(gpu, mode, dims, || ());
    let graph = gpu.end_capture()?;
    Ok(EpochGraph {
        graph,
        marks: records.into_iter().map(|(_, params)| params).collect(),
    })
}

impl EpochGraph {
    /// Runs `body` (the real epoch arithmetic) and replays the captured
    /// command DAG to charge it, returning the body's value and the
    /// per-parameter gradient-retirement timestamps — the same contract as
    /// [`charge_epoch_tracked`], at amortized near-zero submission cost.
    pub fn charge<T>(&self, gpu: &Gpu, body: impl FnOnce() -> T) -> (T, Vec<u64>) {
        let out = body();
        let replay = self
            .graph
            .replay(gpu)
            .expect("a captured epoch replays on its own device");
        let mut ready = vec![0u64; GCN_PARAM_COUNT];
        for (i, params) in self.marks.iter().enumerate() {
            let t = replay
                .event_ns(i)
                .expect("every captured record resolves on replay");
            for &p in *params {
                ready[p] = t;
            }
        }
        (out, ready)
    }

    /// Number of captured commands (kernels + event records).
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the graph is empty (never true for a captured epoch).
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn dims() -> EpochDims {
        EpochDims {
            n: 120,
            nnz: 900,
            d: 16,
            h: 32,
            c: 3,
        }
    }

    #[test]
    fn fused_plan_launches_fewer_kernels() {
        assert_eq!(dims().launch_count(ExecMode::PerOpSerial), 17);
        assert_eq!(dims().launch_count(ExecMode::FusedOverlapped), 9);
    }

    #[test]
    fn charge_epoch_runs_body_once_and_returns_its_value() {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let mut calls = 0;
        let out = charge_epoch(&gpu, ExecMode::FusedOverlapped, dims(), || {
            calls += 1;
            41 + calls
        });
        assert_eq!(out, 42);
        assert_eq!(calls, 1);
        assert_eq!(gpu.kernels_launched(), 9);
    }

    #[test]
    fn fused_epoch_is_strictly_cheaper_than_serial() {
        let serial = Gpu::new(0, DeviceSpec::t4());
        let fused = Gpu::new(1, DeviceSpec::t4());
        charge_epoch(&serial, ExecMode::PerOpSerial, dims(), || ());
        charge_epoch(&fused, ExecMode::FusedOverlapped, dims(), || ());
        assert_eq!(serial.kernels_launched(), 17);
        assert_eq!(fused.kernels_launched(), 9);
        assert!(
            fused.now_ns() < serial.now_ns(),
            "fused {} ns must beat serial {} ns",
            fused.now_ns(),
            serial.now_ns()
        );
        // The gap is at least the eight saved launch overheads.
        let saved = serial.now_ns() - fused.now_ns();
        assert!(saved as f64 >= 8.0 * DeviceSpec::t4().launch_overhead_ns);
    }

    #[test]
    fn tracked_epoch_reports_grad_retirement_in_reverse_layer_order() {
        for mode in [ExecMode::PerOpSerial, ExecMode::FusedOverlapped] {
            let gpu = Gpu::new(0, DeviceSpec::t4());
            let (out, ready) = charge_epoch_tracked(&gpu, mode, dims(), || 7);
            assert_eq!(out, 7);
            assert_eq!(ready.len(), GCN_PARAM_COUNT);
            assert!(ready.iter().all(|&t| t > 0), "every gradient retires");
            // Layer-2 gradients (W2 = 2, b2 = 3) retire before layer-1's.
            assert!(ready[3] <= ready[2] || mode == ExecMode::FusedOverlapped);
            assert!(ready[2] < ready[0], "dW2 retires before dW1 ({mode:?})");
            assert!(ready[1] <= ready[0]);
            // The last gradient retires strictly before the epoch ends: the
            // trailing spmm_bwd (input gradients) is still in flight — the
            // window bucketed comm overlaps.
            let last = ready.iter().copied().max().unwrap();
            assert!(
                last < gpu.now_ns(),
                "grads ready at {last}, epoch ends at {} ({mode:?})",
                gpu.now_ns()
            );
        }
    }

    #[test]
    fn tracked_epoch_charges_the_same_timeline_as_untracked() {
        let plain = Gpu::new(0, DeviceSpec::t4());
        let tracked = Gpu::new(1, DeviceSpec::t4());
        charge_epoch(&plain, ExecMode::FusedOverlapped, dims(), || ());
        let _ = charge_epoch_tracked(&tracked, ExecMode::FusedOverlapped, dims(), || ());
        assert_eq!(plain.now_ns(), tracked.now_ns(), "tracking is free");
        assert_eq!(plain.kernels_launched(), tracked.kernels_launched());
    }

    #[test]
    fn captured_epoch_saves_per_kernel_overheads_and_keeps_marks() {
        for mode in [ExecMode::PerOpSerial, ExecMode::FusedOverlapped] {
            let eager = Gpu::new(0, DeviceSpec::t4());
            let (_, eager_ready) = charge_epoch_tracked(&eager, mode, dims(), || ());

            let captured = Gpu::new(1, DeviceSpec::t4());
            let graph = capture_epoch(&captured, mode, dims()).unwrap();
            assert_eq!(captured.now_ns(), 0, "capture charges nothing");
            assert_eq!(captured.kernels_launched(), 0);
            let (out, ready) = graph.charge(&captured, || 7);
            assert_eq!(out, 7);
            // Replay pays ONE launch overhead for the whole plan; eager
            // pays one per kernel.
            let k = dims().launch_count(mode) as u64;
            let oh = DeviceSpec::t4().launch_overhead_ns as u64;
            assert_eq!(eager.now_ns() - captured.now_ns(), (k - 1) * oh);
            assert_eq!(captured.kernels_launched(), 1, "one graph launch");
            // Gradient readiness keeps the same retirement ORDER (the
            // bucketing contract), just on the cheaper timeline.
            let order = |r: &[u64]| {
                let mut idx: Vec<usize> = (0..r.len()).collect();
                idx.sort_by_key(|&p| r[p]);
                idx
            };
            assert_eq!(order(&ready), order(&eager_ready), "{mode:?}");
            assert!(ready.iter().all(|&t| t > 0));
        }
    }

    #[test]
    fn replaying_n_epochs_matches_n_eager_epochs_minus_overheads() {
        let dims = dims();
        let mode = ExecMode::FusedOverlapped;
        let eager = Gpu::new(0, DeviceSpec::t4());
        for _ in 0..5 {
            charge_epoch(&eager, mode, dims, || ());
        }
        let captured = Gpu::new(1, DeviceSpec::t4());
        let graph = capture_epoch(&captured, mode, dims).unwrap();
        let mut sum = 0u64;
        for i in 0..5u64 {
            let (v, _) = graph.charge(&captured, || i);
            sum += v;
        }
        assert_eq!(sum, 10, "body runs per replay");
        let k = dims.launch_count(mode) as u64;
        let oh = DeviceSpec::t4().launch_overhead_ns as u64;
        assert_eq!(eager.now_ns() - captured.now_ns(), 5 * (k - 1) * oh);
        assert_eq!(captured.kernels_launched(), 5);
    }

    #[test]
    fn zero_sized_partitions_still_charge_a_valid_plan() {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let empty = EpochDims {
            n: 0,
            nnz: 0,
            d: 0,
            h: 0,
            c: 0,
        };
        let out = charge_epoch(&gpu, ExecMode::PerOpSerial, empty, || "ok");
        assert_eq!(out, "ok");
        assert_eq!(gpu.kernels_launched(), 17);
    }
}
