//! Sequential (single-GPU) GCN training — the paper's baseline.

use crate::exec::{charge_epoch, EpochDims, ExecMode};
use crate::{EpochStats, TrainConfig};
use gpu_sim::{DeviceSpec, Gpu, KernelProfile};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sagegpu_graph::generators::GraphDataset;
use sagegpu_graph::normalize::normalized_adjacency;
use sagegpu_nn::layers::Gcn;
use sagegpu_nn::metrics::accuracy;
use sagegpu_nn::optim::{Adam, Optimizer};
use sagegpu_nn::tape::Tape;
use sagegpu_tensor::dense::Tensor;
use sagegpu_tensor::sparse::CsrMatrix;
use std::sync::Arc;

/// Result of a sequential training run.
#[derive(Debug, Clone)]
pub struct SeqResult {
    pub epoch_stats: Vec<EpochStats>,
    /// Accuracy on held-out nodes, full-graph inference.
    pub test_accuracy: f64,
    /// Accuracy on training nodes (sanity signal).
    pub train_accuracy: f64,
    /// Simulated wall-clock of the whole run (ns).
    pub sim_time_ns: u64,
    /// The trained model.
    pub model: Gcn,
}

/// Builds the normalized-adjacency sparse matrix of a dataset.
pub fn dataset_adjacency(ds: &GraphDataset) -> Arc<CsrMatrix> {
    let (indptr, indices, values) = normalized_adjacency(&ds.graph);
    Arc::new(
        CsrMatrix::new(ds.num_nodes(), ds.num_nodes(), indptr, indices, values)
            .expect("normalization yields valid CSR"),
    )
}

/// Dataset features as a dense tensor.
pub fn dataset_features(ds: &GraphDataset) -> Tensor {
    Tensor::from_vec(ds.num_nodes(), ds.feature_dim, ds.features.clone())
        .expect("feature matrix dims")
}

/// The per-epoch kernel cost of one forward+backward pass over a (sub)graph
/// with `n` nodes, `nnz` adjacency non-zeros, feature width `d`, hidden
/// width `h`, and `c` classes. Backward ≈ 2× forward (the usual rule).
///
/// This is the legacy single-mega-kernel estimate, kept as a coarse
/// aggregate reference; training now charges the per-phase launch plans of
/// [`crate::exec::charge_epoch`], which make launch overhead and fusion
/// visible to the simulator.
pub fn epoch_profile(n: u64, nnz: u64, d: u64, h: u64, c: u64) -> KernelProfile {
    let fwd_flops = 2 * nnz * d + 2 * n * d * h + 2 * nnz * h + 2 * n * h * c;
    let fwd_bytes = 4 * (2 * nnz * d + n * (d + h) + 2 * nnz * h + n * (h + c) + d * h + h * c);
    KernelProfile {
        flops: 3 * fwd_flops,
        bytes: 3 * fwd_bytes,
        // Neighbor aggregation dominates and is gather-heavy.
        access: gpu_sim::AccessPattern::Random,
        registers_per_thread: 48,
    }
}

/// One real forward/backward + optimizer step; returns the loss.
pub fn train_step(
    model: &mut Gcn,
    opt: &mut Adam,
    adj: &Arc<CsrMatrix>,
    x: &Tensor,
    labels: &[usize],
    mask: &[bool],
) -> f32 {
    let tape = Tape::new();
    let fwd = model.forward(&tape, Arc::clone(adj), x);
    let loss = tape.cross_entropy(fwd.logits, labels, mask);
    let loss_val = tape.value(loss).get(0, 0);
    let grads = tape.backward(loss);
    let grad_tensors: Vec<Tensor> = fwd
        .params
        .iter()
        .map(|v| grads[v.index()].clone().expect("param gradient"))
        .collect();
    opt.step_all(model.parameters_mut(), &grad_tensors);
    loss_val
}

/// Inference logits for a dataset under `model`.
pub fn infer(model: &Gcn, adj: &Arc<CsrMatrix>, x: &Tensor) -> Tensor {
    let tape = Tape::new();
    let fwd = model.forward(&tape, Arc::clone(adj), x);
    tape.value(fwd.logits)
}

/// Trains on the full graph on one simulated GPU (Algorithm 1 with k = 1,
/// i.e. the "sequential approach" of §III-B).
pub fn train_sequential(ds: &GraphDataset, cfg: &TrainConfig) -> SeqResult {
    let gpu = Gpu::new(0, DeviceSpec::t4());
    let adj = dataset_adjacency(ds);
    let x = dataset_features(ds);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut model = Gcn::new(ds.feature_dim, cfg.hidden, ds.num_classes, &mut rng);
    let mut opt = Adam::new(cfg.lr);

    // Features and adjacency move to the device once.
    let _feat_buf = gpu.htod(x.data()).expect("features fit");
    let dims = EpochDims {
        n: ds.num_nodes() as u64,
        nnz: (2 * ds.graph.num_edges() + ds.num_nodes()) as u64,
        d: ds.feature_dim as u64,
        h: cfg.hidden as u64,
        c: ds.num_classes as u64,
    };

    let mut epoch_stats = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let loss = charge_epoch(&gpu, ExecMode::FusedOverlapped, dims, || {
            train_step(&mut model, &mut opt, &adj, &x, &ds.labels, &ds.train_mask)
        });
        epoch_stats.push(EpochStats { epoch, loss });
    }

    let logits = infer(&model, &adj, &x);
    let test_accuracy = accuracy(&logits, &ds.labels, &ds.test_nodes_mask());
    let train_accuracy = accuracy(&logits, &ds.labels, &ds.train_mask);
    SeqResult {
        epoch_stats,
        test_accuracy,
        train_accuracy,
        sim_time_ns: gpu.now_ns(),
        model,
    }
}

/// Helper trait-ish extension: mask of test nodes.
trait MaskExt {
    fn test_nodes_mask(&self) -> Vec<bool>;
}

impl MaskExt for GraphDataset {
    fn test_nodes_mask(&self) -> Vec<bool> {
        self.train_mask.iter().map(|&m| !m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagegpu_graph::generators::{sbm, SbmParams};

    fn small_ds() -> GraphDataset {
        sbm(
            &SbmParams {
                block_sizes: vec![40, 40, 40],
                p_in: 0.2,
                p_out: 0.01,
                feature_dim: 16,
                feature_separation: 1.5,
                train_fraction: 0.5,
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = small_ds();
        let r = train_sequential(
            &ds,
            &TrainConfig {
                epochs: 25,
                ..Default::default()
            },
        );
        let first = r.epoch_stats.first().unwrap().loss;
        let last = r.epoch_stats.last().unwrap().loss;
        assert!(last < 0.7 * first, "loss {first} → {last}");
    }

    #[test]
    fn accuracy_beats_chance_on_separable_data() {
        let ds = small_ds();
        let r = train_sequential(
            &ds,
            &TrainConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        // 3 balanced classes → chance = 1/3; the SBM is very separable.
        assert!(r.test_accuracy > 0.7, "test accuracy {}", r.test_accuracy);
        assert!(r.train_accuracy >= r.test_accuracy - 0.1);
    }

    #[test]
    fn simulated_time_advances_with_epochs() {
        let ds = small_ds();
        let short = train_sequential(
            &ds,
            &TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let long = train_sequential(
            &ds,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        assert!(long.sim_time_ns > 3 * short.sim_time_ns);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = small_ds();
        let cfg = TrainConfig {
            epochs: 10,
            ..Default::default()
        };
        let a = train_sequential(&ds, &cfg);
        let b = train_sequential(&ds, &cfg);
        assert_eq!(a.test_accuracy, b.test_accuracy);
        assert_eq!(a.sim_time_ns, b.sim_time_ns);
        assert_eq!(a.epoch_stats, b.epoch_stats);
    }

    #[test]
    fn epoch_profile_scales_with_graph_size() {
        let small = epoch_profile(100, 500, 16, 16, 3);
        let big = epoch_profile(1000, 5000, 16, 16, 3);
        assert!(big.flops > 8 * small.flops);
        assert!(big.bytes > 8 * small.bytes);
    }
}
