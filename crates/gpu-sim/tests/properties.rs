//! Property-based invariants of the GPU simulator.

use gpu_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transfer time is strictly monotone in bytes and never below latency.
    #[test]
    fn transfer_time_monotone(a in 1usize..1_000_000, b in 1usize..1_000_000) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let buf_a = gpu.htod(&vec![0u8; a]).unwrap();
        let t_a = gpu.now_ns();
        drop(buf_a);
        let gpu2 = Gpu::new(0, DeviceSpec::t4());
        let buf_b = gpu2.htod(&vec![0u8; b]).unwrap();
        let t_b = gpu2.now_ns();
        drop(buf_b);
        if a < b {
            prop_assert!(t_a <= t_b);
        }
        prop_assert!(t_a as f64 >= DeviceSpec::t4().pcie_latency_ns);
    }

    /// launch_map computes f(i) at every index, for any covering config.
    #[test]
    fn launch_map_total_coverage(n in 1usize..4096, block in 1u32..512) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let mut out = gpu.alloc_zeroed::<f32>(n).unwrap();
        let cfg = LaunchConfig::for_elements(n as u64, block);
        gpu.launch_map("idx", cfg, KernelProfile::elementwise(n as u64, 1, 8), &mut out, |i, _| i as f32)
            .unwrap();
        let host = gpu.dtoh(&out).unwrap();
        for (i, &v) in host.iter().enumerate() {
            prop_assert_eq!(v, i as f32);
        }
    }

    /// Occupancy never increases when registers per thread grow.
    #[test]
    fn occupancy_antitone_in_registers(block in 32u32..1024, r1 in 1u32..128, r2 in 1u32..128) {
        let spec = DeviceSpec::t4();
        let cfg = LaunchConfig::new(gpu_sim::Dim3::x(64), gpu_sim::Dim3::x(block));
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let occ_lo = gpu_sim::occupancy::occupancy(&spec, &cfg, lo);
        let occ_hi = gpu_sim::occupancy::occupancy(&spec, &cfg, hi);
        if let (Some(a), Some(b)) = (occ_lo, occ_hi) {
            prop_assert!(a.occupancy >= b.occupancy - 1e-12);
        }
    }

    /// P2P moves conserve data and memory accounting across devices.
    #[test]
    fn p2p_conserves_data(n in 1usize..10_000, val in -1e6f32..1e6) {
        let c = GpuCluster::homogeneous(2, DeviceSpec::t4(), LinkKind::NvLink);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![val; n]).unwrap();
        let moved = c.p2p(buf, 1).unwrap();
        prop_assert_eq!(d0.mem_used(), 0);
        prop_assert_eq!(d1.mem_used(), 4 * n as u64);
        let back = d1.dtoh(&moved).unwrap();
        prop_assert!(back.iter().all(|&x| x == val));
    }

    /// Any interleaving of pool leases and frees never overshoots device
    /// capacity, and OOM surfaces as a `GpuError`, never a panic.
    #[test]
    fn pool_never_exceeds_capacity(ops in proptest::collection::vec(0u64..4_000_000, 1..64)) {
        let gpu = Gpu::new(0, DeviceSpec::test_tiny()); // 1 MiB capacity
        let cap = gpu.spec().memory.capacity_bytes;
        let pool = MemoryPool::new(&gpu);
        let mut live = Vec::new();
        for op in ops {
            // Low bit chooses free-vs-keep, the rest is the request size.
            let (free_first, bytes) = (op & 1 == 1, op >> 1);
            if free_first && !live.is_empty() {
                live.pop(); // drop a lease: slab goes back to the cache
            }
            match pool.lease(bytes) {
                Ok(lease) => live.push(lease),
                Err(e) => prop_assert!(matches!(e, GpuError::OutOfMemory { .. })),
            }
            prop_assert!(gpu.mem_used() <= cap, "used {} > cap {}", gpu.mem_used(), cap);
        }
    }

    /// After every lease drops, trimming the cache restores `mem_used()` to
    /// its baseline — the pool leaks nothing.
    #[test]
    fn pool_restores_baseline_after_drops(sizes in proptest::collection::vec(1u64..300_000, 1..32)) {
        let gpu = Gpu::new(0, DeviceSpec::test_tiny());
        let baseline = gpu.mem_used();
        let pool = MemoryPool::new(&gpu);
        let mut live = Vec::new();
        for bytes in sizes {
            if let Ok(lease) = pool.lease(bytes) {
                live.push(lease);
            }
        }
        let stats = pool.stats();
        prop_assert!(stats.high_water_bytes <= gpu.spec().memory.capacity_bytes);
        drop(live);
        pool.trim();
        prop_assert_eq!(gpu.mem_used(), baseline);
        let stats = pool.stats();
        prop_assert_eq!(stats.allocs, stats.frees);
        prop_assert_eq!(stats.in_use_bytes, 0);
        prop_assert_eq!(pool.resident_count(), 0);
    }

    /// The roofline duration equals max(compute, memory) + overhead.
    #[test]
    fn roofline_is_max_of_roofs(flops in 1u64..1_000_000_000_000, bytes in 1u64..1_000_000_000) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let cfg = LaunchConfig::for_elements(1 << 16, 256);
        let p = KernelProfile { flops, bytes, access: AccessPattern::Coalesced, registers_per_thread: 32 };
        let (dur, occ) = gpu.kernel_duration_ns(&cfg, &p).unwrap();
        let spec = gpu.spec();
        let occ_factor = (occ.occupancy * 2.0).clamp(0.05, 1.0);
        let compute = flops as f64 / (spec.peak_flops() * occ_factor) * 1e9;
        let mem = bytes as f64 / (spec.memory.bandwidth_bytes_per_sec * 0.85) * 1e9 + spec.memory.latency_ns;
        let expected = spec.launch_overhead_ns + compute.max(mem);
        prop_assert!((dur as f64 - expected).abs() <= expected * 1e-6 + 2.0);
    }
}
