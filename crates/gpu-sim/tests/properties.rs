//! Property-based invariants of the GPU simulator.

use gpu_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transfer time is strictly monotone in bytes and never below latency.
    #[test]
    fn transfer_time_monotone(a in 1usize..1_000_000, b in 1usize..1_000_000) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let buf_a = gpu.htod(&vec![0u8; a]).unwrap();
        let t_a = gpu.now_ns();
        drop(buf_a);
        let gpu2 = Gpu::new(0, DeviceSpec::t4());
        let buf_b = gpu2.htod(&vec![0u8; b]).unwrap();
        let t_b = gpu2.now_ns();
        drop(buf_b);
        if a < b {
            prop_assert!(t_a <= t_b);
        }
        prop_assert!(t_a as f64 >= DeviceSpec::t4().pcie_latency_ns);
    }

    /// LaunchSpec::map computes f(i) at every index, for any covering config.
    #[test]
    fn launch_map_total_coverage(n in 1usize..4096, block in 1u32..512) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let mut out = gpu.alloc_zeroed::<f32>(n).unwrap();
        let cfg = LaunchConfig::for_elements(n as u64, block);
        LaunchSpec::new("idx", cfg, KernelProfile::elementwise(n as u64, 1, 8))
            .map(&gpu, &mut out, |i, _| i as f32)
            .unwrap();
        let host = gpu.dtoh(&out).unwrap();
        for (i, &v) in host.iter().enumerate() {
            prop_assert_eq!(v, i as f32);
        }
    }

    /// Command retirement respects stream order and event edges for ANY
    /// batch of kernels spread over streams with record/wait pairs: within
    /// a stream completions retire in submission order back-to-back, and
    /// every waiting command starts at or after the event it waits on.
    #[test]
    fn retirement_respects_stream_and_event_edges(
        durs in proptest::collection::vec(1u64..50_000, 2..24),
        raw_edges in proptest::collection::vec(0usize..(24 * 24), 0..8),
    ) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let streams = [StreamId::DEFAULT, gpu.create_stream(), gpu.create_stream()];
        // Producer half on stream 1, consumer half on stream 2; an event
        // edge (p, c) orders consumer kernel c after producer kernel p.
        let n = durs.len();
        let mut events = Vec::new();
        for e in &raw_edges {
            let (p, c) = (e / 24, e % 24);
            events.push((p % (n / 2), n / 2 + c % (n - n / 2), gpu.create_cmd_event()));
        }
        let mut kernel_seq = vec![0u64; n];
        for (i, &dur) in durs.iter().enumerate() {
            let stream = streams[if i < n / 2 { 1 } else { 2 }];
            for (_, _, ev) in events.iter().filter(|(_, c, _)| *c == i) {
                gpu.submit(stream, Command::EventWait { event: *ev });
            }
            kernel_seq[i] = gpu.submit(stream, Command::Kernel(KernelCommand {
                name: format!("k{i}"),
                dur_ns: dur,
                bytes: 0,
                flops: 0,
                occupancy: 0.5,
                graph: false,
                pricing: None,
            }));
            for (_, _, ev) in events.iter().filter(|(p, _, _)| *p == i) {
                gpu.submit(stream, Command::EventRecord { event: *ev });
            }
        }
        // Per-stream: completions retire in submission order, back-to-back
        // (a later command never starts before an earlier one ends).
        let all = gpu.sync().unwrap();
        let mut by_seq = std::collections::HashMap::new();
        for s in &streams[1..] {
            let comps: Vec<Completion> = all
                .iter()
                .filter(|c| c.stream == s.ordinal())
                .copied()
                .collect();
            for w in comps.windows(2) {
                prop_assert!(w[0].seq < w[1].seq, "in-stream submission order");
                prop_assert!(w[1].start_ns >= w[0].end_ns, "no overlap within a stream");
            }
            for c in comps {
                by_seq.insert(c.seq, c);
            }
        }
        // Every event edge is respected: the event resolved to the
        // producer kernel's end, and the consumer starts at or after it.
        for (p, c, ev) in &events {
            let t = gpu.cmd_event_ns(*ev);
            prop_assert!(t.is_some(), "all events resolved");
            let t = t.unwrap();
            prop_assert!(t >= by_seq[&kernel_seq[*p]].end_ns, "record after producer");
            prop_assert!(by_seq[&kernel_seq[*c]].start_ns >= t, "consumer after event");
        }
        prop_assert_eq!(gpu.pending_commands(), 0);
        prop_assert_eq!(gpu.kernels_launched(), n as u64);
    }

    /// Replaying a captured random command DAG is deterministic: two
    /// replays of the same trace yield identical per-stream retirement
    /// orders (the full replayed timeline matches event-for-event) and
    /// identical resolved `cmd_event_ns` timestamps.
    #[test]
    fn replay_of_random_dag_is_deterministic(
        durs in proptest::collection::vec(1u64..50_000, 2..16),
        raw_edges in proptest::collection::vec(0usize..(16 * 16), 0..6),
    ) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let sink = gpu.record_trace();
        let streams = [gpu.create_stream(), gpu.create_stream()];
        let n = durs.len();
        let mut events = Vec::new();
        for e in &raw_edges {
            let (p, c) = (e / 16, e % 16);
            events.push((p % (n / 2), n / 2 + c % (n - n / 2), gpu.create_cmd_event()));
        }
        for (i, &dur) in durs.iter().enumerate() {
            let stream = streams[if i < n / 2 { 0 } else { 1 }];
            for (_, _, ev) in events.iter().filter(|(_, c, _)| *c == i) {
                gpu.submit(stream, Command::EventWait { event: *ev });
            }
            gpu.submit(stream, Command::Kernel(KernelCommand {
                name: format!("k{i}"),
                dur_ns: dur,
                bytes: 0,
                flops: 0,
                occupancy: 0.5,
                graph: false,
                pricing: None,
            }));
            for (_, _, ev) in events.iter().filter(|(p, _, _)| *p == i) {
                gpu.submit(stream, Command::EventRecord { event: *ev });
            }
        }
        gpu.sync().unwrap();
        drop(sink);
        let trace = gpu.finish_trace("prop-dag").unwrap();
        let a = gpu_sim::trace::replay(&trace, &WhatIf::default()).unwrap();
        let b = gpu_sim::trace::replay(&trace, &WhatIf::default()).unwrap();
        prop_assert_eq!(a.event_ns, b.event_ns, "cmd_event_ns must be deterministic");
        prop_assert_eq!(a.per_device_ns, b.per_device_ns);
        prop_assert_eq!(a.sim_time_ns, b.sim_time_ns);
        prop_assert_eq!(a.submissions, b.submissions);
        prop_assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(b.events.iter()) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!((x.stream, x.start_ns, x.dur_ns), (y.stream, y.start_ns, y.dur_ns));
        }
        // And the identity replay agrees with the recorded run itself.
        prop_assert_eq!(a.sim_time_ns, trace.sim_time_ns);
        prop_assert_eq!(a.kernel_launches, trace.kernel_launches);
    }

    /// Occupancy never increases when registers per thread grow.
    #[test]
    fn occupancy_antitone_in_registers(block in 32u32..1024, r1 in 1u32..128, r2 in 1u32..128) {
        let spec = DeviceSpec::t4();
        let cfg = LaunchConfig::new(gpu_sim::Dim3::x(64), gpu_sim::Dim3::x(block));
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let occ_lo = gpu_sim::occupancy::occupancy(&spec, &cfg, lo);
        let occ_hi = gpu_sim::occupancy::occupancy(&spec, &cfg, hi);
        if let (Some(a), Some(b)) = (occ_lo, occ_hi) {
            prop_assert!(a.occupancy >= b.occupancy - 1e-12);
        }
    }

    /// P2P moves conserve data and memory accounting across devices.
    #[test]
    fn p2p_conserves_data(n in 1usize..10_000, val in -1e6f32..1e6) {
        let c = GpuCluster::homogeneous(2, DeviceSpec::t4(), LinkKind::NvLink);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![val; n]).unwrap();
        let moved = c.p2p(buf, 1).unwrap();
        prop_assert_eq!(d0.mem_used(), 0);
        prop_assert_eq!(d1.mem_used(), 4 * n as u64);
        let back = d1.dtoh(&moved).unwrap();
        prop_assert!(back.iter().all(|&x| x == val));
    }

    /// Any interleaving of pool leases and frees never overshoots device
    /// capacity, and OOM surfaces as a `GpuError`, never a panic.
    #[test]
    fn pool_never_exceeds_capacity(ops in proptest::collection::vec(0u64..4_000_000, 1..64)) {
        let gpu = Gpu::new(0, DeviceSpec::test_tiny()); // 1 MiB capacity
        let cap = gpu.spec().memory.capacity_bytes;
        let pool = MemoryPool::new(&gpu);
        let mut live = Vec::new();
        for op in ops {
            // Low bit chooses free-vs-keep, the rest is the request size.
            let (free_first, bytes) = (op & 1 == 1, op >> 1);
            if free_first && !live.is_empty() {
                live.pop(); // drop a lease: slab goes back to the cache
            }
            match pool.lease(bytes) {
                Ok(lease) => live.push(lease),
                Err(e) => prop_assert!(matches!(e, GpuError::OutOfMemory { .. })),
            }
            prop_assert!(gpu.mem_used() <= cap, "used {} > cap {}", gpu.mem_used(), cap);
        }
    }

    /// After every lease drops, trimming the cache restores `mem_used()` to
    /// its baseline — the pool leaks nothing.
    #[test]
    fn pool_restores_baseline_after_drops(sizes in proptest::collection::vec(1u64..300_000, 1..32)) {
        let gpu = Gpu::new(0, DeviceSpec::test_tiny());
        let baseline = gpu.mem_used();
        let pool = MemoryPool::new(&gpu);
        let mut live = Vec::new();
        for bytes in sizes {
            if let Ok(lease) = pool.lease(bytes) {
                live.push(lease);
            }
        }
        let stats = pool.stats();
        prop_assert!(stats.high_water_bytes <= gpu.spec().memory.capacity_bytes);
        drop(live);
        pool.trim();
        prop_assert_eq!(gpu.mem_used(), baseline);
        let stats = pool.stats();
        prop_assert_eq!(stats.allocs, stats.frees);
        prop_assert_eq!(stats.in_use_bytes, 0);
        prop_assert_eq!(pool.resident_count(), 0);
    }

    /// Hierarchical collectives keep every step on its own tier: for ANY
    /// payload and island size, intra-island steps are priced from the fast
    /// link (strictly cheaper than even the smallest per-device share moved
    /// over the bridge), bridge steps always pay at least the bridge RTT,
    /// the chunked schedule costs exactly what the blocking cost model
    /// says, and the hierarchical schedule never loses to running the
    /// whole ring over the bridge.
    #[test]
    fn hierarchical_steps_stay_on_their_tier(
        bytes in 1u64..(8 << 20),
        island in 1usize..9,
        n_idx in 0usize..3,
    ) {
        let n = [2usize, 4, 8][n_idx];
        let topo = Topology::TwoTier {
            island,
            intra: LinkKind::NvLink,
            inter: LinkKind::Ethernet,
        };
        let c = GpuCluster::with_topology(n, DeviceSpec::t4(), topo);
        let h = c.all_reduce_chunked(bytes, "g", &vec![0; n]);
        let mono = GpuCluster::with_topology(n, DeviceSpec::t4(), topo).all_reduce_cost(bytes);
        prop_assert_eq!(h.dur_ns(), mono, "chunked and blocking schedules agree");
        let flat_bridge =
            GpuCluster::homogeneous(n, DeviceSpec::t4(), LinkKind::Ethernet).all_reduce_cost(bytes);
        prop_assert!(h.dur_ns() <= flat_bridge, "hierarchy never loses to the flat bridge ring");
        // Pricing the smallest possible per-device share (bytes / n) on the
        // bridge already beats any intra-island step, whose chunk is at
        // least as large: if an intra step somehow got bridge pricing, it
        // would cost at least this much.
        let bridge_floor = LinkKind::Ethernet.step_ns(bytes.div_ceil(n as u64));
        let bridge_rtt = LinkKind::Ethernet.latency_ns();
        for e in c.recorder().snapshot() {
            if e.kind != EventKind::MemcpyP2P {
                continue;
            }
            if e.name.contains("/intra-") {
                prop_assert!(
                    e.dur_ns < bridge_floor,
                    "intra step {} ({} ns) charged bridge-scale time", e.name, e.dur_ns
                );
            } else if e.name.contains("/inter") {
                prop_assert!(e.dur_ns as f64 >= bridge_rtt);
            }
        }
    }

    /// The roofline duration equals max(compute, memory) + overhead.
    #[test]
    fn roofline_is_max_of_roofs(flops in 1u64..1_000_000_000_000, bytes in 1u64..1_000_000_000) {
        let gpu = Gpu::new(0, DeviceSpec::t4());
        let cfg = LaunchConfig::for_elements(1 << 16, 256);
        let p = KernelProfile { flops, bytes, access: AccessPattern::Coalesced, registers_per_thread: 32 };
        let (dur, occ) = gpu.kernel_duration_ns(&cfg, &p).unwrap();
        let spec = gpu.spec();
        let occ_factor = (occ.occupancy * 2.0).clamp(0.05, 1.0);
        let compute = flops as f64 / (spec.peak_flops() * occ_factor) * 1e9;
        let mem = bytes as f64 / (spec.memory.bandwidth_bytes_per_sec * 0.85) * 1e9 + spec.memory.latency_ns;
        let expected = spec.launch_overhead_ns + compute.max(mem);
        prop_assert!((dur as f64 - expected).abs() <= expected * 1e-6 + 2.0);
    }
}
