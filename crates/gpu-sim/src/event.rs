//! Trace events emitted by the simulator.
//!
//! Every simulated operation — kernel launch, host↔device transfer, peer
//! copy, synchronization, user range — appends a [`TraceEvent`] to the
//! device's [`EventRecorder`]. `sagegpu-profiler` consumes these streams to
//! build Nsight-Systems-style timelines, per-op statistics, and bottleneck
//! reports.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The kind of simulated operation an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A kernel execution.
    Kernel,
    /// Host-to-device transfer (cudaMemcpyHostToDevice).
    MemcpyH2D,
    /// Device-to-host transfer.
    MemcpyD2H,
    /// Device-to-device copy on the same GPU.
    MemcpyD2D,
    /// Peer-to-peer copy between GPUs.
    MemcpyP2P,
    /// A blocking synchronization point.
    Sync,
    /// A user-annotated NVTX-style range.
    Range,
}

impl EventKind {
    /// Human-readable label used in profiler tables.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Kernel => "kernel",
            EventKind::MemcpyH2D => "memcpy-h2d",
            EventKind::MemcpyD2H => "memcpy-d2h",
            EventKind::MemcpyD2D => "memcpy-d2d",
            EventKind::MemcpyP2P => "memcpy-p2p",
            EventKind::Sync => "sync",
            EventKind::Range => "range",
        }
    }

    /// Whether the event represents data movement.
    pub fn is_transfer(&self) -> bool {
        matches!(
            self,
            EventKind::MemcpyH2D
                | EventKind::MemcpyD2H
                | EventKind::MemcpyD2D
                | EventKind::MemcpyP2P
        )
    }
}

/// One entry on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub kind: EventKind,
    /// Operation name (kernel name, transfer tag, or range label).
    pub name: String,
    /// Device the event executed on (0-based ordinal).
    pub device: u32,
    /// Stream ordinal within the device.
    pub stream: u32,
    /// Simulated start timestamp in nanoseconds.
    pub start_ns: u64,
    /// Simulated duration in nanoseconds.
    pub dur_ns: u64,
    /// Bytes moved (transfers) or touched (kernels); 0 when not applicable.
    pub bytes: u64,
    /// FLOPs performed (kernels); 0 otherwise.
    pub flops: u64,
    /// Achieved occupancy in `[0, 1]` for kernels; 0 otherwise.
    pub occupancy: f64,
    /// Whether the event was re-issued by a [`Graph`](crate::command::Graph)
    /// replay rather than submitted individually. Replayed kernel nodes
    /// carry no per-launch overhead (the graph launch pays it once), so the
    /// profiler excludes them from launch counting.
    pub graph: bool,
}

impl TraceEvent {
    /// Simulated end timestamp.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Effective bandwidth in bytes/sec for transfer events.
    pub fn effective_bandwidth(&self) -> Option<f64> {
        if self.kind.is_transfer() && self.dur_ns > 0 {
            Some(self.bytes as f64 / (self.dur_ns as f64 * 1e-9))
        } else {
            None
        }
    }
}

/// Thread-safe, shareable sink of trace events.
///
/// A recorder may be shared by several devices (a cluster records all its
/// GPUs into one timeline) and by the profiler.
#[derive(Debug, Clone, Default)]
pub struct EventRecorder {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
}

impl EventRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn record(&self, ev: TraceEvent) {
        self.inner.lock().push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Snapshot of all events, sorted by start time (stable on ties).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut evs = self.inner.lock().clone();
        evs.sort_by_key(|e| (e.start_ns, e.device, e.stream));
        evs
    }

    /// Removes all recorded events.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Total busy nanoseconds on a device (sum of event durations,
    /// excluding user ranges which may nest over other events).
    pub fn busy_ns(&self, device: u32) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|e| e.device == device && e.kind != EventKind::Range)
            .map(|e| e.dur_ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, device: u32, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Kernel,
            name: name.into(),
            device,
            stream: 0,
            start_ns: start,
            dur_ns: dur,
            bytes: 0,
            flops: 0,
            occupancy: 0.5,
            graph: false,
        }
    }

    #[test]
    fn snapshot_sorts_by_start_time() {
        let rec = EventRecorder::new();
        rec.record(ev("b", 0, 100, 10));
        rec.record(ev("a", 0, 50, 10));
        let snap = rec.snapshot();
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[1].name, "b");
    }

    #[test]
    fn busy_ns_sums_per_device_and_skips_ranges() {
        let rec = EventRecorder::new();
        rec.record(ev("k0", 0, 0, 100));
        rec.record(ev("k1", 0, 100, 50));
        rec.record(ev("k2", 1, 0, 999));
        let mut range = ev("outer", 0, 0, 1_000_000);
        range.kind = EventKind::Range;
        rec.record(range);
        assert_eq!(rec.busy_ns(0), 150);
        assert_eq!(rec.busy_ns(1), 999);
    }

    #[test]
    fn effective_bandwidth_only_for_transfers() {
        let mut t = ev("h2d", 0, 0, 1_000);
        t.kind = EventKind::MemcpyH2D;
        t.bytes = 1_000_000;
        // 1 MB in 1 µs = 1e12 B/s
        let bw = t.effective_bandwidth().unwrap();
        assert!((bw - 1e12).abs() / 1e12 < 1e-9);
        assert!(ev("k", 0, 0, 10).effective_bandwidth().is_none());
    }

    #[test]
    fn clear_empties_recorder() {
        let rec = EventRecorder::new();
        rec.record(ev("k", 0, 0, 1));
        assert!(!rec.is_empty());
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.len(), 0);
    }

    #[test]
    fn kind_labels_and_transfer_flags() {
        assert_eq!(EventKind::Kernel.label(), "kernel");
        assert!(EventKind::MemcpyH2D.is_transfer());
        assert!(EventKind::MemcpyP2P.is_transfer());
        assert!(!EventKind::Kernel.is_transfer());
        assert!(!EventKind::Sync.is_transfer());
    }
}
