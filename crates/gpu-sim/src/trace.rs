//! Recording interposer and portable, replayable execution traces.
//!
//! Every charging operation in the simulator funnels through one of two
//! choke points: the [`Gpu::submit`]/[`Gpu::doorbell`] command path
//! (kernels, copies, event record/wait edges) or a handful of
//! cluster-level entry points (chunked/blocking collectives, barriers,
//! peer copies). This module taps both. A [`TraceSink`] attached with
//! [`Gpu::record_trace`] or
//! [`GpuCluster::record_trace`](crate::cluster::GpuCluster::record_trace)
//! mirrors each operation — with its *pricing inputs*, not just its
//! resolved cost — into a versioned, schema-checked artifact
//! ([`TraceV1`]) that serializes to JSON and is replayable *without the
//! originating workload*:
//!
//! - **identity replay** ([`replay`] with a default [`WhatIf`])
//!   reproduces the recorded simulated time, submission count, and
//!   kernel-launch count exactly — the deterministic perf-regression
//!   gate `scripts/check.sh` enforces against `tests/golden/`;
//! - **what-if replay** ([`WhatIf`] overrides) swaps the interconnect,
//!   GPU generation, topology, or comm-stream count and re-prices /
//!   re-schedules every recorded command on fresh devices, answering
//!   "what would this epoch cost on NVLink?" without rerunning GCN
//!   training or RAG serving (experiment A11).
//!
//! Two deliberate non-goals: graph-captured work is not recorded
//! ([`Graph::replay`](crate::command::Graph::replay) bypasses `submit`;
//! record with eager submission instead), and host-side computation is
//! invisible (the trace captures device-visible charges only).
//!
//! ## Canonical ordering
//!
//! Workers submit to their own devices concurrently, so raw arrival
//! order is not deterministic. The sink therefore keys every record with
//! `(phase, device, seq)`: cluster-level operations (which are
//! driver-serial) bump `phase`, per-device commands order by their
//! submission sequence number within a phase, and [`TraceV1::records`]
//! is the stable sort of those keys. Replaying the sorted records
//! device-by-device within each phase is equivalent to the original
//! interleaving because cross-device interaction happens only at the
//! phase-bumping cluster operations.

use crate::arch::{DeviceSpec, MemorySpec};
use crate::cluster::{LinkKind, Topology};
use crate::command::{CollectiveCommand, Command, CopyCommand, KernelCommand};
use crate::device::{Gpu, StreamId};
use crate::dim::Dim3;
use crate::event::{EventKind, EventRecorder, TraceEvent};
use crate::kernel::{AccessPattern, KernelPricing, KernelProfile, LaunchConfig};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Schema version this module writes and the only one it reads.
pub const TRACE_VERSION: u64 = 1;

/// Errors raised while serializing, deserializing, or replaying a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The artifact declares a schema version this build does not speak.
    Version {
        /// The `version` field found in the artifact.
        found: u64,
    },
    /// The input is not valid JSON.
    Parse { reason: String },
    /// The JSON is well-formed but violates the `TraceV1` schema.
    Schema { reason: String },
    /// Reading or writing the artifact file failed.
    Io { reason: String },
    /// The trace is structurally valid but cannot be replayed (e.g. a
    /// collective with no recorded topology, or a what-if device that
    /// rejects a recorded launch configuration).
    Replay { reason: String },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Version { found } => write!(
                f,
                "unsupported trace version {found} (this build reads version {TRACE_VERSION})"
            ),
            TraceError::Parse { reason } => write!(f, "trace is not valid JSON: {reason}"),
            TraceError::Schema { reason } => write!(f, "trace violates schema: {reason}"),
            TraceError::Io { reason } => write!(f, "trace I/O failed: {reason}"),
            TraceError::Replay { reason } => write!(f, "trace cannot be replayed: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn schema(reason: impl Into<String>) -> TraceError {
    TraceError::Schema {
        reason: reason.into(),
    }
}

fn replay_err(reason: impl Into<String>) -> TraceError {
    TraceError::Replay {
        reason: reason.into(),
    }
}

/// Direction of a recorded copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyKind {
    /// Host to device over PCIe.
    H2d,
    /// Device to host over PCIe.
    D2h,
    /// Device-local copy through global memory.
    D2d,
}

impl CopyKind {
    /// The trace-event kind this copy retires as.
    pub fn event_kind(&self) -> EventKind {
        match self {
            CopyKind::H2d => EventKind::MemcpyH2D,
            CopyKind::D2h => EventKind::MemcpyD2H,
            CopyKind::D2d => EventKind::MemcpyD2D,
        }
    }

    fn from_event(kind: EventKind) -> Option<Self> {
        match kind {
            EventKind::MemcpyH2D => Some(CopyKind::H2d),
            EventKind::MemcpyD2H => Some(CopyKind::D2h),
            EventKind::MemcpyD2D => Some(CopyKind::D2d),
            _ => None,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            CopyKind::H2d => "h2d",
            CopyKind::D2h => "d2h",
            CopyKind::D2d => "d2d",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "h2d" => Some(CopyKind::H2d),
            "d2h" => Some(CopyKind::D2h),
            "d2d" => Some(CopyKind::D2d),
            _ => None,
        }
    }
}

/// Payload of one trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordBody {
    /// A kernel launch. `pricing` carries the roofline inputs so replay
    /// can re-derive `dur_ns` on a what-if device; without it the kernel
    /// replays at its recorded duration.
    Kernel {
        name: String,
        dur_ns: u64,
        bytes: u64,
        flops: u64,
        occupancy: f64,
        pricing: Option<KernelPricing>,
    },
    /// A host↔device or device-local copy; `bytes` + `kind` are the
    /// pricing inputs (link speed comes from the replay device).
    Copy {
        name: String,
        kind: CopyKind,
        dur_ns: u64,
        bytes: u64,
    },
    /// `cudaEventRecord` on the record's stream into `slot`.
    EventRecord { slot: u32 },
    /// `cudaStreamWaitEvent` on the record's stream for `slot`.
    EventWait { slot: u32 },
    /// A raw collective step submitted outside
    /// [`GpuCluster::all_reduce_chunked`](crate::cluster::GpuCluster::all_reduce_chunked)
    /// (rare; replays at recorded cost).
    CollectiveStep {
        name: String,
        dur_ns: u64,
        bytes: u64,
        not_before_ns: u64,
    },
    /// One *logical* chunked collective: replay regenerates its lockstep
    /// ring schedule from the (possibly overridden) topology. `ready_ns`
    /// are the recorded per-device payload-ready times; `gates[i]`, when
    /// present, names the event slot whose resolved value gated device
    /// `i`, letting replay recompute readiness under a what-if device.
    Collective {
        name: String,
        bytes: u64,
        channel: u32,
        ready_ns: Vec<u64>,
        gates: Vec<Option<u32>>,
    },
    /// Orders all devices after every collective issued since the last
    /// sync (`GpuCluster::advance_all_to`). `t_ns` is the recorded
    /// target, used only when no collective preceded it in the replay.
    CollectiveSync { t_ns: u64 },
    /// Cluster-wide clock alignment (`GpuCluster::barrier`).
    Barrier,
    /// `cudaDeviceSynchronize` across one device's streams
    /// (`Gpu::sync_streams`).
    StreamSync,
    /// A blocking all-reduce priced from topology
    /// (`GpuCluster::all_reduce_cost`).
    BlockingAllReduce { bytes: u64 },
    /// A peer copy between two devices (`GpuCluster::p2p`).
    P2p { src: u32, dst: u32, bytes: u64 },
}

impl RecordBody {
    fn op(&self) -> &'static str {
        match self {
            RecordBody::Kernel { .. } => "kernel",
            RecordBody::Copy { .. } => "copy",
            RecordBody::EventRecord { .. } => "event_record",
            RecordBody::EventWait { .. } => "event_wait",
            RecordBody::CollectiveStep { .. } => "collective_step",
            RecordBody::Collective { .. } => "collective",
            RecordBody::CollectiveSync { .. } => "collective_sync",
            RecordBody::Barrier => "barrier",
            RecordBody::StreamSync => "stream_sync",
            RecordBody::BlockingAllReduce { .. } => "blocking_all_reduce",
            RecordBody::P2p { .. } => "p2p",
        }
    }
}

/// One recorded operation, in canonical order within [`TraceV1::records`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Device the operation targeted (0 for cluster-wide operations).
    pub device: u32,
    /// Stream ordinal the operation targeted (0 when not stream-bound).
    pub stream: u32,
    /// What happened.
    pub body: RecordBody,
}

/// Static description of one recorded device.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDevice {
    /// Device ordinal (0-based).
    pub ordinal: u32,
    /// Number of streams that existed when recording finished (replay
    /// recreates them up front; streams are independent, so early
    /// creation does not perturb timing).
    pub streams: u32,
    /// Full architecture description, so replay needs no registry.
    pub spec: DeviceSpec,
}

/// A portable, versioned execution trace (schema version 1).
///
/// The artifact is self-contained: device specs, topology, and per-command
/// pricing inputs travel with it, so [`replay`] needs nothing but the
/// trace. Unknown JSON fields are ignored on read (forward compatibility);
/// a different `version` is a typed [`TraceError::Version`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceV1 {
    /// Free-form workload label (e.g. `"gcn-epoch"`).
    pub workload: String,
    /// Comm channels per device at record time.
    pub comm_channels: u32,
    /// Interconnect shape, when recorded on a cluster.
    pub topology: Option<Topology>,
    /// Makespan at [`finish`](TraceSink::finish) time (max device clock).
    pub sim_time_ns: u64,
    /// Total kernel launches across devices at finish time.
    pub kernel_launches: u64,
    /// Recorded devices, ordered by ordinal.
    pub devices: Vec<TraceDevice>,
    /// Recorded operations in canonical `(phase, device, seq)` order.
    pub records: Vec<TraceRecord>,
}

impl TraceV1 {
    /// Number of recorded operations (the gate's submission-count metric;
    /// one logical collective counts once).
    pub fn submissions(&self) -> u64 {
        self.records.len() as u64
    }

    /// Serializes the trace to its JSON artifact form.
    pub fn to_json(&self) -> String {
        write_trace(self)
    }

    /// Parses a JSON artifact, checking `version` before anything else.
    pub fn from_json(input: &str) -> Result<Self, TraceError> {
        let v = serde_json::from_str(input).map_err(|e| TraceError::Parse {
            reason: e.to_string(),
        })?;
        parse_trace(&v)
    }

    /// Writes the JSON artifact to `path`.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
        std::fs::write(path.as_ref(), self.to_json()).map_err(|e| TraceError::Io {
            reason: format!("{}: {e}", path.as_ref().display()),
        })
    }

    /// Reads and parses the JSON artifact at `path`.
    pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| TraceError::Io {
            reason: format!("{}: {e}", path.as_ref().display()),
        })?;
        Self::from_json(&text)
    }
}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

type SortKey = (u64, u32, u64, u64);

#[derive(Debug, Default)]
struct SinkState {
    /// Bumped around cluster-level (driver-serial) operations.
    phase: u64,
    /// Global arrival counter, the final tie-breaker.
    tick: u64,
    /// While positive, per-command records are dropped (a cluster op is
    /// recording itself as one logical record instead).
    suppress: u32,
    entries: Vec<(SortKey, TraceRecord)>,
}

/// Thread-safe recording sink shared by every device of a workload.
///
/// Created by [`Gpu::record_trace`] /
/// [`GpuCluster::record_trace`](crate::cluster::GpuCluster::record_trace);
/// consumed by [`Gpu::finish_trace`] /
/// [`GpuCluster::finish_trace`](crate::cluster::GpuCluster::finish_trace).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<SinkState>>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push_suppress(&self) {
        self.inner.lock().suppress += 1;
    }

    pub(crate) fn pop_suppress(&self) {
        let mut st = self.inner.lock();
        st.suppress = st.suppress.saturating_sub(1);
    }

    /// Mirrors one submitted command (called from [`Gpu::submit`] with
    /// the command-processor lock held; this sink lock is a leaf).
    pub(crate) fn record_submission(&self, device: u32, stream: u32, seq: u64, cmd: &Command) {
        let body = match cmd {
            Command::Kernel(k) => RecordBody::Kernel {
                name: k.name.clone(),
                dur_ns: k.dur_ns,
                bytes: k.bytes,
                flops: k.flops,
                occupancy: k.occupancy,
                pricing: k.pricing,
            },
            Command::Copy(c) => match CopyKind::from_event(c.kind) {
                Some(kind) => RecordBody::Copy {
                    name: c.name.clone(),
                    kind,
                    dur_ns: c.dur_ns,
                    bytes: c.bytes,
                },
                None => return, // not a chargeable direction; nothing to replay
            },
            Command::EventRecord { event } => RecordBody::EventRecord { slot: event.0 },
            Command::EventWait { event } => RecordBody::EventWait { slot: event.0 },
            Command::Collective(c) => RecordBody::CollectiveStep {
                name: c.name.clone(),
                dur_ns: c.dur_ns,
                bytes: c.bytes,
                not_before_ns: c.not_before_ns,
            },
        };
        let mut st = self.inner.lock();
        if st.suppress > 0 {
            return;
        }
        st.tick += 1;
        let key = (st.phase, device, seq, st.tick);
        st.entries.push((
            key,
            TraceRecord {
                device,
                stream,
                body,
            },
        ));
    }

    /// Records a device-scoped non-command operation (stream sync),
    /// ordered at the device's current submission frontier.
    pub(crate) fn record_device(&self, device: u32, seq: u64, body: RecordBody) {
        let mut st = self.inner.lock();
        if st.suppress > 0 {
            return;
        }
        st.tick += 1;
        let key = (st.phase, device, seq, st.tick);
        st.entries.push((
            key,
            TraceRecord {
                device,
                stream: 0,
                body,
            },
        ));
    }

    /// Records a cluster-wide (driver-serial) operation, fencing the
    /// per-device records before it from those after it.
    pub(crate) fn record_global(&self, body: RecordBody) {
        let mut st = self.inner.lock();
        if st.suppress > 0 {
            return;
        }
        st.tick += 1;
        st.phase += 1;
        let key = (st.phase, 0, 0, st.tick);
        st.phase += 1;
        st.entries.push((
            key,
            TraceRecord {
                device: 0,
                stream: 0,
                body,
            },
        ));
    }

    /// Assembles the portable artifact: sorts records into canonical
    /// order, back-matches each collective's ready times to the event
    /// slots that produced them (so what-if replay can recompute
    /// readiness), and snapshots device state.
    pub fn finish(
        &self,
        devices: &[&Gpu],
        topology: Option<Topology>,
        comm_channels: u32,
        workload: &str,
    ) -> TraceV1 {
        let mut entries = std::mem::take(&mut self.inner.lock().entries);
        entries.sort_by_key(|e| e.0);
        let mut records: Vec<TraceRecord> = entries.into_iter().map(|(_, r)| r).collect();

        // Gate back-matching: a collective's ready_ns[i] usually *is* the
        // resolved value of an event the workload recorded on device i
        // (the gradient-ready mark). Bind the latest earlier matching
        // slot so replay can re-derive readiness under a what-if device.
        for i in 0..records.len() {
            let (ready, n) = match &records[i].body {
                RecordBody::Collective { ready_ns, .. } => (ready_ns.clone(), ready_ns.len()),
                _ => continue,
            };
            let mut gates: Vec<Option<u32>> = vec![None; n];
            for (d, &r) in ready.iter().enumerate() {
                if r == 0 {
                    continue;
                }
                let Some(gpu) = devices.iter().find(|g| g.ordinal() as usize == d) else {
                    continue;
                };
                for rec in records[..i].iter() {
                    if rec.device as usize != d {
                        continue;
                    }
                    if let RecordBody::EventRecord { slot } = rec.body {
                        if gpu.cmd_event_ns(crate::command::CmdEvent(slot)) == Some(r) {
                            gates[d] = Some(slot);
                        }
                    }
                }
            }
            if let RecordBody::Collective { gates: g, .. } = &mut records[i].body {
                *g = gates;
            }
        }

        let mut trace_devices: Vec<TraceDevice> = devices
            .iter()
            .map(|g| TraceDevice {
                ordinal: g.ordinal(),
                streams: g.stream_count() as u32,
                spec: g.spec().clone(),
            })
            .collect();
        trace_devices.sort_by_key(|d| d.ordinal);
        TraceV1 {
            workload: workload.to_owned(),
            comm_channels,
            topology,
            sim_time_ns: devices.iter().map(|g| g.now_ns()).max().unwrap_or(0),
            kernel_launches: devices.iter().map(|g| g.kernels_launched()).sum(),
            devices: trace_devices,
            records,
        }
    }
}

impl Gpu {
    /// Starts mirroring every submission on this device into a fresh
    /// [`TraceSink`]; returns the sink (attach it to further devices
    /// with [`Gpu::attach_trace_sink`] to record a multi-device
    /// workload, or use
    /// [`GpuCluster::record_trace`](crate::cluster::GpuCluster::record_trace)).
    pub fn record_trace(&self) -> TraceSink {
        let sink = TraceSink::new();
        self.attach_trace_sink(sink.clone());
        sink
    }

    /// Stops recording on this device and assembles the portable trace.
    /// Returns `None` when no sink was attached.
    pub fn finish_trace(&self, workload: &str) -> Option<TraceV1> {
        let sink = self.detach_trace_sink()?;
        Some(sink.finish(&[self], None, 0, workload))
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// Overrides applied by [`replay`]. `Default` is the identity replay.
#[derive(Debug, Clone, Default)]
pub struct WhatIf {
    /// Replace the interconnect with a flat topology on this link
    /// (shorthand for `topology: Some(Topology::Flat(link))`).
    pub link: Option<LinkKind>,
    /// Replace every device's architecture; kernels carrying pricing
    /// inputs and all copies are re-priced on it.
    pub gpu_profile: Option<DeviceSpec>,
    /// Number of comm channels collectives round-robin over (recorded
    /// channel assignment otherwise).
    pub streams: Option<u32>,
    /// Replace the full interconnect topology (wins over `link`).
    pub topology: Option<Topology>,
}

impl WhatIf {
    /// Effective topology for collective pricing, if any.
    fn topology(&self, recorded: Option<Topology>) -> Option<Topology> {
        self.topology.or(self.link.map(Topology::Flat)).or(recorded)
    }
}

/// Outcome of one [`replay`].
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Makespan across replayed devices.
    pub sim_time_ns: u64,
    /// Trace records processed (mirrors [`TraceV1::submissions`]).
    pub submissions: u64,
    /// Kernel launches counted by the replay devices.
    pub kernel_launches: u64,
    /// Final clock per device, ordinal order.
    pub per_device_ns: Vec<u64>,
    /// Resolved timestamp of every replayed `EventRecord`, record order.
    pub event_ns: Vec<u64>,
    /// The replayed timeline (feed to the profiler for bottleneck /
    /// exposed-communication analysis of the replayed schedule).
    pub events: Vec<TraceEvent>,
}

/// Re-prices and re-schedules a recorded trace on fresh devices,
/// optionally under [`WhatIf`] overrides. With no overrides this is the
/// identity replay: it reproduces the recorded `sim_time_ns`,
/// submission count, and kernel-launch count exactly.
pub fn replay(trace: &TraceV1, whatif: &WhatIf) -> Result<ReplayReport, TraceError> {
    if trace.devices.is_empty() {
        return Err(replay_err("trace describes no devices"));
    }
    let recorder = EventRecorder::new();
    let topo = whatif.topology(trace.topology);
    let mut ordinal_to_idx: HashMap<u32, usize> = HashMap::new();
    let mut gpus: Vec<Gpu> = Vec::with_capacity(trace.devices.len());
    for (idx, td) in trace.devices.iter().enumerate() {
        let spec = whatif
            .gpu_profile
            .clone()
            .unwrap_or_else(|| td.spec.clone());
        let g = Gpu::with_recorder(td.ordinal, spec, recorder.clone());
        for _ in 1..td.streams.max(1) {
            g.create_stream();
        }
        ordinal_to_idx.insert(td.ordinal, idx);
        gpus.push(g);
    }
    let n = gpus.len();
    let dev = |ordinal: u32| -> Result<&Gpu, TraceError> {
        ordinal_to_idx
            .get(&ordinal)
            .map(|&i| &gpus[i])
            .ok_or_else(|| replay_err(format!("record references unknown device {ordinal}")))
    };
    // Recorded event slots are per-device templates; allocate fresh
    // slots on first sight.
    let mut slots: HashMap<(u32, u32), crate::command::CmdEvent> = HashMap::new();
    let mut event_ns: Vec<u64> = Vec::new();
    let mut event_refs: Vec<(u32, crate::command::CmdEvent)> = Vec::new();
    let mut collective_idx: u64 = 0;
    // Max end of the collectives issued since the last CollectiveSync.
    let mut pending_comm_end: Option<u64> = None;

    for rec in &trace.records {
        match &rec.body {
            RecordBody::Kernel {
                name,
                dur_ns,
                bytes,
                flops,
                occupancy,
                pricing,
            } => {
                let g = dev(rec.device)?;
                ensure_stream(g, rec.stream);
                let (dur, occ) = match pricing {
                    Some(p) => {
                        let (d, o) = g.kernel_duration_ns(&p.cfg, &p.profile).map_err(|e| {
                            replay_err(format!("kernel '{name}' rejected by replay device: {e}"))
                        })?;
                        (d, o.occupancy)
                    }
                    None => (*dur_ns, *occupancy),
                };
                g.submit(
                    StreamId(rec.stream),
                    Command::Kernel(KernelCommand {
                        name: name.clone(),
                        dur_ns: dur,
                        bytes: *bytes,
                        flops: *flops,
                        occupancy: occ,
                        graph: false,
                        pricing: *pricing,
                    }),
                );
                doorbell(g)?;
            }
            RecordBody::Copy {
                name,
                kind,
                dur_ns,
                bytes,
            } => {
                let g = dev(rec.device)?;
                ensure_stream(g, rec.stream);
                // Re-price only under a device override; the recorded
                // duration is otherwise authoritative (that is what the
                // regression gate diffs).
                let dur = if whatif.gpu_profile.is_some() {
                    copy_cost_ns(g.spec(), *kind, *bytes)
                } else {
                    *dur_ns
                };
                g.submit(
                    StreamId(rec.stream),
                    Command::Copy(CopyCommand {
                        name: name.clone(),
                        kind: kind.event_kind(),
                        dur_ns: dur,
                        bytes: *bytes,
                        graph: false,
                    }),
                );
                doorbell(g)?;
            }
            RecordBody::EventRecord { slot } => {
                let g = dev(rec.device)?;
                ensure_stream(g, rec.stream);
                let fresh = g.create_cmd_event();
                slots.insert((rec.device, *slot), fresh);
                g.submit(StreamId(rec.stream), Command::EventRecord { event: fresh });
                doorbell(g)?;
                event_refs.push((rec.device, fresh));
            }
            RecordBody::EventWait { slot } => {
                let g = dev(rec.device)?;
                ensure_stream(g, rec.stream);
                let fresh = *slots.get(&(rec.device, *slot)).ok_or_else(|| {
                    replay_err(format!(
                        "device {} waits on slot {slot} never recorded in the trace",
                        rec.device
                    ))
                })?;
                g.submit(StreamId(rec.stream), Command::EventWait { event: fresh });
                doorbell(g)?;
            }
            RecordBody::CollectiveStep {
                name,
                dur_ns,
                bytes,
                not_before_ns,
            } => {
                let g = dev(rec.device)?;
                ensure_stream(g, rec.stream);
                g.submit(
                    StreamId(rec.stream),
                    Command::Collective(CollectiveCommand {
                        name: name.clone(),
                        dur_ns: *dur_ns,
                        bytes: *bytes,
                        not_before_ns: *not_before_ns,
                    }),
                );
                doorbell(g)?;
            }
            RecordBody::Collective {
                name,
                bytes,
                channel,
                ready_ns,
                gates,
            } => {
                if n <= 1 {
                    collective_idx += 1;
                    continue;
                }
                let topo = topo.ok_or_else(|| {
                    replay_err(format!("collective '{name}' but the trace has no topology"))
                })?;
                let phases = topo.ring_phases(n, *bytes);
                let ch = match whatif.streams {
                    Some(s) => (collective_idx % u64::from(s.max(1))) as u32,
                    None => *channel,
                };
                collective_idx += 1;
                // Comm channel `ch` lives on stream ordinal 1 + ch (the
                // cluster creates its comm streams first); grow devices
                // that never saw that many streams (stream-count what-if).
                let comm = 1 + ch;
                let mut start = 0u64;
                for (i, g) in gpus.iter().enumerate() {
                    ensure_stream(g, comm);
                    let bound = gates
                        .get(i)
                        .copied()
                        .flatten()
                        .and_then(|slot| slots.get(&(g.ordinal(), slot)))
                        .and_then(|ev| g.cmd_event_ns(*ev))
                        .unwrap_or_else(|| ready_ns.get(i).copied().unwrap_or(0));
                    start = start.max(g.stream_time(StreamId(comm)).max(bound));
                }
                let mut end = start;
                for g in &gpus {
                    let mut s = 0u64;
                    for p in &phases {
                        for _ in 0..p.steps {
                            g.submit(
                                StreamId(comm),
                                Command::Collective(CollectiveCommand {
                                    name: p.tag.step_name(name, s),
                                    dur_ns: p.step_dur,
                                    bytes: p.chunk,
                                    not_before_ns: start,
                                }),
                            );
                            s += 1;
                        }
                    }
                    doorbell(g)?;
                    end = end.max(g.stream_time(StreamId(comm)));
                }
                pending_comm_end = Some(pending_comm_end.unwrap_or(0).max(end));
            }
            RecordBody::CollectiveSync { t_ns } => {
                let t = pending_comm_end.take().unwrap_or(*t_ns);
                for g in &gpus {
                    g.advance_to(t);
                }
            }
            RecordBody::Barrier => {
                let t = gpus.iter().map(|g| g.now_ns()).max().unwrap_or(0);
                for g in &gpus {
                    g.advance_to(t);
                }
            }
            RecordBody::StreamSync => {
                dev(rec.device)?.sync_streams();
            }
            RecordBody::BlockingAllReduce { bytes } => {
                if n <= 1 {
                    continue;
                }
                let topo = topo.ok_or_else(|| {
                    replay_err("blocking all-reduce but the trace has no topology")
                })?;
                let phases = topo.ring_phases(n, *bytes);
                let dur: u64 = phases.iter().map(|p| p.steps * p.step_dur).sum();
                let per_dev_bytes: u64 = phases.iter().map(|p| p.steps * p.chunk).sum();
                let start = gpus.iter().map(|g| g.now_ns()).max().unwrap_or(0);
                for g in &gpus {
                    g.advance_to(start + dur);
                    recorder.record(TraceEvent {
                        kind: EventKind::MemcpyP2P,
                        name: "all-reduce".to_owned(),
                        device: g.ordinal(),
                        stream: 0,
                        start_ns: start,
                        dur_ns: dur,
                        bytes: per_dev_bytes,
                        flops: 0,
                        occupancy: 0.0,
                        graph: false,
                    });
                }
            }
            RecordBody::P2p { src, dst, bytes } => {
                let topo =
                    topo.ok_or_else(|| replay_err("p2p copy but the trace has no topology"))?;
                let sg = dev(*src)?;
                let dg = dev(*dst)?;
                let dur = topo
                    .link_between(*src as usize, *dst as usize)
                    .step_ns(*bytes);
                let start = sg.now_ns().max(dg.now_ns());
                sg.advance_to(start + dur);
                dg.advance_to(start + dur);
                recorder.record(TraceEvent {
                    kind: EventKind::MemcpyP2P,
                    name: format!("p2p {}->{}", src, dst),
                    device: *src,
                    stream: 0,
                    start_ns: start,
                    dur_ns: dur,
                    bytes: *bytes,
                    flops: 0,
                    occupancy: 0.0,
                    graph: false,
                });
            }
        }
    }
    for g in &gpus {
        doorbell(g)?;
    }
    for (d, ev) in &event_refs {
        let g = dev(*d)?;
        event_ns.push(g.cmd_event_ns(*ev).unwrap_or(0));
    }
    let per_device_ns: Vec<u64> = gpus.iter().map(|g| g.now_ns()).collect();
    Ok(ReplayReport {
        sim_time_ns: per_device_ns.iter().copied().max().unwrap_or(0),
        submissions: trace.records.len() as u64,
        kernel_launches: gpus.iter().map(|g| g.kernels_launched()).sum(),
        per_device_ns,
        event_ns,
        events: recorder.snapshot(),
    })
}

fn doorbell(g: &Gpu) -> Result<(), TraceError> {
    g.doorbell()
        .map_err(|e| replay_err(format!("device {} stalled: {e}", g.ordinal())))
}

fn ensure_stream(g: &Gpu, ordinal: u32) {
    while (g.stream_count() as u32) <= ordinal {
        g.create_stream();
    }
}

/// Copy cost on `spec`: PCIe for host transfers, global-memory for
/// device-local copies — the same formulas the eager entry points use.
fn copy_cost_ns(spec: &DeviceSpec, kind: CopyKind, bytes: u64) -> u64 {
    match kind {
        CopyKind::H2d | CopyKind::D2h => (spec.pcie_latency_ns
            + bytes as f64 / spec.pcie_bandwidth_bytes_per_sec * 1e9)
            .ceil() as u64,
        CopyKind::D2d => (spec.memory.latency_ns
            + bytes as f64 / spec.memory.bandwidth_bytes_per_sec * 1e9)
            .ceil() as u64,
    }
}

// ---------------------------------------------------------------------
// JSON writer (hand-rolled: the vendored serde stubs derive no-ops, and
// the vendored serde_json is read-only)
// ---------------------------------------------------------------------

fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // `{}` is Rust's shortest-roundtrip float formatting, so parsing the
    // artifact back yields bit-identical values.
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

fn link_tag(l: LinkKind) -> &'static str {
    match l {
        LinkKind::Pcie => "pcie",
        LinkKind::NvLink => "nvlink",
        LinkKind::Ethernet => "ethernet",
    }
}

fn link_from_tag(tag: &str) -> Option<LinkKind> {
    match tag {
        "pcie" => Some(LinkKind::Pcie),
        "nvlink" => Some(LinkKind::NvLink),
        "ethernet" => Some(LinkKind::Ethernet),
        _ => None,
    }
}

fn access_tag(a: AccessPattern) -> &'static str {
    match a {
        AccessPattern::Coalesced => "coalesced",
        AccessPattern::Strided => "strided",
        AccessPattern::Random => "random",
    }
}

fn access_from_tag(tag: &str) -> Option<AccessPattern> {
    match tag {
        "coalesced" => Some(AccessPattern::Coalesced),
        "strided" => Some(AccessPattern::Strided),
        "random" => Some(AccessPattern::Random),
        _ => None,
    }
}

fn write_dim(out: &mut String, d: Dim3) {
    out.push_str(&format!("[{},{},{}]", d.x, d.y, d.z));
}

fn write_topology(out: &mut String, t: &Option<Topology>) {
    match t {
        None => out.push_str("null"),
        Some(Topology::Flat(link)) => {
            out.push_str("{\"kind\":\"flat\",\"link\":");
            push_str_lit(out, link_tag(*link));
            out.push('}');
        }
        Some(Topology::TwoTier {
            island,
            intra,
            inter,
        }) => {
            out.push_str(&format!(
                "{{\"kind\":\"two_tier\",\"island\":{island},\"intra\":"
            ));
            push_str_lit(out, link_tag(*intra));
            out.push_str(",\"inter\":");
            push_str_lit(out, link_tag(*inter));
            out.push('}');
        }
    }
}

fn write_spec(out: &mut String, s: &DeviceSpec) {
    out.push_str("{\"name\":");
    push_str_lit(out, &s.name);
    out.push_str(&format!(
        ",\"sm_count\":{},\"cores_per_sm\":{},\"warp_size\":{},\"clock_ghz\":",
        s.sm_count, s.cores_per_sm, s.warp_size
    ));
    push_f64(out, s.clock_ghz);
    out.push_str(&format!(
        ",\"max_threads_per_sm\":{},\"max_blocks_per_sm\":{},\"max_threads_per_block\":{},\"shared_mem_per_sm\":{},\"registers_per_sm\":{}",
        s.max_threads_per_sm,
        s.max_blocks_per_sm,
        s.max_threads_per_block,
        s.shared_mem_per_sm,
        s.registers_per_sm
    ));
    out.push_str(&format!(
        ",\"memory\":{{\"capacity_bytes\":{},\"bandwidth_bytes_per_sec\":",
        s.memory.capacity_bytes
    ));
    push_f64(out, s.memory.bandwidth_bytes_per_sec);
    out.push_str(",\"latency_ns\":");
    push_f64(out, s.memory.latency_ns);
    out.push_str("},\"pcie_bandwidth_bytes_per_sec\":");
    push_f64(out, s.pcie_bandwidth_bytes_per_sec);
    out.push_str(",\"pcie_latency_ns\":");
    push_f64(out, s.pcie_latency_ns);
    out.push_str(",\"launch_overhead_ns\":");
    push_f64(out, s.launch_overhead_ns);
    out.push('}');
}

fn write_pricing(out: &mut String, p: &KernelPricing) {
    out.push_str("{\"grid\":");
    write_dim(out, p.cfg.grid);
    out.push_str(",\"block\":");
    write_dim(out, p.cfg.block);
    out.push_str(&format!(
        ",\"shared_mem_bytes\":{},\"flops\":{},\"bytes\":{},\"access\":",
        p.cfg.shared_mem_bytes, p.profile.flops, p.profile.bytes
    ));
    push_str_lit(out, access_tag(p.profile.access));
    out.push_str(&format!(
        ",\"registers_per_thread\":{}}}",
        p.profile.registers_per_thread
    ));
}

fn write_record(out: &mut String, r: &TraceRecord) {
    out.push_str("{\"op\":");
    push_str_lit(out, r.body.op());
    out.push_str(&format!(",\"device\":{},\"stream\":{}", r.device, r.stream));
    match &r.body {
        RecordBody::Kernel {
            name,
            dur_ns,
            bytes,
            flops,
            occupancy,
            pricing,
        } => {
            out.push_str(",\"name\":");
            push_str_lit(out, name);
            out.push_str(&format!(
                ",\"dur_ns\":{dur_ns},\"bytes\":{bytes},\"flops\":{flops},\"occupancy\":"
            ));
            push_f64(out, *occupancy);
            if let Some(p) = pricing {
                out.push_str(",\"pricing\":");
                write_pricing(out, p);
            }
        }
        RecordBody::Copy {
            name,
            kind,
            dur_ns,
            bytes,
        } => {
            out.push_str(",\"name\":");
            push_str_lit(out, name);
            out.push_str(",\"kind\":");
            push_str_lit(out, kind.tag());
            out.push_str(&format!(",\"dur_ns\":{dur_ns},\"bytes\":{bytes}"));
        }
        RecordBody::EventRecord { slot } | RecordBody::EventWait { slot } => {
            out.push_str(&format!(",\"slot\":{slot}"));
        }
        RecordBody::CollectiveStep {
            name,
            dur_ns,
            bytes,
            not_before_ns,
        } => {
            out.push_str(",\"name\":");
            push_str_lit(out, name);
            out.push_str(&format!(
                ",\"dur_ns\":{dur_ns},\"bytes\":{bytes},\"not_before_ns\":{not_before_ns}"
            ));
        }
        RecordBody::Collective {
            name,
            bytes,
            channel,
            ready_ns,
            gates,
        } => {
            out.push_str(",\"name\":");
            push_str_lit(out, name);
            out.push_str(&format!(
                ",\"bytes\":{bytes},\"channel\":{channel},\"ready_ns\":["
            ));
            for (i, r) in ready_ns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{r}"));
            }
            out.push_str("],\"gates\":[");
            for (i, g) in gates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match g {
                    Some(s) => out.push_str(&format!("{s}")),
                    None => out.push_str("null"),
                }
            }
            out.push(']');
        }
        RecordBody::CollectiveSync { t_ns } => {
            out.push_str(&format!(",\"t_ns\":{t_ns}"));
        }
        RecordBody::Barrier | RecordBody::StreamSync => {}
        RecordBody::BlockingAllReduce { bytes } => {
            out.push_str(&format!(",\"bytes\":{bytes}"));
        }
        RecordBody::P2p { src, dst, bytes } => {
            out.push_str(&format!(",\"src\":{src},\"dst\":{dst},\"bytes\":{bytes}"));
        }
    }
    out.push('}');
}

fn write_trace(t: &TraceV1) -> String {
    let mut out = String::with_capacity(256 + t.records.len() * 96);
    out.push_str(&format!(
        "{{\n  \"version\": {TRACE_VERSION},\n  \"workload\": "
    ));
    push_str_lit(&mut out, &t.workload);
    out.push_str(&format!(
        ",\n  \"comm_channels\": {},\n  \"topology\": ",
        t.comm_channels
    ));
    write_topology(&mut out, &t.topology);
    out.push_str(&format!(
        ",\n  \"sim_time_ns\": {},\n  \"kernel_launches\": {},\n  \"devices\": [",
        t.sim_time_ns, t.kernel_launches
    ));
    for (i, d) in t.devices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"ordinal\":{},\"streams\":{},\"spec\":",
            d.ordinal, d.streams
        ));
        write_spec(&mut out, &d.spec);
        out.push('}');
    }
    out.push_str("\n  ],\n  \"records\": [");
    for (i, r) in t.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_record(&mut out, r);
    }
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, TraceError> {
    v.get(key)
        .ok_or_else(|| schema(format!("missing field '{key}'")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, TraceError> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| schema(format!("field '{key}' must be a non-negative integer")))
}

fn req_u32(v: &Value, key: &str) -> Result<u32, TraceError> {
    Ok(req_u64(v, key)? as u32)
}

fn req_f64(v: &Value, key: &str) -> Result<f64, TraceError> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| schema(format!("field '{key}' must be a number")))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, TraceError> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| schema(format!("field '{key}' must be a string")))
}

fn parse_link(v: &Value, key: &str) -> Result<LinkKind, TraceError> {
    let tag = req_str(v, key)?;
    link_from_tag(tag).ok_or_else(|| schema(format!("unknown link kind '{tag}'")))
}

fn parse_topology(v: &Value) -> Result<Option<Topology>, TraceError> {
    if v.is_null() {
        return Ok(None);
    }
    match req_str(v, "kind")? {
        "flat" => Ok(Some(Topology::Flat(parse_link(v, "link")?))),
        "two_tier" => Ok(Some(Topology::TwoTier {
            island: req_u64(v, "island")? as usize,
            intra: parse_link(v, "intra")?,
            inter: parse_link(v, "inter")?,
        })),
        other => Err(schema(format!("unknown topology kind '{other}'"))),
    }
}

fn parse_dim(v: &Value, key: &str) -> Result<Dim3, TraceError> {
    let arr = req(v, key)?
        .as_array()
        .ok_or_else(|| schema(format!("field '{key}' must be a [x,y,z] array")))?;
    if arr.len() != 3 {
        return Err(schema(format!("field '{key}' must have three components")));
    }
    let comp = |i: usize| -> Result<u32, TraceError> {
        arr[i]
            .as_u64()
            .map(|x| x as u32)
            .ok_or_else(|| schema(format!("'{key}[{i}]' must be a non-negative integer")))
    };
    Ok(Dim3 {
        x: comp(0)?,
        y: comp(1)?,
        z: comp(2)?,
    })
}

fn parse_spec(v: &Value) -> Result<DeviceSpec, TraceError> {
    let mem = req(v, "memory")?;
    Ok(DeviceSpec {
        name: req_str(v, "name")?.to_owned(),
        sm_count: req_u32(v, "sm_count")?,
        cores_per_sm: req_u32(v, "cores_per_sm")?,
        warp_size: req_u32(v, "warp_size")?,
        clock_ghz: req_f64(v, "clock_ghz")?,
        max_threads_per_sm: req_u32(v, "max_threads_per_sm")?,
        max_blocks_per_sm: req_u32(v, "max_blocks_per_sm")?,
        max_threads_per_block: req_u32(v, "max_threads_per_block")?,
        shared_mem_per_sm: req_u32(v, "shared_mem_per_sm")?,
        registers_per_sm: req_u32(v, "registers_per_sm")?,
        memory: MemorySpec {
            capacity_bytes: req_u64(mem, "capacity_bytes")?,
            bandwidth_bytes_per_sec: req_f64(mem, "bandwidth_bytes_per_sec")?,
            latency_ns: req_f64(mem, "latency_ns")?,
        },
        pcie_bandwidth_bytes_per_sec: req_f64(v, "pcie_bandwidth_bytes_per_sec")?,
        pcie_latency_ns: req_f64(v, "pcie_latency_ns")?,
        launch_overhead_ns: req_f64(v, "launch_overhead_ns")?,
    })
}

fn parse_pricing(v: &Value) -> Result<KernelPricing, TraceError> {
    let access_tag = req_str(v, "access")?;
    Ok(KernelPricing {
        cfg: LaunchConfig {
            grid: parse_dim(v, "grid")?,
            block: parse_dim(v, "block")?,
            shared_mem_bytes: req_u32(v, "shared_mem_bytes")?,
        },
        profile: KernelProfile {
            flops: req_u64(v, "flops")?,
            bytes: req_u64(v, "bytes")?,
            access: access_from_tag(access_tag)
                .ok_or_else(|| schema(format!("unknown access pattern '{access_tag}'")))?,
            registers_per_thread: req_u32(v, "registers_per_thread")?,
        },
    })
}

fn parse_record(v: &Value) -> Result<TraceRecord, TraceError> {
    let op = req_str(v, "op")?;
    let device = req_u32(v, "device")?;
    let stream = req_u32(v, "stream")?;
    let body = match op {
        "kernel" => RecordBody::Kernel {
            name: req_str(v, "name")?.to_owned(),
            dur_ns: req_u64(v, "dur_ns")?,
            bytes: req_u64(v, "bytes")?,
            flops: req_u64(v, "flops")?,
            occupancy: req_f64(v, "occupancy")?,
            pricing: match v.get("pricing") {
                Some(p) if !p.is_null() => Some(parse_pricing(p)?),
                _ => None,
            },
        },
        "copy" => {
            let tag = req_str(v, "kind")?;
            RecordBody::Copy {
                name: req_str(v, "name")?.to_owned(),
                kind: CopyKind::from_tag(tag)
                    .ok_or_else(|| schema(format!("unknown copy kind '{tag}'")))?,
                dur_ns: req_u64(v, "dur_ns")?,
                bytes: req_u64(v, "bytes")?,
            }
        }
        "event_record" => RecordBody::EventRecord {
            slot: req_u32(v, "slot")?,
        },
        "event_wait" => RecordBody::EventWait {
            slot: req_u32(v, "slot")?,
        },
        "collective_step" => RecordBody::CollectiveStep {
            name: req_str(v, "name")?.to_owned(),
            dur_ns: req_u64(v, "dur_ns")?,
            bytes: req_u64(v, "bytes")?,
            not_before_ns: req_u64(v, "not_before_ns")?,
        },
        "collective" => {
            let ready = req(v, "ready_ns")?
                .as_array()
                .ok_or_else(|| schema("'ready_ns' must be an array"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| schema("'ready_ns' entries must be integers"))
                })
                .collect::<Result<Vec<u64>, _>>()?;
            let gates = req(v, "gates")?
                .as_array()
                .ok_or_else(|| schema("'gates' must be an array"))?
                .iter()
                .map(|x| {
                    if x.is_null() {
                        Ok(None)
                    } else {
                        x.as_u64()
                            .map(|s| Some(s as u32))
                            .ok_or_else(|| schema("'gates' entries must be integers or null"))
                    }
                })
                .collect::<Result<Vec<Option<u32>>, _>>()?;
            RecordBody::Collective {
                name: req_str(v, "name")?.to_owned(),
                bytes: req_u64(v, "bytes")?,
                channel: req_u32(v, "channel")?,
                ready_ns: ready,
                gates,
            }
        }
        "collective_sync" => RecordBody::CollectiveSync {
            t_ns: req_u64(v, "t_ns")?,
        },
        "barrier" => RecordBody::Barrier,
        "stream_sync" => RecordBody::StreamSync,
        "blocking_all_reduce" => RecordBody::BlockingAllReduce {
            bytes: req_u64(v, "bytes")?,
        },
        "p2p" => RecordBody::P2p {
            src: req_u32(v, "src")?,
            dst: req_u32(v, "dst")?,
            bytes: req_u64(v, "bytes")?,
        },
        other => return Err(schema(format!("unknown record op '{other}'"))),
    };
    Ok(TraceRecord {
        device,
        stream,
        body,
    })
}

fn parse_trace(v: &Value) -> Result<TraceV1, TraceError> {
    let version = req_u64(v, "version")?;
    if version != TRACE_VERSION {
        return Err(TraceError::Version { found: version });
    }
    let devices = req(v, "devices")?
        .as_array()
        .ok_or_else(|| schema("'devices' must be an array"))?
        .iter()
        .map(|d| {
            Ok(TraceDevice {
                ordinal: req_u32(d, "ordinal")?,
                streams: req_u32(d, "streams")?,
                spec: parse_spec(req(d, "spec")?)?,
            })
        })
        .collect::<Result<Vec<TraceDevice>, TraceError>>()?;
    let records = req(v, "records")?
        .as_array()
        .ok_or_else(|| schema("'records' must be an array"))?
        .iter()
        .map(parse_record)
        .collect::<Result<Vec<TraceRecord>, TraceError>>()?;
    Ok(TraceV1 {
        workload: req_str(v, "workload")?.to_owned(),
        comm_channels: req_u32(v, "comm_channels")?,
        topology: parse_topology(req(v, "topology")?)?,
        sim_time_ns: req_u64(v, "sim_time_ns")?,
        kernel_launches: req_u64(v, "kernel_launches")?,
        devices,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::LaunchSpec;

    fn recorded_single_device() -> (TraceV1, u64, u64) {
        let g = Gpu::new(0, DeviceSpec::t4());
        g.record_trace();
        let s = g.create_stream();
        let _ = g.htod(&vec![0u8; 1 << 20]).unwrap();
        let cfg = LaunchConfig::for_elements(1 << 16, 256);
        let profile = KernelProfile::elementwise(1 << 16, 4, 8);
        LaunchSpec::new("k0", cfg, profile).run(&g, || ()).unwrap();
        let ev = g.record_event(StreamId::DEFAULT);
        g.stream_wait(s, &ev);
        LaunchSpec::new("k1", cfg, profile)
            .on(s)
            .run(&g, || ())
            .unwrap();
        g.sync_streams();
        let launches = g.kernels_launched();
        let now = g.now_ns();
        let trace = g.finish_trace("unit").unwrap();
        (trace, now, launches)
    }

    #[test]
    fn identity_replay_matches_recorded_state() {
        let (trace, now, launches) = recorded_single_device();
        assert_eq!(trace.sim_time_ns, now);
        assert_eq!(trace.kernel_launches, launches);
        let rep = replay(&trace, &WhatIf::default()).unwrap();
        assert_eq!(rep.sim_time_ns, trace.sim_time_ns);
        assert_eq!(rep.kernel_launches, trace.kernel_launches);
        assert_eq!(rep.submissions, trace.submissions());
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let (trace, _, _) = recorded_single_device();
        let json = trace.to_json();
        let back = TraceV1::from_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn wrong_version_is_typed_error() {
        let (trace, _, _) = recorded_single_device();
        let json = trace.to_json().replace("\"version\": 1", "\"version\": 99");
        match TraceV1::from_json(&json) {
            Err(TraceError::Version { found }) => assert_eq!(found, 99),
            other => panic!("expected TraceError::Version, got {other:?}"),
        }
    }

    #[test]
    fn unknown_future_field_is_ignored() {
        let (trace, _, _) = recorded_single_device();
        let json = trace.to_json().replace(
            "\"version\": 1",
            "\"version\": 1,\n  \"future_field\": {\"x\": [1,2,3]}",
        );
        let back = TraceV1::from_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn faster_gpu_whatif_shrinks_kernel_time() {
        let (trace, _, _) = recorded_single_device();
        let rep = replay(
            &trace,
            &WhatIf {
                gpu_profile: Some(DeviceSpec::v100()),
                ..WhatIf::default()
            },
        )
        .unwrap();
        assert!(
            rep.sim_time_ns < trace.sim_time_ns,
            "V100 replay {} should beat T4 recording {}",
            rep.sim_time_ns,
            trace.sim_time_ns
        );
    }

    #[test]
    fn graph_replays_are_not_recorded() {
        let g = Gpu::new(0, DeviceSpec::t4());
        let cfg = LaunchConfig::for_elements(1 << 10, 256);
        let profile = KernelProfile::elementwise(1 << 10, 2, 8);
        g.begin_capture("pair").unwrap();
        LaunchSpec::new("a", cfg, profile).run(&g, || ()).unwrap();
        let graph = g.end_capture().unwrap();
        g.record_trace();
        graph.replay(&g).unwrap();
        let trace = g.finish_trace("graphed").unwrap();
        assert!(
            trace.records.is_empty(),
            "graph replay bypasses submit and must not be traced"
        );
    }
}
