//! Pooled device memory: a size-class caching allocator over
//! [`MemoryAccounting`], plus residency counters.
//!
//! Raw [`crate::memory::DeviceBuffer`] allocations model `cudaMalloc`:
//! every allocation and free goes straight to the device-wide capacity
//! ledger. Real frameworks do not work that way — PyTorch, CuPy and JAX all
//! interpose a *caching allocator* so that the steady-state of a training
//! loop performs zero `cudaMalloc`/`cudaFree` calls. [`MemoryPool`]
//! reproduces that design in miniature:
//!
//! - requests are rounded up to a **size class** (next power of two, minimum
//!   [`MIN_SIZE_CLASS_BYTES`]) so freed slabs are reusable by later requests
//!   of similar size;
//! - freeing a [`PoolLease`] returns its slab to a per-class free list —
//!   the bytes stay *reserved* against device capacity (cached);
//! - on reservation failure the pool [`MemoryPool::trim`]s its cache and
//!   retries once before surfacing [`GpuError::OutOfMemory`] — the same
//!   "empty the cache, then really OOM" behavior as
//!   `torch.cuda.empty_cache()` done automatically.
//!
//! Every live lease carries a globally unique [`BufferId`]; the pool tracks
//! the set of resident ids, which is what lets the executor layer above
//! answer "is this tensor already on the device?" without a transfer.
//!
//! [`ResidencyStats`] is the companion ledger for that question: hit/miss
//! counts and host-link byte counters, consumed by the profiler's
//! bottleneck classifier.

use crate::device::Gpu;
use crate::error::GpuError;
use crate::memory::MemoryAccounting;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest slab the pool hands out; sub-256 B requests round up to this,
/// mirroring the 512 B minimum block of the PyTorch caching allocator.
pub const MIN_SIZE_CLASS_BYTES: u64 = 256;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// Globally unique identity of a pooled device allocation.
///
/// Ids are never reused, so holding a `BufferId` after its lease dropped is
/// safe: residency queries simply answer `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(u64);

impl BufferId {
    /// The raw id value (monotonically increasing, process-wide).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Rounds a request up to its pool size class.
pub fn size_class(bytes: u64) -> u64 {
    if bytes == 0 {
        0
    } else {
        bytes.max(MIN_SIZE_CLASS_BYTES).next_power_of_two()
    }
}

#[derive(Debug, Default)]
struct PoolCounters {
    allocs: AtomicU64,
    frees: AtomicU64,
    reuse_hits: AtomicU64,
    trims: AtomicU64,
    in_use_bytes: AtomicU64,
    cached_bytes: AtomicU64,
    high_water_bytes: AtomicU64,
}

#[derive(Debug)]
struct PoolShared {
    device: u32,
    accounting: Arc<MemoryAccounting>,
    /// size class → number of cached (reserved but free) slabs.
    free: parking_lot::Mutex<BTreeMap<u64, u64>>,
    /// Ids of live leases: which buffers are currently resident.
    resident: parking_lot::Mutex<BTreeSet<BufferId>>,
    counters: PoolCounters,
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        // Leases keep the shared state alive, so by the time this runs every
        // slab is in the cache; hand the reservations back to the device.
        let cached: u64 = self.free.get_mut().iter().map(|(c, n)| c * n).sum();
        if cached > 0 {
            self.accounting.release(cached);
        }
    }
}

/// A caching size-class allocator for one device's memory.
///
/// Cheaply cloneable handle; clones share the same cache and counters.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    shared: Arc<PoolShared>,
}

impl MemoryPool {
    /// Creates a pool drawing from `gpu`'s capacity ledger.
    pub fn new(gpu: &Gpu) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                device: gpu.ordinal(),
                accounting: gpu.accounting_handle(),
                free: parking_lot::Mutex::new(BTreeMap::new()),
                resident: parking_lot::Mutex::new(BTreeSet::new()),
                counters: PoolCounters::default(),
            }),
        }
    }

    /// Ordinal of the device this pool allocates on.
    pub fn device(&self) -> u32 {
        self.shared.device
    }

    /// Leases a slab large enough for `bytes`.
    ///
    /// Reuses a cached slab of the same size class when one exists;
    /// otherwise reserves fresh capacity, trimming the cache and retrying
    /// once before reporting [`GpuError::OutOfMemory`]. Allocation costs no
    /// simulated time (as `cudaMalloc` from a warm cache costs ~none).
    pub fn lease(&self, bytes: u64) -> Result<PoolLease, GpuError> {
        let class = size_class(bytes);
        let s = &self.shared;
        let reused = class > 0 && {
            let mut free = s.free.lock();
            match free.get_mut(&class) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        if reused {
            s.counters.reuse_hits.fetch_add(1, Ordering::Relaxed);
            s.counters.cached_bytes.fetch_sub(class, Ordering::Relaxed);
        } else if class > 0 && s.accounting.reserve(class, s.device).is_err() {
            self.trim();
            s.accounting.reserve(class, s.device)?;
        }
        s.counters.allocs.fetch_add(1, Ordering::Relaxed);
        let in_use = s.counters.in_use_bytes.fetch_add(class, Ordering::Relaxed) + class;
        s.counters
            .high_water_bytes
            .fetch_max(in_use, Ordering::Relaxed);
        let id = BufferId(NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed));
        s.resident.lock().insert(id);
        Ok(PoolLease {
            shared: Arc::clone(s),
            id,
            bytes,
            class_bytes: class,
        })
    }

    /// Releases every cached slab back to the device ledger, returning the
    /// number of bytes freed (`torch.cuda.empty_cache()`).
    pub fn trim(&self) -> u64 {
        let s = &self.shared;
        let freed: u64 = {
            let mut free = s.free.lock();
            let freed = free.iter().map(|(c, n)| c * n).sum();
            free.clear();
            freed
        };
        if freed > 0 {
            s.accounting.release(freed);
            s.counters.cached_bytes.fetch_sub(freed, Ordering::Relaxed);
            s.counters.trims.fetch_add(1, Ordering::Relaxed);
        }
        freed
    }

    /// Whether the lease with id `id` is still alive (device-resident).
    pub fn is_resident(&self, id: BufferId) -> bool {
        self.shared.resident.lock().contains(&id)
    }

    /// Number of live leases.
    pub fn resident_count(&self) -> usize {
        self.shared.resident.lock().len()
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            device: self.shared.device,
            allocs: c.allocs.load(Ordering::Relaxed),
            frees: c.frees.load(Ordering::Relaxed),
            reuse_hits: c.reuse_hits.load(Ordering::Relaxed),
            trims: c.trims.load(Ordering::Relaxed),
            in_use_bytes: c.in_use_bytes.load(Ordering::Relaxed),
            cached_bytes: c.cached_bytes.load(Ordering::Relaxed),
            high_water_bytes: c.high_water_bytes.load(Ordering::Relaxed),
        }
    }
}

/// RAII handle to a pooled slab: dropping it returns the slab to the cache
/// (the reservation is kept — use [`MemoryPool::trim`] to give it back).
#[derive(Debug)]
pub struct PoolLease {
    shared: Arc<PoolShared>,
    id: BufferId,
    bytes: u64,
    class_bytes: u64,
}

impl PoolLease {
    /// Unique identity of this allocation.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Bytes requested by the caller.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes actually reserved (the size class).
    pub fn class_bytes(&self) -> u64 {
        self.class_bytes
    }

    /// Ordinal of the owning device.
    pub fn device(&self) -> u32 {
        self.shared.device
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        let s = &self.shared;
        s.resident.lock().remove(&self.id);
        s.counters.frees.fetch_add(1, Ordering::Relaxed);
        s.counters
            .in_use_bytes
            .fetch_sub(self.class_bytes, Ordering::Relaxed);
        if self.class_bytes > 0 {
            *s.free.lock().entry(self.class_bytes).or_insert(0) += 1;
            s.counters
                .cached_bytes
                .fetch_add(self.class_bytes, Ordering::Relaxed);
        }
    }
}

/// Point-in-time view of a pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    pub device: u32,
    pub allocs: u64,
    pub frees: u64,
    pub reuse_hits: u64,
    pub trims: u64,
    pub in_use_bytes: u64,
    pub cached_bytes: u64,
    pub high_water_bytes: u64,
}

impl PoolStats {
    /// Fraction of allocations served from the cache.
    pub fn reuse_ratio(&self) -> f64 {
        if self.allocs == 0 {
            0.0
        } else {
            self.reuse_hits as f64 / self.allocs as f64
        }
    }
}

/// Shared hit/miss and host-link byte counters for residency-aware
/// executors. One instance is typically shared between an executor and the
/// profiler analyzing its trace.
#[derive(Debug, Default)]
pub struct ResidencyStats {
    hits: AtomicU64,
    misses: AtomicU64,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
}

impl ResidencyStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// An operand was already device-resident: no transfer charged.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// An operand had to be staged from the host.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `bytes` moved host → device.
    pub fn add_h2d(&self, bytes: u64) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Adds `bytes` moved device → host.
    pub fn add_d2h(&self, bytes: u64) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> ResidencySnapshot {
        ResidencySnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`ResidencyStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidencySnapshot {
    pub hits: u64,
    pub misses: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
}

impl ResidencySnapshot {
    /// Fraction of operand lookups that found the data already resident
    /// (0.0 when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total bytes that crossed the host link in either direction.
    pub fn host_link_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &ResidencySnapshot) -> ResidencySnapshot {
        ResidencySnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            h2d_bytes: self.h2d_bytes - earlier.h2d_bytes,
            d2h_bytes: self.d2h_bytes - earlier.d2h_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DeviceSpec;

    fn tiny_gpu() -> Gpu {
        Gpu::new(0, DeviceSpec::test_tiny())
    }

    #[test]
    fn size_classes_round_up_to_powers_of_two() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 256);
        assert_eq!(size_class(256), 256);
        assert_eq!(size_class(257), 512);
        assert_eq!(size_class(1000), 1024);
        assert_eq!(size_class(1024), 1024);
    }

    #[test]
    fn lease_reserves_and_drop_caches() {
        let g = tiny_gpu();
        let pool = MemoryPool::new(&g);
        let lease = pool.lease(1000).unwrap();
        assert_eq!(lease.bytes(), 1000);
        assert_eq!(lease.class_bytes(), 1024);
        assert_eq!(g.mem_used(), 1024);
        assert!(pool.is_resident(lease.id()));
        let id = lease.id();
        drop(lease);
        // Slab is cached: still reserved, but no longer resident.
        assert_eq!(g.mem_used(), 1024);
        assert!(!pool.is_resident(id));
        assert_eq!(pool.stats().cached_bytes, 1024);
        assert_eq!(pool.trim(), 1024);
        assert_eq!(g.mem_used(), 0);
    }

    #[test]
    fn freed_slab_is_reused_for_same_class() {
        let g = tiny_gpu();
        let pool = MemoryPool::new(&g);
        let a = pool.lease(900).unwrap();
        drop(a);
        let b = pool.lease(1024).unwrap(); // same 1024 class
        let stats = pool.stats();
        assert_eq!(stats.reuse_hits, 1);
        assert_eq!(stats.allocs, 2);
        assert_eq!(g.mem_used(), 1024, "no second reservation");
        drop(b);
    }

    #[test]
    fn oom_trims_cache_and_retries_before_failing() {
        let g = tiny_gpu(); // 1 MiB capacity
        let pool = MemoryPool::new(&g);
        let a = pool.lease(300 << 10).unwrap();
        drop(a); // cached: 512 KiB class slab stays reserved
        assert!(g.mem_used() > 0);
        // A different class that only fits if the cache is trimmed.
        let b = pool.lease(700 << 10).unwrap();
        assert_eq!(pool.stats().trims, 1);
        drop(b);
        // And a request that can never fit surfaces OOM, not a panic.
        let err = pool.lease(2 << 20).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
    }

    #[test]
    fn high_water_tracks_peak_in_use() {
        let g = tiny_gpu();
        let pool = MemoryPool::new(&g);
        let a = pool.lease(256 << 10).unwrap();
        let b = pool.lease(256 << 10).unwrap();
        drop(a);
        drop(b);
        let stats = pool.stats();
        assert_eq!(stats.high_water_bytes, 512 << 10);
        assert_eq!(stats.in_use_bytes, 0);
        assert_eq!(stats.frees, 2);
    }

    #[test]
    fn dropping_pool_releases_cached_reservations() {
        let g = tiny_gpu();
        {
            let pool = MemoryPool::new(&g);
            let lease = pool.lease(4096).unwrap();
            drop(lease);
            assert_eq!(g.mem_used(), 4096);
        }
        assert_eq!(g.mem_used(), 0);
    }

    #[test]
    fn buffer_ids_are_unique_across_pools() {
        let g = tiny_gpu();
        let p1 = MemoryPool::new(&g);
        let p2 = MemoryPool::new(&g);
        let a = p1.lease(64).unwrap();
        let b = p2.lease(64).unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn residency_stats_ratio_and_bytes() {
        let rs = ResidencyStats::new();
        assert_eq!(rs.snapshot().hit_ratio(), 0.0);
        rs.record_hit();
        rs.record_hit();
        rs.record_hit();
        rs.record_miss();
        rs.add_h2d(100);
        rs.add_d2h(50);
        let snap = rs.snapshot();
        assert_eq!(snap.hit_ratio(), 0.75);
        assert_eq!(snap.host_link_bytes(), 150);
        let later = ResidencySnapshot {
            hits: 5,
            misses: 1,
            h2d_bytes: 300,
            d2h_bytes: 50,
        };
        let delta = later.since(&snap);
        assert_eq!(delta.hits, 2);
        assert_eq!(delta.h2d_bytes, 200);
    }
}
