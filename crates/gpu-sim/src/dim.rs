//! Three-dimensional index spaces, mirroring CUDA's `dim3`.

use serde::{Deserialize, Serialize};

/// A CUDA-style three-dimensional extent or index.
///
/// Used both for grid/block shapes in a [`crate::kernel::LaunchConfig`] and
/// for block/thread indices handed to per-thread kernel bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent `(x, 1, 1)`.
    pub const fn x(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// A full 3-D extent.
    pub const fn xyz(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// The single-cell extent `(1, 1, 1)`.
    pub const fn one() -> Self {
        Self { x: 1, y: 1, z: 1 }
    }

    /// Total number of cells in this extent.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Whether every component is at least 1 (a launchable extent).
    pub fn is_valid_extent(&self) -> bool {
        self.x >= 1 && self.y >= 1 && self.z >= 1
    }

    /// Linearizes an index within this extent (x fastest, CUDA order).
    ///
    /// Returns `None` if `idx` lies outside the extent.
    pub fn linearize(&self, idx: Dim3) -> Option<u64> {
        if idx.x >= self.x || idx.y >= self.y || idx.z >= self.z {
            return None;
        }
        Some(idx.x as u64 + self.x as u64 * (idx.y as u64 + self.y as u64 * idx.z as u64))
    }

    /// Inverse of [`Self::linearize`]: recovers the 3-D index of a linear id.
    ///
    /// Returns `None` when `lin >= self.count()`.
    pub fn delinearize(&self, lin: u64) -> Option<Dim3> {
        if lin >= self.count() {
            return None;
        }
        let x = (lin % self.x as u64) as u32;
        let rest = lin / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        Some(Dim3 { x, y, z })
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::xyz(x, y, z)
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_multiplies_components() {
        assert_eq!(Dim3::xyz(2, 3, 4).count(), 24);
        assert_eq!(Dim3::x(7).count(), 7);
        assert_eq!(Dim3::one().count(), 1);
    }

    #[test]
    fn linearize_roundtrips() {
        let ext = Dim3::xyz(4, 3, 2);
        for lin in 0..ext.count() {
            let idx = ext.delinearize(lin).unwrap();
            assert_eq!(ext.linearize(idx), Some(lin));
        }
    }

    #[test]
    fn linearize_rejects_out_of_bounds() {
        let ext = Dim3::xy(4, 4);
        assert_eq!(ext.linearize(Dim3::xyz(4, 0, 0)), None);
        assert_eq!(ext.linearize(Dim3::xyz(0, 4, 0)), None);
        assert_eq!(ext.linearize(Dim3::xyz(0, 0, 1)), None);
        assert_eq!(ext.delinearize(16), None);
    }

    #[test]
    fn x_fastest_ordering_matches_cuda() {
        let ext = Dim3::xyz(4, 3, 2);
        assert_eq!(ext.linearize(Dim3::xyz(1, 0, 0)), Some(1));
        assert_eq!(ext.linearize(Dim3::xyz(0, 1, 0)), Some(4));
        assert_eq!(ext.linearize(Dim3::xyz(0, 0, 1)), Some(12));
    }

    #[test]
    fn conversions() {
        assert_eq!(Dim3::from(5u32), Dim3::x(5));
        assert_eq!(Dim3::from((2u32, 3u32)), Dim3::xy(2, 3));
        assert_eq!(Dim3::from((2u32, 3u32, 4u32)), Dim3::xyz(2, 3, 4));
    }

    #[test]
    fn zero_extent_is_invalid() {
        assert!(!Dim3::xyz(0, 1, 1).is_valid_extent());
        assert!(Dim3::one().is_valid_extent());
    }
}
