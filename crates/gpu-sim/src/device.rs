//! A live simulated GPU: allocator, clock, kernel launch, transfers.
//!
//! Since the command-stream rework, every charging entry point here is a
//! thin wrapper over [`crate::command`]: it encodes the operation as a
//! [`Command`], submits it, and rings the doorbell immediately, which makes
//! the resulting timeline bit-identical to the historical synchronous
//! charges while sharing one retirement path with batched submission and
//! graph replay.

use crate::arch::DeviceSpec;
use crate::command::{Command, CommandProcessor, CopyCommand, KernelCommand};
use crate::dim::Dim3;
use crate::error::{invalid_launch, GpuError};
use crate::event::{EventKind, EventRecorder, TraceEvent};
use crate::kernel::{KernelProfile, LaunchConfig};
use crate::memory::{DeviceBuffer, MemoryAccounting};
use crate::occupancy::{occupancy, OccupancyResult};
use crate::pool::{MemoryPool, PoolLease};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A simulated GPU device.
///
/// The device keeps a monotonically advancing *simulated* clock (ns).
/// Kernels and transfers advance it by their modeled duration; real
/// wall-clock execution time of the kernel body is irrelevant to the
/// simulated timeline, which makes the timeline deterministic.
#[derive(Debug)]
pub struct Gpu {
    ordinal: u32,
    spec: DeviceSpec,
    accounting: Arc<MemoryAccounting>,
    /// Floor the whole device has been synchronized past (cluster barriers).
    clock_ns: AtomicU64,
    /// Next-free timestamp per stream; index = stream ordinal, 0 = default.
    streams: parking_lot::Mutex<Vec<u64>>,
    recorder: EventRecorder,
    kernels_launched: AtomicU64,
    /// Driver-side command processor (queues, event table, capture state).
    /// Lock ordering: `cmd` before `streams`, never the reverse.
    pub(crate) cmd: parking_lot::Mutex<CommandProcessor>,
}

/// Handle to an asynchronous stream created with [`Gpu::create_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(pub(crate) u32);

impl StreamId {
    /// The always-present default stream.
    pub const DEFAULT: StreamId = StreamId(0);

    /// Stream ordinal as it appears in trace events.
    pub fn ordinal(&self) -> u32 {
        self.0
    }
}

/// A recorded point on a stream's timeline (`cudaEventRecord`).
///
/// Events capture the timestamp at which all work previously issued on the
/// recording stream completes; another stream can order itself after that
/// point with [`Gpu::stream_wait`] — the building block for copy/compute
/// pipelines that span streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuEvent {
    stream: u32,
    t_ns: u64,
    /// Backing slot in the command processor's event table.
    cmd: crate::command::CmdEvent,
}

impl GpuEvent {
    /// Simulated time at which the event fires (all prior work on the
    /// recording stream has completed). Zero while the event is only
    /// captured in a graph (it resolves per replay).
    pub fn timestamp_ns(&self) -> u64 {
        self.t_ns
    }

    /// The driver-side event slot backing this event.
    pub fn cmd_event(&self) -> crate::command::CmdEvent {
        self.cmd
    }

    /// Ordinal of the stream the event was recorded on.
    pub fn stream_ordinal(&self) -> u32 {
        self.stream
    }
}

impl Gpu {
    /// Creates a device with its own private event recorder.
    pub fn new(ordinal: u32, spec: DeviceSpec) -> Self {
        Self::with_recorder(ordinal, spec, EventRecorder::new())
    }

    /// Creates a device recording into a shared recorder (cluster use).
    pub fn with_recorder(ordinal: u32, spec: DeviceSpec, recorder: EventRecorder) -> Self {
        let accounting = Arc::new(MemoryAccounting::new(spec.memory.capacity_bytes));
        Self {
            ordinal,
            spec,
            accounting,
            clock_ns: AtomicU64::new(0),
            streams: parking_lot::Mutex::new(vec![0]),
            recorder,
            kernels_launched: AtomicU64::new(0),
            cmd: parking_lot::Mutex::new(CommandProcessor::default()),
        }
    }

    /// Creates a new asynchronous stream. Operations issued on different
    /// streams may overlap in simulated time (copy/compute overlap);
    /// operations within one stream serialize — CUDA's stream semantics.
    pub fn create_stream(&self) -> StreamId {
        let mut streams = self.streams.lock();
        streams.push(0);
        StreamId((streams.len() - 1) as u32)
    }

    /// Aligns every stream (and the device floor) to the latest timestamp
    /// among them — `cudaDeviceSynchronize` across streams. Returns it.
    /// Drains any pending commands first. Not capturable: call it outside
    /// [`Gpu::begin_capture`]/[`Gpu::end_capture`] windows.
    pub fn sync_streams(&self) -> u64 {
        if let Some(sink) = self.trace_sink() {
            // Keyed at the submission frontier so the sync sorts after
            // everything submitted so far on this device.
            sink.record_device(
                self.ordinal,
                self.next_submission_seq(),
                crate::trace::RecordBody::StreamSync,
            );
        }
        self.doorbell()
            .expect("cannot sync streams: command queue stalled");
        let t = {
            let mut streams = self.streams.lock();
            let t = streams
                .iter()
                .copied()
                .max()
                .unwrap_or(0)
                .max(self.clock_ns.load(Ordering::SeqCst));
            for s in streams.iter_mut() {
                *s = t;
            }
            t
        };
        self.advance_to(t);
        self.record_on(EventKind::Sync, "stream-sync", 0, t, 0, 0, 0, 0.0);
        t
    }

    /// Records an event on `stream` (`cudaEventRecord`): captures the time
    /// at which everything issued on the stream so far will have finished.
    /// During graph capture the returned event is an unresolved template
    /// (`timestamp_ns() == 0`); it resolves per replay.
    pub fn record_event(&self, stream: StreamId) -> GpuEvent {
        let cmd = self.create_cmd_event();
        self.submit(stream, Command::EventRecord { event: cmd });
        self.doorbell().expect("an event record can always retire");
        let t_ns = self.cmd_event_ns(cmd).unwrap_or(0);
        GpuEvent {
            stream: stream.0,
            t_ns,
            cmd,
        }
    }

    /// Makes all future work on `stream` wait for `event`
    /// (`cudaStreamWaitEvent`): the stream's next-free slot is pushed to at
    /// least the event timestamp. Costs no simulated time itself.
    pub fn stream_wait(&self, stream: StreamId, event: &GpuEvent) {
        self.submit(stream, Command::EventWait { event: event.cmd });
        self.doorbell()
            .expect("an eager stream_wait needs an already-recorded event");
    }

    /// Device ordinal (0-based).
    pub fn ordinal(&self) -> u32 {
        self.ordinal
    }

    /// Static architecture description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The recorder this device emits trace events into.
    pub fn recorder(&self) -> &EventRecorder {
        &self.recorder
    }

    /// Current simulated time in nanoseconds: the furthest point any
    /// stream has reached (or the synchronization floor, if later).
    pub fn now_ns(&self) -> u64 {
        let stream_max = self.streams.lock().iter().copied().max().unwrap_or(0);
        stream_max.max(self.clock_ns.load(Ordering::SeqCst))
    }

    /// Bytes of device memory currently allocated.
    pub fn mem_used(&self) -> u64 {
        self.accounting.used()
    }

    /// Bytes of device memory still free.
    pub fn mem_free(&self) -> u64 {
        self.accounting.free()
    }

    /// Number of kernels launched so far.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Fraction of elapsed simulated time the device spent busy.
    pub fn utilization(&self) -> f64 {
        let now = self.now_ns();
        if now == 0 {
            return 0.0;
        }
        self.recorder.busy_ns(self.ordinal) as f64 / now as f64
    }

    pub(crate) fn accounting_handle(&self) -> Arc<MemoryAccounting> {
        Arc::clone(&self.accounting)
    }

    /// Reserves `dur_ns` on a stream: the op starts when the stream is
    /// free (but never before the device floor) and returns its start.
    /// Called only from command retirement.
    pub(crate) fn advance_on(&self, stream: StreamId, dur_ns: u64) -> u64 {
        let floor = self.clock_ns.load(Ordering::SeqCst);
        let mut streams = self.streams.lock();
        let slot = &mut streams[stream.0 as usize];
        let start = (*slot).max(floor);
        *slot = start + dur_ns;
        start
    }

    /// Current time on one stream: its next-free slot, or the device
    /// floor if later. Does not move the stream.
    pub(crate) fn stream_time(&self, stream: StreamId) -> u64 {
        let floor = self.clock_ns.load(Ordering::SeqCst);
        self.streams.lock()[stream.0 as usize].max(floor)
    }

    /// Pushes a stream's next-free slot to at least `t_ns` (event-wait
    /// retirement). Costs no simulated time.
    pub(crate) fn wait_until(&self, stream: StreamId, t_ns: u64) {
        let mut streams = self.streams.lock();
        let slot = &mut streams[stream.0 as usize];
        *slot = (*slot).max(t_ns);
    }

    /// Number of streams that exist on this device.
    pub(crate) fn stream_count(&self) -> usize {
        self.streams.lock().len()
    }

    /// Counts one kernel launch (retirement of a non-graph kernel).
    pub(crate) fn count_kernel_launch(&self) {
        self.kernels_launched.fetch_add(1, Ordering::Relaxed);
    }

    /// Reserves `dur_ns` on `stream` with an extra lower bound on the
    /// start: the op begins at `max(stream free, device floor,
    /// not_before_ns)` and the stream's next-free slot moves past it.
    /// Returns the start. Used by cluster collectives to place lockstep
    /// ring steps on per-device comm streams without touching the floor.
    pub(crate) fn reserve_on(&self, stream: StreamId, not_before_ns: u64, dur_ns: u64) -> u64 {
        let floor = self.clock_ns.load(Ordering::SeqCst);
        let mut streams = self.streams.lock();
        let slot = &mut streams[stream.0 as usize];
        let start = (*slot).max(floor).max(not_before_ns);
        *slot = start + dur_ns;
        start
    }

    /// Advances the device clock to at least `t_ns` (used by cluster ops to
    /// model cross-device waits). Returns the new time.
    pub fn advance_to(&self, t_ns: u64) -> u64 {
        let mut cur = self.now_ns();
        while cur < t_ns {
            match self
                .clock_ns
                .compare_exchange(cur, t_ns, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t_ns,
                Err(actual) => cur = actual,
            }
        }
        cur
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        kind: EventKind,
        name: &str,
        start: u64,
        dur: u64,
        bytes: u64,
        flops: u64,
        occ: f64,
    ) {
        self.record_on(kind, name, 0, start, dur, bytes, flops, occ);
    }

    #[allow(clippy::too_many_arguments)]
    fn record_on(
        &self,
        kind: EventKind,
        name: &str,
        stream: u32,
        start: u64,
        dur: u64,
        bytes: u64,
        flops: u64,
        occ: f64,
    ) {
        self.recorder.record(TraceEvent {
            kind,
            name: name.to_owned(),
            device: self.ordinal,
            stream,
            start_ns: start,
            dur_ns: dur,
            bytes,
            flops,
            occupancy: occ,
            graph: false,
        });
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Allocates an uninitialized-in-spirit (zeroed) buffer of `n` elements.
    /// Like `cudaMalloc`, allocation itself costs no simulated time.
    pub fn alloc_zeroed<T: Copy + Default + Send + Sync + 'static>(
        &self,
        n: usize,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        DeviceBuffer::from_vec(
            vec![T::default(); n],
            self.ordinal,
            Arc::clone(&self.accounting),
        )
    }

    fn transfer_ns(&self, bytes: u64) -> u64 {
        let t =
            self.spec.pcie_latency_ns + bytes as f64 / self.spec.pcie_bandwidth_bytes_per_sec * 1e9;
        t.ceil() as u64
    }

    /// Submits one copy command and rings the doorbell (the eager-wrapper
    /// path shared by all transfer entry points).
    fn charge_copy(
        &self,
        stream: StreamId,
        kind: EventKind,
        name: &str,
        dur_ns: u64,
        bytes: u64,
    ) -> Result<(), GpuError> {
        self.submit(
            stream,
            Command::Copy(CopyCommand {
                name: name.to_owned(),
                kind,
                dur_ns,
                bytes,
                graph: false,
            }),
        );
        self.doorbell()
    }

    /// Copies host data to a new device buffer, charging PCIe time.
    pub fn htod<T: Copy + Send + Sync + 'static>(
        &self,
        host: &[T],
    ) -> Result<DeviceBuffer<T>, GpuError> {
        self.htod_on(StreamId::DEFAULT, host)
    }

    /// Copies a device buffer back to host, charging PCIe time.
    pub fn dtoh<T: Copy + Send + Sync + 'static>(
        &self,
        buf: &DeviceBuffer<T>,
    ) -> Result<Vec<T>, GpuError> {
        self.dtoh_on(StreamId::DEFAULT, buf)
    }

    /// Duplicates a buffer on the same device, charging global-memory time.
    pub fn dtod<T: Copy + Send + Sync + 'static>(
        &self,
        buf: &DeviceBuffer<T>,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        buf.expect_device(self.ordinal)?;
        let copy = DeviceBuffer::from_vec(
            buf.host_view().to_vec(),
            self.ordinal,
            Arc::clone(&self.accounting),
        )?;
        let bytes = 2 * buf.size_bytes(); // read + write
        let dur = (self.spec.memory.latency_ns
            + bytes as f64 / self.spec.memory.bandwidth_bytes_per_sec * 1e9)
            .ceil() as u64;
        self.charge_copy(StreamId::DEFAULT, EventKind::MemcpyD2D, "dtod", dur, bytes)?;
        Ok(copy)
    }

    /// Charges an H2D transfer of `bytes` into pooled device memory on the
    /// default stream, returning the (now resident) lease.
    ///
    /// This is the residency layer's upload primitive: the payload itself
    /// lives in the caller's host structures (the simulator computes on
    /// host RAM), so only the cost and the capacity reservation are
    /// modeled here.
    pub fn htod_pooled(&self, pool: &MemoryPool, bytes: u64) -> Result<PoolLease, GpuError> {
        self.htod_pooled_on(StreamId::DEFAULT, pool, bytes)
    }

    /// [`Self::htod_pooled`] on an explicit stream (`cudaMemcpyAsync` into
    /// a pooled buffer).
    pub fn htod_pooled_on(
        &self,
        stream: StreamId,
        pool: &MemoryPool,
        bytes: u64,
    ) -> Result<PoolLease, GpuError> {
        self.htod_pooled_named_on(stream, pool, bytes, "htod")
    }

    /// [`Self::htod_pooled`] with a caller-supplied event name on the
    /// default stream. Tiered-residency layers use this to label
    /// promotion copies (e.g. `"promote-list"`) so the profiler can
    /// attribute cold-miss traffic separately from first-time uploads.
    pub fn htod_pooled_named(
        &self,
        pool: &MemoryPool,
        bytes: u64,
        name: &str,
    ) -> Result<PoolLease, GpuError> {
        self.htod_pooled_named_on(StreamId::DEFAULT, pool, bytes, name)
    }

    /// [`Self::htod_pooled_named`] on an explicit stream.
    pub fn htod_pooled_named_on(
        &self,
        stream: StreamId,
        pool: &MemoryPool,
        bytes: u64,
        name: &str,
    ) -> Result<PoolLease, GpuError> {
        if pool.device() != self.ordinal {
            return Err(GpuError::WrongDevice {
                expected: pool.device(),
                actual: self.ordinal,
            });
        }
        let lease = pool.lease(bytes)?;
        let dur = self.transfer_ns(bytes);
        self.charge_copy(stream, EventKind::MemcpyH2D, name, dur, bytes)?;
        Ok(lease)
    }

    /// Charges a D2H readback of a pooled buffer on the default stream.
    /// The lease stays resident — reading back does not evict.
    pub fn dtoh_pooled(&self, lease: &PoolLease) -> Result<(), GpuError> {
        self.dtoh_pooled_on(StreamId::DEFAULT, lease)
    }

    /// [`Self::dtoh_pooled`] on an explicit stream.
    pub fn dtoh_pooled_on(&self, stream: StreamId, lease: &PoolLease) -> Result<(), GpuError> {
        if lease.device() != self.ordinal {
            return Err(GpuError::WrongDevice {
                expected: lease.device(),
                actual: self.ordinal,
            });
        }
        let bytes = lease.bytes();
        let dur = self.transfer_ns(bytes);
        self.charge_copy(stream, EventKind::MemcpyD2H, "dtoh", dur, bytes)
    }

    // ------------------------------------------------------------------
    // Kernel launch
    // ------------------------------------------------------------------

    fn validate(
        &self,
        cfg: &LaunchConfig,
        profile: &KernelProfile,
    ) -> Result<OccupancyResult, GpuError> {
        if !cfg.grid.is_valid_extent() || !cfg.block.is_valid_extent() {
            return Err(invalid_launch(
                cfg.grid,
                cfg.block,
                "grid/block components must be >= 1",
            ));
        }
        if cfg.threads_per_block() > self.spec.max_threads_per_block as u64 {
            return Err(invalid_launch(
                cfg.grid,
                cfg.block,
                "threads per block exceeds device limit",
            ));
        }
        if cfg.shared_mem_bytes > self.spec.shared_mem_per_sm {
            return Err(invalid_launch(
                cfg.grid,
                cfg.block,
                "shared memory per block exceeds SM capacity",
            ));
        }
        occupancy(&self.spec, cfg, profile.registers_per_thread)
            .ok_or_else(|| invalid_launch(cfg.grid, cfg.block, "launch cannot be placed on an SM"))
    }

    /// Modeled kernel duration, without running anything. Exposed so cost
    /// analyses (and tests) can query the roofline directly.
    pub fn kernel_duration_ns(
        &self,
        cfg: &LaunchConfig,
        profile: &KernelProfile,
    ) -> Result<(u64, OccupancyResult), GpuError> {
        let occ = self.validate(cfg, profile)?;
        // Effective compute throughput scales with occupancy up to ~50%,
        // past which latency is fully hidden — the standard CUDA rule of
        // thumb the course's optimization module teaches.
        let occ_factor = (occ.occupancy * 2.0).clamp(0.05, 1.0);
        let compute_s = profile.flops as f64 / (self.spec.peak_flops() * occ_factor);
        let bw = self.spec.memory.bandwidth_bytes_per_sec * profile.access.bandwidth_efficiency();
        let mem_s = profile.bytes as f64 / bw + self.spec.memory.latency_ns * 1e-9;
        let dur = self.spec.launch_overhead_ns + compute_s.max(mem_s) * 1e9;
        Ok((dur.ceil() as u64, occ))
    }

    /// Asynchronous host-to-device copy on a stream (`cudaMemcpyAsync`).
    pub fn htod_on<T: Copy + Send + Sync + 'static>(
        &self,
        stream: StreamId,
        host: &[T],
    ) -> Result<DeviceBuffer<T>, GpuError> {
        let buf =
            DeviceBuffer::from_vec(host.to_vec(), self.ordinal, Arc::clone(&self.accounting))?;
        let bytes = buf.size_bytes();
        let dur = self.transfer_ns(bytes);
        self.charge_copy(stream, EventKind::MemcpyH2D, "htod", dur, bytes)?;
        Ok(buf)
    }

    /// Asynchronous device-to-host copy on a stream.
    pub fn dtoh_on<T: Copy + Send + Sync + 'static>(
        &self,
        stream: StreamId,
        buf: &DeviceBuffer<T>,
    ) -> Result<Vec<T>, GpuError> {
        buf.expect_device(self.ordinal)?;
        let bytes = buf.size_bytes();
        let dur = self.transfer_ns(bytes);
        self.charge_copy(stream, EventKind::MemcpyD2H, "dtoh", dur, bytes)?;
        Ok(buf.host_view().to_vec())
    }

    /// Records a blocking synchronization point (`cudaDeviceSynchronize`).
    pub fn synchronize(&self) {
        let now = self.now_ns();
        self.record(EventKind::Sync, "device-sync", now, 0, 0, 0, 0.0);
    }

    /// Wraps `body` in an NVTX-style named range on the timeline.
    pub fn range<R>(&self, name: &str, body: impl FnOnce() -> R) -> R {
        let start = self.now_ns();
        let out = body();
        let end = self.now_ns();
        self.record(EventKind::Range, name, start, end - start, 0, 0, 0.0);
        out
    }
}

/// Builder describing one kernel launch — the single entry point that
/// replaced the historical `launch`/`launch_on`/`launch_map`/
/// `launch_threads` quartet.
///
/// ```
/// use gpu_sim::prelude::*;
/// use gpu_sim::device::LaunchSpec;
///
/// let gpu = Gpu::new(0, DeviceSpec::t4());
/// let cfg = LaunchConfig::for_elements(1024, 256);
/// let profile = KernelProfile::elementwise(1024, 1, 8);
/// let s = gpu.create_stream();
/// LaunchSpec::new("scale", cfg, profile)
///     .on(s)
///     .run(&gpu, || ())
///     .unwrap();
/// assert_eq!(gpu.kernels_launched(), 1);
/// ```
///
/// Terminals ([`LaunchSpec::run`], [`LaunchSpec::map`],
/// [`LaunchSpec::for_each_thread`]) validate the configuration, run the
/// body on the host, and submit one [`KernelCommand`] with the modeled
/// duration; eagerly ringing the doorbell keeps the timeline identical to
/// the old synchronous charge. During graph capture the command lands in
/// the graph instead.
#[derive(Debug, Clone, Copy)]
pub struct LaunchSpec<'a> {
    name: &'a str,
    cfg: LaunchConfig,
    profile: KernelProfile,
    stream: StreamId,
}

impl<'a> LaunchSpec<'a> {
    /// A launch of `name` with an explicit grid/block configuration,
    /// targeting the default stream.
    pub fn new(name: &'a str, cfg: LaunchConfig, profile: KernelProfile) -> Self {
        Self {
            name,
            cfg,
            profile,
            stream: StreamId::DEFAULT,
        }
    }

    /// Targets an explicit stream (kernels on different streams may
    /// overlap with transfers and each other).
    pub fn on(mut self, stream: StreamId) -> Self {
        self.stream = stream;
        self
    }

    /// Replaces the configuration with a one-thread-per-element grid over
    /// `n` elements (blocks of 256 threads).
    pub fn threads(mut self, n: u64) -> Self {
        self.cfg = LaunchConfig::for_elements(n, 256);
        self
    }

    /// The launch configuration this spec will submit.
    pub fn config(&self) -> &LaunchConfig {
        &self.cfg
    }

    /// Validates, runs `body` (the real computation), and submits the
    /// kernel command. `body` is expected to parallelize itself (e.g.
    /// rayon) if beneficial; the simulated duration comes from the
    /// profile, not wall time.
    pub fn run<R>(&self, gpu: &Gpu, body: impl FnOnce() -> R) -> Result<R, GpuError> {
        let (dur, occ) = gpu.kernel_duration_ns(&self.cfg, &self.profile)?;
        let out = body();
        gpu.submit(
            self.stream,
            Command::Kernel(KernelCommand {
                name: self.name.to_owned(),
                dur_ns: dur,
                bytes: self.profile.bytes,
                flops: self.profile.flops,
                occupancy: occ.occupancy,
                graph: false,
                pricing: Some(crate::kernel::KernelPricing {
                    cfg: self.cfg,
                    profile: self.profile,
                }),
            }),
        );
        gpu.doorbell()?;
        Ok(out)
    }

    /// CUDA's "one thread per output element" idiom, made safe: thread `i`
    /// computes `f(i, n)` into `out[i]`. The grid must cover `out.len()`.
    pub fn map<T, F>(&self, gpu: &Gpu, out: &mut DeviceBuffer<T>, f: F) -> Result<(), GpuError>
    where
        T: Copy + Send + Sync + 'static,
        F: Fn(usize, usize) -> T + Sync,
    {
        out.expect_device(gpu.ordinal)?;
        let n = out.len();
        if self.cfg.total_threads() < n as u64 {
            return Err(GpuError::ShapeMismatch {
                expected: n as u64,
                actual: self.cfg.total_threads(),
            });
        }
        self.run(gpu, || {
            out.host_view_mut()
                .par_iter_mut()
                .enumerate()
                .for_each(|(i, slot)| *slot = f(i, n));
        })
    }

    /// Runs `f(block_idx, thread_idx)` for every thread in the launch,
    /// parallelized over blocks (threads within a block run sequentially,
    /// which legalizes shared-memory-style per-block state in `f`'s
    /// captures only via synchronization). Intended for instructional
    /// kernels.
    pub fn for_each_thread<F>(&self, gpu: &Gpu, f: F) -> Result<(), GpuError>
    where
        F: Fn(Dim3, Dim3) + Sync,
    {
        let grid = self.cfg.grid;
        let block = self.cfg.block;
        self.run(gpu, || {
            (0..grid.count()).into_par_iter().for_each(|b| {
                let bidx = grid.delinearize(b).expect("in range");
                for t in 0..block.count() {
                    let tidx = block.delinearize(t).expect("in range");
                    f(bidx, tidx);
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::AccessPattern;

    fn gpu() -> Gpu {
        Gpu::new(0, DeviceSpec::t4())
    }

    #[test]
    fn htod_dtoh_roundtrip_preserves_data_and_charges_time() {
        let g = gpu();
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let t0 = g.now_ns();
        let buf = g.htod(&data).unwrap();
        let t1 = g.now_ns();
        assert!(t1 > t0, "transfer must cost simulated time");
        let back = g.dtoh(&buf).unwrap();
        assert_eq!(back, data);
        assert!(g.now_ns() > t1);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let g = gpu();
        let small = g.transfer_ns(1 << 10);
        let big = g.transfer_ns(1 << 30);
        assert!(big > 100 * small);
    }

    #[test]
    fn alloc_tracks_memory_and_drop_frees() {
        let g = gpu();
        assert_eq!(g.mem_used(), 0);
        let buf = g.alloc_zeroed::<f32>(1024).unwrap();
        assert_eq!(g.mem_used(), 4096);
        drop(buf);
        assert_eq!(g.mem_used(), 0);
    }

    #[test]
    fn oom_on_tiny_device() {
        let g = Gpu::new(0, DeviceSpec::test_tiny());
        // 1 MiB capacity; ask for 2 MiB of f32.
        let err = g.alloc_zeroed::<f32>(512 * 1024).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
    }

    #[test]
    fn launch_map_computes_correctly() {
        let g = gpu();
        let mut out = g.alloc_zeroed::<f32>(1000).unwrap();
        let cfg = LaunchConfig::for_elements(1000, 256);
        LaunchSpec::new("square", cfg, KernelProfile::elementwise(1000, 1, 8))
            .map(&g, &mut out, |i, _| (i as f32) * (i as f32))
            .unwrap();
        let host = g.dtoh(&out).unwrap();
        assert_eq!(host[7], 49.0);
        assert_eq!(host[999], 999.0 * 999.0);
    }

    #[test]
    fn launch_map_rejects_undersized_grid() {
        let g = gpu();
        let mut out = g.alloc_zeroed::<f32>(1000).unwrap();
        let cfg = LaunchConfig::new(Dim3::x(1), Dim3::x(256)); // only 256 threads
        let err = LaunchSpec::new("bad", cfg, KernelProfile::elementwise(1000, 1, 8))
            .map(&g, &mut out, |_, _| 0.0)
            .unwrap_err();
        assert!(matches!(err, GpuError::ShapeMismatch { .. }));
    }

    #[test]
    fn invalid_block_size_rejected() {
        let g = gpu();
        let cfg = LaunchConfig::new(Dim3::x(1), Dim3::x(2048));
        let err = LaunchSpec::new("k", cfg, KernelProfile::elementwise(10, 1, 4))
            .run(&g, || ())
            .unwrap_err();
        assert!(matches!(err, GpuError::InvalidLaunch { .. }));
    }

    #[test]
    fn zero_grid_rejected() {
        let g = gpu();
        let cfg = LaunchConfig::new(Dim3::x(0), Dim3::x(128));
        assert!(
            LaunchSpec::new("k", cfg, KernelProfile::elementwise(10, 1, 4))
                .run(&g, || ())
                .is_err()
        );
    }

    #[test]
    fn memory_bound_kernel_slower_with_worse_access_pattern() {
        let g = gpu();
        let cfg = LaunchConfig::for_elements(1 << 20, 256);
        let base = KernelProfile::elementwise(1 << 20, 1, 12);
        let (coal, _) = g.kernel_duration_ns(&cfg, &base).unwrap();
        let (strided, _) = g
            .kernel_duration_ns(&cfg, &base.with_access(AccessPattern::Strided))
            .unwrap();
        let (random, _) = g
            .kernel_duration_ns(&cfg, &base.with_access(AccessPattern::Random))
            .unwrap();
        assert!(strided > 2 * coal);
        assert!(random > 2 * strided);
    }

    #[test]
    fn compute_bound_kernel_ignores_access_pattern() {
        let g = gpu();
        // Huge FLOPs, tiny bytes: the compute roof dominates either way.
        let cfg = LaunchConfig::for_elements(1 << 16, 256);
        let p = KernelProfile {
            flops: 1 << 40,
            bytes: 1 << 10,
            access: AccessPattern::Coalesced,
            registers_per_thread: 32,
        };
        let (a, _) = g.kernel_duration_ns(&cfg, &p).unwrap();
        let (b, _) = g
            .kernel_duration_ns(&cfg, &p.with_access(AccessPattern::Random))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn timeline_is_deterministic() {
        let run = || {
            let g = gpu();
            let mut out = g.alloc_zeroed::<f32>(4096).unwrap();
            let cfg = LaunchConfig::for_elements(4096, 128);
            for _ in 0..5 {
                LaunchSpec::new("k", cfg, KernelProfile::elementwise(4096, 2, 8))
                    .map(&g, &mut out, |i, _| i as f32)
                    .unwrap();
            }
            g.now_ns()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn launch_spec_entry_points_share_one_submission_path() {
        // The four LaunchSpec entry points (run / on+run / map /
        // for_each_thread) must price and charge identically: one kernel
        // command each through the same submission path, deterministic
        // across repeated runs, with map results visible on the host.
        let cfg = LaunchConfig::for_elements(1024, 256);
        let profile = KernelProfile::elementwise(1024, 2, 8);
        let run = || {
            let g = gpu();
            let s = g.create_stream();
            let mut out = g.alloc_zeroed::<f32>(1024).unwrap();
            LaunchSpec::new("a", cfg, profile).run(&g, || ()).unwrap();
            LaunchSpec::new("b", cfg, profile)
                .on(s)
                .run(&g, || ())
                .unwrap();
            LaunchSpec::new("c", cfg, profile)
                .map(&g, &mut out, |i, _| i as f32)
                .unwrap();
            LaunchSpec::new("d", cfg, profile)
                .for_each_thread(&g, |_, _| ())
                .unwrap();
            g.synchronize();
            (g.now_ns(), g.kernels_launched(), g.dtoh(&out).unwrap())
        };
        let (now, launches, out) = run();
        assert_eq!(launches, 4, "one launch per entry point");
        assert_eq!(out[17], 17.0, "map wrote through to host");
        // Every entry point priced via kernel_duration_ns: the default
        // stream carries a/c/d, the side stream only b, and the device
        // clock covers both.
        let g = gpu();
        let (dur, _) = g.kernel_duration_ns(&cfg, &profile).unwrap();
        assert_eq!(now, 3 * dur, "default stream serializes a, c, d");
        assert_eq!(run(), (now, launches, out), "deterministic timeline");
    }

    #[test]
    fn events_recorded_in_order_with_kernel_metadata() {
        let g = gpu();
        let data = vec![0f32; 256];
        let buf = g.htod(&data).unwrap();
        let mut out = g.alloc_zeroed::<f32>(256).unwrap();
        let cfg = LaunchConfig::for_elements(256, 128);
        LaunchSpec::new("copy", cfg, KernelProfile::elementwise(256, 0, 8))
            .map(&g, &mut out, |i, _| buf.host_view()[i])
            .unwrap();
        g.synchronize();
        let evs = g.recorder().snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::MemcpyH2D);
        assert_eq!(evs[1].kind, EventKind::Kernel);
        assert_eq!(evs[1].name, "copy");
        assert!(evs[1].start_ns >= evs[0].end_ns());
        assert_eq!(evs[2].kind, EventKind::Sync);
        assert_eq!(g.kernels_launched(), 1);
    }

    #[test]
    fn launch_threads_visits_every_thread_once() {
        use std::sync::atomic::AtomicU32;
        let g = gpu();
        let cfg = LaunchConfig::new(Dim3::xy(4, 2), Dim3::x(32));
        let hits: Vec<AtomicU32> = (0..256).map(|_| AtomicU32::new(0)).collect();
        LaunchSpec::new("count", cfg, KernelProfile::elementwise(256, 1, 4))
            .for_each_thread(&g, |b, t| {
                let bid = Dim3::xy(4, 2).linearize(b).unwrap() as usize;
                let tid = bid * 32 + t.x as usize;
                hits[tid].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn range_wraps_inner_events() {
        let g = gpu();
        g.range("step", || {
            let _ = g.htod(&vec![0u8; 1024]).unwrap();
        });
        let evs = g.recorder().snapshot();
        let range = evs.iter().find(|e| e.kind == EventKind::Range).unwrap();
        let h2d = evs.iter().find(|e| e.kind == EventKind::MemcpyH2D).unwrap();
        assert!(range.start_ns <= h2d.start_ns);
        assert!(range.end_ns() >= h2d.end_ns());
    }

    #[test]
    fn utilization_between_zero_and_one() {
        let g = gpu();
        assert_eq!(g.utilization(), 0.0);
        let _ = g.htod(&vec![0f32; 1 << 16]).unwrap();
        let u = g.utilization();
        assert!(u > 0.0 && u <= 1.0, "u = {u}");
    }

    #[test]
    fn dtod_copies_and_charges_bandwidth_time() {
        let g = gpu();
        let a = g.htod(&vec![5f32; 512]).unwrap();
        let t0 = g.now_ns();
        let b = g.dtod(&a).unwrap();
        assert!(g.now_ns() > t0);
        assert_eq!(b.host_view(), a.host_view());
        assert_eq!(g.mem_used(), 2 * 512 * 4);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let g = gpu();
        g.advance_to(1000);
        assert_eq!(g.now_ns(), 1000);
        g.advance_to(500); // never goes backwards
        assert_eq!(g.now_ns(), 1000);
    }

    #[test]
    fn streams_overlap_copy_and_compute() {
        // Serial: copy then kernel. Streamed: copy on s1 while kernel on s2.
        let serial = {
            let g = gpu();
            let _ = g.htod(&vec![0u8; 8 << 20]).unwrap();
            LaunchSpec::new(
                "k",
                LaunchConfig::for_elements(1 << 20, 256),
                KernelProfile::elementwise(1 << 20, 64, 8),
            )
            .run(&g, || ())
            .unwrap();
            g.now_ns()
        };
        let overlapped = {
            let g = gpu();
            let s1 = g.create_stream();
            let s2 = g.create_stream();
            let _ = g.htod_on(s1, &vec![0u8; 8 << 20]).unwrap();
            LaunchSpec::new(
                "k",
                LaunchConfig::for_elements(1 << 20, 256),
                KernelProfile::elementwise(1 << 20, 64, 8),
            )
            .on(s2)
            .run(&g, || ())
            .unwrap();
            g.sync_streams()
        };
        assert!(
            overlapped < serial,
            "overlap {overlapped} should beat serial {serial}"
        );
        // The overlapped makespan is the max of the two durations, not the sum.
        assert!(overlapped as f64 > 0.45 * serial as f64);
    }

    #[test]
    fn same_stream_operations_serialize() {
        let g = gpu();
        let s = g.create_stream();
        let cfg = LaunchConfig::for_elements(1 << 16, 256);
        let p = KernelProfile::elementwise(1 << 16, 4, 8);
        LaunchSpec::new("a", cfg, p).on(s).run(&g, || ()).unwrap();
        LaunchSpec::new("b", cfg, p).on(s).run(&g, || ()).unwrap();
        let evs = g.recorder().snapshot();
        assert_eq!(evs.len(), 2);
        assert!(evs[1].start_ns >= evs[0].end_ns(), "in-stream ordering");
        assert_eq!(evs[0].stream, s.ordinal());
    }

    #[test]
    fn sync_streams_aligns_everything() {
        let g = gpu();
        let s1 = g.create_stream();
        let _ = g.htod_on(s1, &vec![0u8; 1 << 20]).unwrap();
        let t = g.sync_streams();
        assert_eq!(t, g.now_ns());
        // A default-stream op after the sync starts at or after t.
        let _ = g.htod(&vec![0u8; 1024]).unwrap();
        let last = g.recorder().snapshot().into_iter().last().unwrap();
        assert!(last.start_ns >= t);
    }

    #[test]
    fn stream_events_carry_their_ordinal() {
        let g = gpu();
        let s1 = g.create_stream();
        let s2 = g.create_stream();
        assert_ne!(s1, s2);
        let _ = g.htod_on(s2, &[0u8; 64]).unwrap();
        let ev = g.recorder().snapshot().into_iter().next().unwrap();
        assert_eq!(ev.stream, s2.ordinal());
        assert_eq!(StreamId::DEFAULT.ordinal(), 0);
    }

    #[test]
    fn two_stream_makespan_never_exceeds_serial_sum() {
        // Makespan of N ops spread over two streams is bounded above by the
        // serial sum of their durations (and below by the longest op).
        let durations: Vec<u64> = {
            let g = gpu();
            let sizes = [1usize << 18, 1 << 20, 1 << 16, 1 << 19];
            sizes
                .iter()
                .map(|&n| {
                    let t0 = g.now_ns();
                    let _ = g.htod(&vec![0u8; n]).unwrap();
                    g.now_ns() - t0
                })
                .collect()
        };
        let serial_sum: u64 = durations.iter().sum();
        let longest = *durations.iter().max().unwrap();
        let overlapped = {
            let g = gpu();
            let s1 = g.create_stream();
            let s2 = g.create_stream();
            for (i, &n) in [1usize << 18, 1 << 20, 1 << 16, 1 << 19].iter().enumerate() {
                let s = if i % 2 == 0 { s1 } else { s2 };
                let _ = g.htod_on(s, &vec![0u8; n]).unwrap();
            }
            g.sync_streams()
        };
        assert!(overlapped <= serial_sum, "{overlapped} > {serial_sum}");
        assert!(overlapped >= longest);
    }

    #[test]
    fn per_stream_events_are_monotonic() {
        let g = gpu();
        let s = g.create_stream();
        let cfg = LaunchConfig::for_elements(1 << 14, 256);
        let p = KernelProfile::elementwise(1 << 14, 2, 8);
        let mut last = g.record_event(s).timestamp_ns();
        for _ in 0..4 {
            LaunchSpec::new("k", cfg, p).on(s).run(&g, || ()).unwrap();
            let t = g.record_event(s).timestamp_ns();
            assert!(t > last, "stream clock must advance per launch");
            last = t;
        }
    }

    #[test]
    fn stream_wait_orders_consumer_after_producer() {
        let g = gpu();
        let producer = g.create_stream();
        let consumer = g.create_stream();
        // Producer: a sizeable H2D copy. Record an event after it.
        let _ = g.htod_on(producer, &vec![0u8; 4 << 20]).unwrap();
        let ev = g.record_event(producer);
        assert!(ev.timestamp_ns() > 0);
        assert_eq!(ev.stream_ordinal(), producer.ordinal());
        // Consumer waits on the event, then launches.
        g.stream_wait(consumer, &ev);
        LaunchSpec::new(
            "use",
            LaunchConfig::for_elements(1 << 10, 256),
            KernelProfile::elementwise(1 << 10, 1, 8),
        )
        .on(consumer)
        .run(&g, || ())
        .unwrap();
        let evs = g.recorder().snapshot();
        let kernel = evs.iter().find(|e| e.kind == EventKind::Kernel).unwrap();
        assert!(
            kernel.start_ns >= ev.timestamp_ns(),
            "consumer kernel must start after the producer event"
        );
        // Without the wait, an identical kernel on a fresh stream starts at 0.
        let free = g.create_stream();
        LaunchSpec::new(
            "unordered",
            LaunchConfig::for_elements(1 << 10, 256),
            KernelProfile::elementwise(1 << 10, 1, 8),
        )
        .on(free)
        .run(&g, || ())
        .unwrap();
        let unordered = g
            .recorder()
            .snapshot()
            .into_iter()
            .find(|e| e.name == "unordered")
            .unwrap();
        assert!(unordered.start_ns < ev.timestamp_ns());
    }

    #[test]
    fn wrong_device_buffer_rejected() {
        let g0 = Gpu::new(0, DeviceSpec::t4());
        let g1 = Gpu::new(1, DeviceSpec::t4());
        let buf = g0.htod(&[1f32; 16]).unwrap();
        assert!(matches!(g1.dtoh(&buf), Err(GpuError::WrongDevice { .. })));
    }
}
