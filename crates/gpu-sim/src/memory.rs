//! Device memory: typed buffers and capacity accounting.
//!
//! A [`DeviceBuffer`] models a `cudaMalloc` allocation. The backing data
//! lives in host RAM (the simulator runs real computations) but the buffer
//! is *logically* device-resident: it counts against the device's finite
//! global-memory capacity, it can only be filled/read through transfer APIs
//! that charge simulated PCIe time, and it remembers which device owns it so
//! cross-device misuse is caught — the same discipline CUDA enforces.

use crate::error::GpuError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared capacity ledger for one device's global memory.
#[derive(Debug)]
pub struct MemoryAccounting {
    capacity_bytes: u64,
    used_bytes: AtomicU64,
}

impl MemoryAccounting {
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            used_bytes: AtomicU64::new(0),
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn free(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used())
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Attempts to reserve `bytes`, failing atomically when capacity would
    /// be exceeded (concurrent allocators cannot jointly overshoot).
    pub fn reserve(&self, bytes: u64, device: u32) -> Result<(), GpuError> {
        let mut cur = self.used_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > self.capacity_bytes {
                return Err(GpuError::OutOfMemory {
                    device,
                    requested_bytes: bytes,
                    free_bytes: self.capacity_bytes - cur,
                });
            }
            match self.used_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases a prior reservation.
    pub fn release(&self, bytes: u64) {
        self.used_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// A typed allocation in simulated device memory.
///
/// Dropping the buffer frees its reservation (RAII, like `cudaFree`).
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    device: u32,
    bytes: u64,
    accounting: Arc<MemoryAccounting>,
}

impl<T: Copy + Send + Sync + 'static> DeviceBuffer<T> {
    pub(crate) fn from_vec(
        data: Vec<T>,
        device: u32,
        accounting: Arc<MemoryAccounting>,
    ) -> Result<Self, GpuError> {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        accounting.reserve(bytes, device)?;
        Ok(Self {
            data,
            device,
            bytes,
            accounting,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// Ordinal of the owning device.
    pub fn device(&self) -> u32 {
        self.device
    }

    /// Read access to the backing data for kernel bodies.
    ///
    /// Semantically this is "device-side" access: kernels running on the
    /// owning device may read it. Host code should use
    /// [`crate::device::Gpu::dtoh`], which charges transfer time.
    pub fn host_view(&self) -> &[T] {
        &self.data
    }

    /// Mutable access for kernel bodies writing the buffer.
    pub fn host_view_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the buffer, returning the raw data without charging a
    /// transfer (used internally by device-to-device moves).
    pub(crate) fn into_vec(mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
        // Drop still runs and releases the reservation.
    }

    pub(crate) fn expect_device(&self, device: u32) -> Result<(), GpuError> {
        if self.device != device {
            Err(GpuError::WrongDevice {
                expected: self.device,
                actual: device,
            })
        } else {
            Ok(())
        }
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.accounting.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(cap: u64) -> Arc<MemoryAccounting> {
        Arc::new(MemoryAccounting::new(cap))
    }

    #[test]
    fn reserve_and_release_balance() {
        let a = acct(1000);
        a.reserve(400, 0).unwrap();
        assert_eq!(a.used(), 400);
        assert_eq!(a.free(), 600);
        a.release(400);
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn over_capacity_reservation_fails_with_free_bytes() {
        let a = acct(1000);
        a.reserve(900, 3).unwrap();
        let err = a.reserve(200, 3).unwrap_err();
        match err {
            GpuError::OutOfMemory {
                device,
                requested_bytes,
                free_bytes,
            } => {
                assert_eq!(device, 3);
                assert_eq!(requested_bytes, 200);
                assert_eq!(free_bytes, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn buffer_drop_frees_reservation() {
        let a = acct(4096);
        {
            let buf = DeviceBuffer::from_vec(vec![0f32; 256], 0, Arc::clone(&a)).unwrap();
            assert_eq!(buf.size_bytes(), 1024);
            assert_eq!(a.used(), 1024);
        }
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn buffer_oom_when_data_too_large() {
        let a = acct(100);
        let err = DeviceBuffer::from_vec(vec![0u8; 200], 0, a).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
    }

    #[test]
    fn expect_device_catches_cross_device_use() {
        let a = acct(4096);
        let buf = DeviceBuffer::from_vec(vec![1i32; 4], 2, a).unwrap();
        assert!(buf.expect_device(2).is_ok());
        assert_eq!(
            buf.expect_device(0).unwrap_err(),
            GpuError::WrongDevice {
                expected: 2,
                actual: 0
            }
        );
    }

    #[test]
    fn concurrent_reservations_never_overshoot() {
        let a = acct(10_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if a.reserve(7, 0).is_ok() {
                            a.release(7);
                        }
                    }
                });
            }
        });
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn views_expose_data() {
        let a = acct(4096);
        let mut buf = DeviceBuffer::from_vec(vec![1.0f32, 2.0, 3.0], 0, a).unwrap();
        assert_eq!(buf.host_view(), &[1.0, 2.0, 3.0]);
        buf.host_view_mut()[1] = 9.0;
        assert_eq!(buf.host_view()[1], 9.0);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
    }
}
