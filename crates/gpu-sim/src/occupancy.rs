//! CUDA-style occupancy calculation.
//!
//! Occupancy — the ratio of resident warps to the SM's maximum — is the
//! central quantity in the course's week-3/4 optimization labs. This module
//! reimplements the classic occupancy calculator: resident blocks per SM are
//! limited by the block slots, the thread slots, the register file, and
//! shared memory; occupancy follows from the binding constraint.

use crate::arch::DeviceSpec;
use crate::kernel::LaunchConfig;
use serde::{Deserialize, Serialize};

/// Result of an occupancy query for one launch on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyResult {
    /// Blocks that can be resident on one SM simultaneously.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm`, in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource bound residency.
    pub limiter: OccupancyLimiter,
    /// Number of launch "waves": ceil(grid_blocks / (blocks_per_sm × SMs)).
    pub waves: u32,
}

/// The resource that limits how many blocks fit on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    BlockSlots,
    ThreadSlots,
    Registers,
    SharedMemory,
}

/// Computes occupancy of `cfg` (with `registers_per_thread`) on `spec`.
///
/// Returns `None` when the block alone violates a hard device limit
/// (too many threads per block, or shared memory larger than an SM's).
pub fn occupancy(
    spec: &DeviceSpec,
    cfg: &LaunchConfig,
    registers_per_thread: u32,
) -> Option<OccupancyResult> {
    let threads_per_block = cfg.threads_per_block();
    if threads_per_block == 0 || threads_per_block > spec.max_threads_per_block as u64 {
        return None;
    }
    if cfg.shared_mem_bytes > spec.shared_mem_per_sm {
        return None;
    }
    let threads_per_block = threads_per_block as u32;
    // Warp allocation granularity: blocks occupy whole warps.
    let warps_per_block = threads_per_block.div_ceil(spec.warp_size);

    let by_block_slots = spec.max_blocks_per_sm;
    let by_thread_slots = spec.max_threads_per_sm / (warps_per_block * spec.warp_size);
    let regs_per_block = registers_per_thread.max(1) * threads_per_block;
    let by_registers = spec.registers_per_sm / regs_per_block.max(1);
    let by_shared = spec
        .shared_mem_per_sm
        .checked_div(cfg.shared_mem_bytes)
        .unwrap_or(u32::MAX);

    let (blocks_per_sm, limiter) = [
        (by_block_slots, OccupancyLimiter::BlockSlots),
        (by_thread_slots, OccupancyLimiter::ThreadSlots),
        (by_registers, OccupancyLimiter::Registers),
        (by_shared, OccupancyLimiter::SharedMemory),
    ]
    .into_iter()
    .min_by_key(|(b, _)| *b)
    .expect("non-empty");

    if blocks_per_sm == 0 {
        // Registers alone cannot fit even one block.
        return None;
    }

    let warps_per_sm = (blocks_per_sm * warps_per_block).min(spec.max_warps_per_sm());
    let occupancy = warps_per_sm as f64 / spec.max_warps_per_sm() as f64;
    let grid_blocks = cfg.grid.count();
    let concurrent = blocks_per_sm as u64 * spec.sm_count as u64;
    let waves = grid_blocks.div_ceil(concurrent).max(1) as u32;

    Some(OccupancyResult {
        blocks_per_sm,
        warps_per_sm,
        occupancy,
        limiter,
        waves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim3;

    fn t4() -> DeviceSpec {
        DeviceSpec::t4()
    }

    #[test]
    fn full_occupancy_with_moderate_blocks() {
        // T4: 1024 threads/SM max. 256-thread blocks, 32 regs/thread:
        // thread slots allow 4 blocks; registers allow 65536/(32*256)=8;
        // block slots allow 16 → thread-slot limited, 4 blocks = 32 warps = 100%.
        let cfg = LaunchConfig::new(Dim3::x(1000), Dim3::x(256));
        let r = occupancy(&t4(), &cfg, 32).unwrap();
        assert_eq!(r.blocks_per_sm, 4);
        assert_eq!(r.limiter, OccupancyLimiter::ThreadSlots);
        assert!((r.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_pressure_reduces_occupancy() {
        // 255 regs/thread × 256 threads = 65280 regs/block → 1 block/SM.
        let cfg = LaunchConfig::new(Dim3::x(100), Dim3::x(256));
        let r = occupancy(&t4(), &cfg, 255).unwrap();
        assert_eq!(r.blocks_per_sm, 1);
        assert_eq!(r.limiter, OccupancyLimiter::Registers);
        assert!(r.occupancy < 0.5);
    }

    #[test]
    fn shared_memory_limits_residency() {
        // 33 KiB of shared memory per block on a 64 KiB SM → 1 block.
        let cfg = LaunchConfig::new(Dim3::x(100), Dim3::x(128)).with_shared_mem(33 * 1024);
        let r = occupancy(&t4(), &cfg, 32).unwrap();
        assert_eq!(r.blocks_per_sm, 1);
        assert_eq!(r.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn tiny_blocks_hit_block_slot_limit() {
        // 32-thread blocks: thread slots would allow 32, block slots cap at 16.
        let cfg = LaunchConfig::new(Dim3::x(10_000), Dim3::x(32));
        let r = occupancy(&t4(), &cfg, 16).unwrap();
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.limiter, OccupancyLimiter::BlockSlots);
        assert!((r.occupancy - 0.5).abs() < 1e-12); // 16 warps of 32 max
    }

    #[test]
    fn oversize_block_rejected() {
        let cfg = LaunchConfig::new(Dim3::x(1), Dim3::x(2048));
        assert!(occupancy(&t4(), &cfg, 32).is_none());
    }

    #[test]
    fn oversize_shared_mem_rejected() {
        let cfg = LaunchConfig::new(Dim3::x(1), Dim3::x(128)).with_shared_mem(65 * 1024);
        assert!(occupancy(&t4(), &cfg, 32).is_none());
    }

    #[test]
    fn impossible_register_demand_rejected() {
        // 1024 threads × 255 regs > 65536 register file → cannot place a block.
        let cfg = LaunchConfig::new(Dim3::x(1), Dim3::x(1024));
        assert!(occupancy(&t4(), &cfg, 255).is_none());
    }

    #[test]
    fn waves_reflect_grid_size() {
        // 4 blocks/SM × 40 SMs = 160 concurrent blocks on T4.
        let cfg = LaunchConfig::new(Dim3::x(320), Dim3::x(256));
        let r = occupancy(&t4(), &cfg, 32).unwrap();
        assert_eq!(r.waves, 2);
        let cfg_small = LaunchConfig::new(Dim3::x(10), Dim3::x(256));
        assert_eq!(occupancy(&t4(), &cfg_small, 32).unwrap().waves, 1);
    }

    #[test]
    fn partial_warp_blocks_round_up() {
        // 33-thread block occupies 2 warps.
        let cfg = LaunchConfig::new(Dim3::x(1), Dim3::x(33));
        let r = occupancy(&t4(), &cfg, 16).unwrap();
        // thread slots: 1024/(2*32)=16 blocks; block slots 16 → 16 blocks, 32 warps.
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.warps_per_sm, 32);
    }
}
