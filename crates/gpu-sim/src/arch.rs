//! Static GPU architecture descriptions.
//!
//! A [`DeviceSpec`] captures everything the cost model needs to turn a kernel
//! launch into a simulated duration: SM count and clocks for the compute
//! roof, memory bandwidth for the bandwidth roof, and per-SM resource limits
//! for the occupancy calculation. Presets model the GPUs found in the AWS
//! instance families the paper's course used (`g4dn` → T4, `g5` → A10G,
//! `p3` → V100).

use serde::{Deserialize, Serialize};

/// Description of a device's global-memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Global memory capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak global-memory bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed latency charged per memory operation batch, in nanoseconds.
    pub latency_ns: f64,
}

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA T4 (sim)"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// FP32 cores (lanes) per SM.
    pub cores_per_sm: u32,
    /// SIMT width; always 32 on NVIDIA hardware.
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads in a single block.
    pub max_threads_per_block: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Register file size per SM (32-bit registers).
    pub registers_per_sm: u32,
    /// Global memory subsystem.
    pub memory: MemorySpec,
    /// Host↔device (PCIe) bandwidth in bytes per second.
    pub pcie_bandwidth_bytes_per_sec: f64,
    /// Fixed per-transfer latency over PCIe, nanoseconds.
    pub pcie_latency_ns: f64,
    /// Fixed kernel-launch overhead, nanoseconds.
    pub launch_overhead_ns: f64,
}

impl DeviceSpec {
    /// Peak FP32 throughput in FLOP/s (2 FLOPs per core-cycle via FMA).
    pub fn peak_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9 * 2.0
    }

    /// Maximum number of concurrently resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// NVIDIA T4 (AWS `g4dn` family) — the paper's single-GPU workhorse.
    pub fn t4() -> Self {
        Self {
            name: "NVIDIA T4 (sim)".to_owned(),
            sm_count: 40,
            cores_per_sm: 64,
            warp_size: 32,
            clock_ghz: 1.59,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 64 * 1024,
            registers_per_sm: 65536,
            memory: MemorySpec {
                capacity_bytes: 16 * (1 << 30),
                bandwidth_bytes_per_sec: 320e9,
                latency_ns: 400.0,
            },
            pcie_bandwidth_bytes_per_sec: 12e9,
            pcie_latency_ns: 8_000.0,
            launch_overhead_ns: 4_000.0,
        }
    }

    /// NVIDIA A10G (AWS `g5` family).
    pub fn a10g() -> Self {
        Self {
            name: "NVIDIA A10G (sim)".to_owned(),
            sm_count: 80,
            cores_per_sm: 128,
            warp_size: 32,
            clock_ghz: 1.71,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 100 * 1024,
            registers_per_sm: 65536,
            memory: MemorySpec {
                capacity_bytes: 24 * (1 << 30),
                bandwidth_bytes_per_sec: 600e9,
                latency_ns: 350.0,
            },
            pcie_bandwidth_bytes_per_sec: 14e9,
            pcie_latency_ns: 7_000.0,
            launch_overhead_ns: 3_500.0,
        }
    }

    /// NVIDIA V100 (AWS `p3` family) — used for multi-GPU labs.
    pub fn v100() -> Self {
        Self {
            name: "NVIDIA V100 (sim)".to_owned(),
            sm_count: 80,
            cores_per_sm: 64,
            warp_size: 32,
            clock_ghz: 1.53,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 96 * 1024,
            registers_per_sm: 65536,
            memory: MemorySpec {
                capacity_bytes: 16 * (1 << 30),
                bandwidth_bytes_per_sec: 900e9,
                latency_ns: 300.0,
            },
            pcie_bandwidth_bytes_per_sec: 12e9,
            pcie_latency_ns: 8_000.0,
            launch_overhead_ns: 3_000.0,
        }
    }

    /// A deliberately small device for fast unit tests: tiny memory so
    /// out-of-memory paths are cheap to exercise.
    pub fn test_tiny() -> Self {
        Self {
            name: "TestTiny (sim)".to_owned(),
            sm_count: 2,
            cores_per_sm: 32,
            warp_size: 32,
            clock_ghz: 1.0,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 256,
            shared_mem_per_sm: 16 * 1024,
            registers_per_sm: 32768,
            memory: MemorySpec {
                capacity_bytes: 1 << 20, // 1 MiB
                bandwidth_bytes_per_sec: 10e9,
                latency_ns: 500.0,
            },
            pcie_bandwidth_bytes_per_sec: 1e9,
            pcie_latency_ns: 10_000.0,
            launch_overhead_ns: 5_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_peak_flops_matches_datasheet_ballpark() {
        // T4 datasheet: ~8.1 TFLOPS FP32.
        let flops = DeviceSpec::t4().peak_flops();
        assert!(flops > 7.5e12 && flops < 8.5e12, "got {flops}");
    }

    #[test]
    fn v100_peak_flops_matches_datasheet_ballpark() {
        // V100 datasheet: ~15.7 TFLOPS FP32.
        let flops = DeviceSpec::v100().peak_flops();
        assert!(flops > 14.5e12 && flops < 16.5e12, "got {flops}");
    }

    #[test]
    fn max_warps_per_sm() {
        assert_eq!(DeviceSpec::t4().max_warps_per_sm(), 32);
        assert_eq!(DeviceSpec::v100().max_warps_per_sm(), 64);
    }

    #[test]
    fn tiny_spec_is_small_enough_for_oom_tests() {
        let spec = DeviceSpec::test_tiny();
        assert!(spec.memory.capacity_bytes <= 1 << 20);
        assert_eq!(spec.clone(), spec);
    }
}
