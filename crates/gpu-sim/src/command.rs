//! The command-stream runtime: asynchronous submission, a driver-side
//! command processor, and CUDA-graph-style capture/replay.
//!
//! The historical `Gpu` surface charged every operation synchronously:
//! `launch` advanced the stream clock and recorded a trace event before it
//! returned. This module restructures submission the way real drivers do:
//!
//! 1. The host encodes work as typed [`Command`]s ([`KernelCommand`],
//!    [`CopyCommand`], [`Command::EventRecord`]/[`Command::EventWait`],
//!    [`CollectiveCommand`]) and pushes them onto per-stream queues with
//!    [`Gpu::submit`]. Submission is cheap and charges nothing.
//! 2. Ringing the [`Gpu::doorbell`] hands the queues to the command
//!    processor, which retires commands in stream order, resolves event
//!    edges across streams, advances the simulated clock, and posts a
//!    [`Completion`] per retired command to the stream's completion queue.
//! 3. The classic entry points (`LaunchSpec::run`, `htod`, `record_event`,
//!    ...) are now thin wrappers that submit one command and ring the
//!    doorbell immediately, which makes their timelines bit-identical to
//!    the old synchronous charges.
//!
//! On top of the queues sits graph capture: between
//! [`Gpu::begin_capture`] and [`Gpu::end_capture`] submissions are
//! diverted into a [`Graph`] instead of being retired. `end_capture`
//! validates the stream/event edges once, and [`Graph::replay`] re-issues
//! the whole DAG per epoch for the cost of a single launch — the
//! CUDA-graph amortization the profiling labs motivate.
//!
//! Costs are resolved *at submission time* (a kernel's roofline duration,
//! a copy's PCIe time), so validation errors surface exactly where the old
//! synchronous API raised them; retirement only does clock arithmetic.

use crate::device::{Gpu, StreamId};
use crate::error::GpuError;
use crate::event::{EventKind, TraceEvent};
use std::collections::{HashMap, VecDeque};

/// Identifier of a driver-side event slot used by
/// [`Command::EventRecord`]/[`Command::EventWait`] edges.
///
/// Allocated with [`Gpu::create_cmd_event`]; resolves to a timestamp when
/// the recording command retires (query with [`Gpu::cmd_event_ns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CmdEvent(pub(crate) u32);

impl CmdEvent {
    /// Slot index in the processor's event table.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// A kernel execution with its cost already resolved at submission.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCommand {
    /// Kernel name as it appears on the timeline.
    pub name: String,
    /// Modeled duration (roofline + launch overhead), from
    /// [`Gpu::kernel_duration_ns`].
    pub dur_ns: u64,
    /// Bytes touched (for the trace event).
    pub bytes: u64,
    /// FLOPs performed (for the trace event).
    pub flops: u64,
    /// Achieved occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// True when re-issued by [`Graph::replay`]: the node carries no
    /// per-launch overhead and does not count as a launch.
    pub graph: bool,
    /// Pricing inputs of the launch, carried so a recorded trace can
    /// re-derive `dur_ns` on a what-if device
    /// ([`crate::trace::replay`]). `None` for synthetic kernels (graph
    /// launches) and hand-built commands, which replay at `dur_ns`.
    pub pricing: Option<crate::kernel::KernelPricing>,
}

/// A host↔device or device-local copy with its cost already resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyCommand {
    /// Transfer tag on the timeline (`"htod"`, `"dtoh"`, `"dtod"`).
    pub name: String,
    /// Direction; expected to be one of the transfer kinds.
    pub kind: EventKind,
    /// Modeled transfer duration.
    pub dur_ns: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// True when re-issued by [`Graph::replay`].
    pub graph: bool,
}

/// One lockstep step of a cluster collective (ring all-reduce), placed on
/// a comm stream no earlier than the collective's global start.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveCommand {
    /// Step name on the timeline (e.g. `"grads/rs0"`).
    pub name: String,
    /// Duration of this step.
    pub dur_ns: u64,
    /// Bytes this step moves (one chunk).
    pub bytes: u64,
    /// Global lower bound on the step's start (the collective cannot begin
    /// before every participant is ready).
    pub not_before_ns: u64,
}

/// A typed command on a stream queue.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Execute a kernel.
    Kernel(KernelCommand),
    /// Move data.
    Copy(CopyCommand),
    /// Resolve an event slot to "now" on the owning stream
    /// (`cudaEventRecord`).
    EventRecord {
        /// Slot to resolve.
        event: CmdEvent,
    },
    /// Hold the stream until an event slot resolves
    /// (`cudaStreamWaitEvent`).
    EventWait {
        /// Slot to wait for.
        event: CmdEvent,
    },
    /// One step of a cluster collective.
    Collective(CollectiveCommand),
}

/// Completion entry posted when a command retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Submission sequence number (global, monotonically increasing).
    pub seq: u64,
    /// Stream the command retired on.
    pub stream: u32,
    /// Simulated start of the command (event ops: the resolved timestamp).
    pub start_ns: u64,
    /// Simulated end of the command.
    pub end_ns: u64,
}

/// In-flight capture of a command DAG.
#[derive(Debug)]
struct CaptureState {
    name: String,
    nodes: Vec<(u32, Command)>,
}

/// Driver-side state: per-stream queues, the event table, completion
/// queues, and any in-flight capture. Owned by [`Gpu`] behind a mutex.
#[derive(Debug, Default)]
pub(crate) struct CommandProcessor {
    /// Pending commands per stream ordinal; heads retire first.
    queues: Vec<VecDeque<(u64, Command)>>,
    /// Completions per stream ordinal, in retirement order.
    completions: Vec<VecDeque<Completion>>,
    /// Event table: `None` until the recording command retires.
    events: Vec<Option<u64>>,
    next_seq: u64,
    capture: Option<CaptureState>,
    /// Attached trace sink: every non-capture submission is mirrored into
    /// it (see [`crate::trace`]).
    sink: Option<crate::trace::TraceSink>,
}

impl CommandProcessor {
    fn ensure_stream(&mut self, ordinal: u32) {
        let need = ordinal as usize + 1;
        if self.queues.len() < need {
            self.queues.resize_with(need, VecDeque::new);
            self.completions.resize_with(need, VecDeque::new);
        }
    }

    fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

impl Gpu {
    /// Pushes a command onto `stream`'s queue (or the active capture)
    /// without ringing the doorbell. Returns the submission sequence
    /// number. Nothing is charged until [`Gpu::doorbell`].
    pub fn submit(&self, stream: StreamId, cmd: Command) -> u64 {
        let mut cp = self.cmd.lock();
        let seq = cp.next_seq;
        cp.next_seq += 1;
        if let Some(cap) = cp.capture.as_mut() {
            cap.nodes.push((stream.ordinal(), cmd));
        } else {
            if let Some(sink) = &cp.sink {
                sink.record_submission(self.ordinal(), stream.ordinal(), seq, &cmd);
            }
            cp.ensure_stream(stream.ordinal());
            cp.queues[stream.ordinal() as usize].push_back((seq, cmd));
        }
        seq
    }

    /// Rings the doorbell until the device is quiescent and drains every
    /// stream's completion queue, concatenated in stream-ordinal order —
    /// the doorbell + poll loop callers used to open-code.
    pub fn sync(&self) -> Result<Vec<Completion>, GpuError> {
        self.doorbell()?;
        let mut cp = self.cmd.lock();
        let mut out = Vec::new();
        for q in cp.completions.iter_mut() {
            out.extend(q.drain(..));
        }
        Ok(out)
    }

    /// Attaches a trace sink: every subsequent (non-capture) submission on
    /// this device is mirrored into it. Replaces any previous sink.
    pub fn attach_trace_sink(&self, sink: crate::trace::TraceSink) {
        self.cmd.lock().sink = Some(sink);
    }

    /// Detaches and returns the active trace sink, if any.
    pub fn detach_trace_sink(&self) -> Option<crate::trace::TraceSink> {
        self.cmd.lock().sink.take()
    }

    /// A clone of the active trace sink, if any.
    pub(crate) fn trace_sink(&self) -> Option<crate::trace::TraceSink> {
        self.cmd.lock().sink.clone()
    }

    /// The sequence number the next submission will receive (the device's
    /// current submission frontier).
    pub(crate) fn next_submission_seq(&self) -> u64 {
        self.cmd.lock().next_seq
    }

    /// Rings the doorbell: the command processor retires every queued
    /// command it can, round-robin over stream heads, resolving event
    /// edges as they appear. A full pass with queued commands but no
    /// progress means some wait can never resolve —
    /// [`GpuError::QueueStalled`]. No-op during capture.
    pub fn doorbell(&self) -> Result<(), GpuError> {
        let mut cp = self.cmd.lock();
        self.drain_locked(&mut cp)
    }

    /// Number of commands queued but not yet retired.
    pub fn pending_commands(&self) -> usize {
        self.cmd.lock().pending()
    }

    /// Drains and returns `stream`'s completion queue in retirement order.
    pub fn drain_completions(&self, stream: StreamId) -> Vec<Completion> {
        let mut cp = self.cmd.lock();
        cp.ensure_stream(stream.ordinal());
        cp.completions[stream.ordinal() as usize]
            .drain(..)
            .collect()
    }

    /// Allocates a fresh event slot for
    /// [`Command::EventRecord`]/[`Command::EventWait`] edges.
    pub fn create_cmd_event(&self) -> CmdEvent {
        let mut cp = self.cmd.lock();
        cp.events.push(None);
        CmdEvent((cp.events.len() - 1) as u32)
    }

    /// Resolved timestamp of an event slot, if its record has retired.
    pub fn cmd_event_ns(&self, event: CmdEvent) -> Option<u64> {
        self.cmd.lock().events.get(event.index()).copied().flatten()
    }

    /// Whether a capture is in flight.
    pub fn is_capturing(&self) -> bool {
        self.cmd.lock().capture.is_some()
    }

    /// Starts capturing: subsequent submissions are recorded into a graph
    /// instead of retiring (kernel bodies still run; nothing is charged).
    /// Errors on nested capture or with undrained queues.
    pub fn begin_capture(&self, name: &str) -> Result<(), GpuError> {
        let mut cp = self.cmd.lock();
        if let Some(cap) = &cp.capture {
            return Err(GpuError::InvalidCapture {
                reason: format!("capture '{}' already in progress", cap.name),
            });
        }
        if cp.pending() > 0 {
            return Err(GpuError::InvalidCapture {
                reason: format!(
                    "{} commands still queued; ring the doorbell first",
                    cp.pending()
                ),
            });
        }
        cp.capture = Some(CaptureState {
            name: name.to_owned(),
            nodes: Vec::new(),
        });
        Ok(())
    }

    /// Ends the capture, validating the recorded DAG: every in-capture
    /// wait must reference an event recorded *earlier in the capture* (a
    /// wait on an outside or never-recorded event would deadlock replay),
    /// collectives are not capturable, and an empty graph is rejected.
    pub fn end_capture(&self) -> Result<Graph, GpuError> {
        let mut cp = self.cmd.lock();
        let cap = cp.capture.take().ok_or_else(|| GpuError::InvalidCapture {
            reason: "no capture in progress".to_owned(),
        })?;
        if cap.nodes.is_empty() {
            return Err(GpuError::InvalidCapture {
                reason: format!("capture '{}' recorded no commands", cap.name),
            });
        }
        let mut recorded = std::collections::HashSet::new();
        for (stream, cmd) in &cap.nodes {
            match cmd {
                Command::EventRecord { event } => {
                    recorded.insert(event.0);
                }
                Command::EventWait { event } if !recorded.contains(&event.0) => {
                    return Err(GpuError::InvalidCapture {
                        reason: format!(
                            "stream {stream} waits on event #{} never recorded in capture '{}'",
                            event.index(),
                            cap.name
                        ),
                    });
                }
                Command::Collective(c) => {
                    return Err(GpuError::InvalidCapture {
                        reason: format!(
                            "collective '{}' in capture '{}': collectives span devices and are not capturable",
                            c.name, cap.name
                        ),
                    });
                }
                _ => {}
            }
        }
        Ok(Graph {
            name: cap.name,
            nodes: cap.nodes,
            launch_overhead_ns: self.spec().launch_overhead_ns.ceil() as u64,
        })
    }

    /// Discards an in-flight capture (error-path cleanup). No-op when no
    /// capture is active.
    pub fn abort_capture(&self) {
        self.cmd.lock().capture = None;
    }

    /// Retires everything currently runnable. Caller holds the lock.
    pub(crate) fn drain_locked(&self, cp: &mut CommandProcessor) -> Result<(), GpuError> {
        if cp.capture.is_some() {
            return Ok(());
        }
        loop {
            let mut progressed = false;
            let mut stalled: Option<String> = None;
            for s in 0..cp.queues.len() {
                loop {
                    let runnable = match cp.queues[s].front() {
                        None => break,
                        Some((seq, Command::EventWait { event })) => {
                            let ready = cp.events[event.index()].is_some();
                            if !ready {
                                stalled = Some(format!(
                                    "stream {s}: command #{seq} waits on unresolved event #{}",
                                    event.index()
                                ));
                            }
                            ready
                        }
                        Some(_) => true,
                    };
                    if !runnable {
                        break;
                    }
                    let (seq, cmd) = cp.queues[s].pop_front().expect("head exists");
                    self.retire(cp, StreamId(s as u32), seq, cmd);
                    progressed = true;
                }
            }
            if cp.pending() == 0 {
                return Ok(());
            }
            if !progressed {
                return Err(GpuError::QueueStalled {
                    reason: stalled.unwrap_or_else(|| "no runnable command".to_owned()),
                });
            }
        }
    }

    /// Retires one command: clock arithmetic + trace event + completion.
    fn retire(&self, cp: &mut CommandProcessor, stream: StreamId, seq: u64, cmd: Command) {
        let (start, end) = match cmd {
            Command::Kernel(k) => {
                let start = self.advance_on(stream, k.dur_ns);
                if !k.graph {
                    self.count_kernel_launch();
                }
                self.recorder().record(TraceEvent {
                    kind: EventKind::Kernel,
                    name: k.name,
                    device: self.ordinal(),
                    stream: stream.ordinal(),
                    start_ns: start,
                    dur_ns: k.dur_ns,
                    bytes: k.bytes,
                    flops: k.flops,
                    occupancy: k.occupancy,
                    graph: k.graph,
                });
                (start, start + k.dur_ns)
            }
            Command::Copy(c) => {
                let start = self.advance_on(stream, c.dur_ns);
                self.recorder().record(TraceEvent {
                    kind: c.kind,
                    name: c.name,
                    device: self.ordinal(),
                    stream: stream.ordinal(),
                    start_ns: start,
                    dur_ns: c.dur_ns,
                    bytes: c.bytes,
                    flops: 0,
                    occupancy: 0.0,
                    graph: c.graph,
                });
                (start, start + c.dur_ns)
            }
            Command::Collective(c) => {
                let start = self.reserve_on(stream, c.not_before_ns, c.dur_ns);
                self.recorder().record(TraceEvent {
                    kind: EventKind::MemcpyP2P,
                    name: c.name,
                    device: self.ordinal(),
                    stream: stream.ordinal(),
                    start_ns: start,
                    dur_ns: c.dur_ns,
                    bytes: c.bytes,
                    flops: 0,
                    occupancy: 0.0,
                    graph: false,
                });
                (start, start + c.dur_ns)
            }
            Command::EventRecord { event } => {
                let t = self.stream_time(stream);
                cp.events[event.index()] = Some(t);
                (t, t)
            }
            Command::EventWait { event } => {
                let t = cp.events[event.index()].expect("checked runnable");
                self.wait_until(stream, t);
                // The wait releases once the stream reaches it AND the
                // event has fired.
                let released = self.stream_time(stream);
                (released, released)
            }
        };
        cp.completions[stream.ordinal() as usize].push_back(Completion {
            seq,
            stream: stream.ordinal(),
            start_ns: start,
            end_ns: end,
        });
    }
}

/// A captured command DAG, validated by [`Gpu::end_capture`].
///
/// Replaying charges the whole epoch for the submission cost of a *single*
/// launch: one `graph-launch/<name>` kernel event pays the launch overhead
/// once, and every captured kernel node is re-issued overhead-free with
/// `graph = true` (excluded from launch counting).
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    nodes: Vec<(u32, Command)>,
    launch_overhead_ns: u64,
}

impl Graph {
    /// Name given at [`Gpu::begin_capture`].
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of captured commands.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds no commands (never true for a graph from
    /// [`Gpu::end_capture`], which rejects empty captures).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of `EventRecord` nodes; their resolved replay timestamps are
    /// exposed by [`Replay::event_ns`] in capture order.
    pub fn event_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|(_, c)| matches!(c, Command::EventRecord { .. }))
            .count()
    }

    /// Re-issues the captured DAG on `gpu` (the device it was captured
    /// on): fresh event slots, one overhead-paying `graph-launch` kernel,
    /// every node submitted, one doorbell.
    pub fn replay(&self, gpu: &Gpu) -> Result<Replay, GpuError> {
        let mut cp = gpu.cmd.lock();
        if let Some(cap) = &cp.capture {
            return Err(GpuError::InvalidCapture {
                reason: format!(
                    "cannot replay '{}' while capturing '{}'",
                    self.name, cap.name
                ),
            });
        }
        for (stream, _) in &self.nodes {
            if *stream as usize >= gpu.stream_count() {
                return Err(GpuError::InvalidCapture {
                    reason: format!(
                        "graph '{}' uses stream {stream}, which does not exist on device {}",
                        self.name,
                        gpu.ordinal()
                    ),
                });
            }
        }
        // Fresh event slots per replay; capture-time ids are templates.
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut record_slots: Vec<u32> = Vec::new();
        for (_, cmd) in &self.nodes {
            if let Command::EventRecord { event } = cmd {
                cp.events.push(None);
                let fresh = (cp.events.len() - 1) as u32;
                remap.insert(event.0, fresh);
                record_slots.push(fresh);
            }
        }
        let root = StreamId(self.nodes[0].0);
        let push = |cp: &mut CommandProcessor, stream: StreamId, cmd: Command| {
            let seq = cp.next_seq;
            cp.next_seq += 1;
            cp.ensure_stream(stream.ordinal());
            cp.queues[stream.ordinal() as usize].push_back((seq, cmd));
        };
        push(
            &mut cp,
            root,
            Command::Kernel(KernelCommand {
                name: format!("graph-launch/{}", self.name),
                dur_ns: self.launch_overhead_ns,
                bytes: 0,
                flops: 0,
                occupancy: 0.0,
                graph: false,
                pricing: None,
            }),
        );
        for (stream, cmd) in &self.nodes {
            let cmd = match cmd {
                Command::Kernel(k) => Command::Kernel(KernelCommand {
                    dur_ns: k.dur_ns.saturating_sub(self.launch_overhead_ns),
                    graph: true,
                    ..k.clone()
                }),
                Command::Copy(c) => Command::Copy(CopyCommand {
                    graph: true,
                    ..c.clone()
                }),
                Command::EventRecord { event } => Command::EventRecord {
                    event: CmdEvent(remap[&event.0]),
                },
                Command::EventWait { event } => Command::EventWait {
                    event: CmdEvent(remap[&event.0]),
                },
                Command::Collective(c) => {
                    unreachable!("end_capture rejects collectives ('{}')", c.name)
                }
            };
            push(&mut cp, StreamId(*stream), cmd);
        }
        gpu.drain_locked(&mut cp)?;
        let events: Vec<u64> = record_slots
            .iter()
            .map(|&slot| cp.events[slot as usize].expect("record retired"))
            .collect();
        drop(cp);
        let end_ns = self
            .nodes
            .iter()
            .map(|(s, _)| gpu.stream_time(StreamId(*s)))
            .max()
            .unwrap_or(0)
            .max(gpu.stream_time(root));
        Ok(Replay { end_ns, events })
    }
}

/// Outcome of one [`Graph::replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    end_ns: u64,
    events: Vec<u64>,
}

impl Replay {
    /// Latest stream time among the graph's streams after retirement.
    pub fn end_ns(&self) -> u64 {
        self.end_ns
    }

    /// Resolved timestamp of the `idx`-th captured `EventRecord` (capture
    /// order).
    pub fn event_ns(&self, idx: usize) -> Option<u64> {
        self.events.get(idx).copied()
    }

    /// All resolved `EventRecord` timestamps in capture order.
    pub fn events(&self) -> &[u64] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DeviceSpec;
    use crate::device::LaunchSpec;
    use crate::kernel::{KernelProfile, LaunchConfig};

    fn gpu() -> Gpu {
        Gpu::new(0, DeviceSpec::t4())
    }

    fn k(name: &str, dur: u64) -> Command {
        Command::Kernel(KernelCommand {
            name: name.to_owned(),
            dur_ns: dur,
            bytes: 0,
            flops: 0,
            occupancy: 0.5,
            graph: false,
            pricing: None,
        })
    }

    #[test]
    fn submission_charges_nothing_until_doorbell() {
        let g = gpu();
        g.submit(StreamId::DEFAULT, k("a", 1_000));
        g.submit(StreamId::DEFAULT, k("b", 2_000));
        assert_eq!(g.now_ns(), 0);
        assert_eq!(g.pending_commands(), 2);
        g.doorbell().unwrap();
        assert_eq!(g.now_ns(), 3_000);
        assert_eq!(g.pending_commands(), 0);
        assert_eq!(g.kernels_launched(), 2);
    }

    #[test]
    fn completions_are_posted_in_retirement_order() {
        let g = gpu();
        let s0 = g.submit(StreamId::DEFAULT, k("a", 10));
        let s1 = g.submit(StreamId::DEFAULT, k("b", 20));
        let comps = g.sync().unwrap();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].seq, s0);
        assert_eq!(comps[0].end_ns, 10);
        assert_eq!(comps[1].seq, s1);
        assert_eq!(comps[1].start_ns, 10);
        assert_eq!(comps[1].end_ns, 30);
        assert!(g.drain_completions(StreamId::DEFAULT).is_empty());
    }

    #[test]
    fn event_edges_order_cross_stream_commands() {
        let g = gpu();
        let s1 = g.create_stream();
        let ev = g.create_cmd_event();
        // Producer on default: kernel then record. Consumer on s1: wait
        // then kernel. Submit the consumer FIRST — retirement must still
        // order it after the producer's record.
        g.submit(s1, Command::EventWait { event: ev });
        g.submit(s1, k("consumer", 500));
        g.submit(StreamId::DEFAULT, k("producer", 5_000));
        g.submit(StreamId::DEFAULT, Command::EventRecord { event: ev });
        let all = g.sync().unwrap();
        assert_eq!(g.cmd_event_ns(ev), Some(5_000));
        let comps: Vec<Completion> = all
            .into_iter()
            .filter(|c| c.stream == s1.ordinal())
            .collect();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1].start_ns, 5_000, "consumer starts after the event");
    }

    #[test]
    fn wait_on_never_recorded_event_stalls_with_typed_error() {
        let g = gpu();
        let ev = g.create_cmd_event();
        g.submit(StreamId::DEFAULT, Command::EventWait { event: ev });
        let err = g.doorbell().unwrap_err();
        assert!(matches!(err, GpuError::QueueStalled { .. }), "{err}");
    }

    #[test]
    fn nested_capture_and_end_without_begin_are_typed_errors() {
        let g = gpu();
        assert!(matches!(
            g.end_capture(),
            Err(GpuError::InvalidCapture { .. })
        ));
        g.begin_capture("outer").unwrap();
        assert!(matches!(
            g.begin_capture("inner"),
            Err(GpuError::InvalidCapture { .. })
        ));
        g.abort_capture();
        assert!(!g.is_capturing());
    }

    #[test]
    fn empty_capture_is_rejected() {
        let g = gpu();
        g.begin_capture("nothing").unwrap();
        assert!(matches!(
            g.end_capture(),
            Err(GpuError::InvalidCapture { .. })
        ));
    }

    #[test]
    fn capture_rejects_wait_on_event_recorded_outside() {
        let g = gpu();
        let s1 = g.create_stream();
        // Recorded BEFORE the capture: not a legal in-graph edge.
        let outside = g.record_event(StreamId::DEFAULT);
        g.begin_capture("bad-edge").unwrap();
        g.stream_wait(s1, &outside);
        let err = g.end_capture().unwrap_err();
        assert!(matches!(err, GpuError::InvalidCapture { .. }), "{err}");
    }

    #[test]
    fn capture_rejects_collectives() {
        let g = gpu();
        g.begin_capture("coll").unwrap();
        g.submit(
            StreamId::DEFAULT,
            Command::Collective(CollectiveCommand {
                name: "grads/rs0".to_owned(),
                dur_ns: 10,
                bytes: 4,
                not_before_ns: 0,
            }),
        );
        assert!(matches!(
            g.end_capture(),
            Err(GpuError::InvalidCapture { .. })
        ));
    }

    #[test]
    fn capture_charges_nothing_and_replay_matches_eager() {
        let cfg = LaunchConfig::for_elements(1 << 16, 256);
        let profile = KernelProfile::elementwise(1 << 16, 4, 8);
        // Eager reference: two kernels with a cross-stream edge.
        let run_eager = |g: &Gpu, s1: StreamId| {
            LaunchSpec::new("produce", cfg, profile)
                .run(g, || ())
                .unwrap();
            let ev = g.record_event(StreamId::DEFAULT);
            g.stream_wait(s1, &ev);
            LaunchSpec::new("consume", cfg, profile)
                .on(s1)
                .run(g, || ())
                .unwrap();
        };
        let eager = {
            let g = gpu();
            let s1 = g.create_stream();
            for _ in 0..3 {
                run_eager(&g, s1);
            }
            g.sync_streams()
        };
        let captured = {
            let g = gpu();
            let s1 = g.create_stream();
            g.begin_capture("edge").unwrap();
            run_eager(&g, s1);
            let graph = g.end_capture().unwrap();
            assert_eq!(g.now_ns(), 0, "capture must charge nothing");
            assert_eq!(g.kernels_launched(), 0);
            for _ in 0..3 {
                graph.replay(&g).unwrap();
            }
            g.sync_streams()
        };
        // Replay pays ONE overhead per epoch instead of two; with the
        // produce→consume pipeline, the critical path sheds exactly one
        // overhead over the three rounds.
        let oh = DeviceSpec::t4().launch_overhead_ns as u64;
        assert_eq!(eager - captured, oh);
    }

    #[test]
    fn replay_counts_one_launch_and_marks_nodes_as_graph() {
        let g = gpu();
        let cfg = LaunchConfig::for_elements(1 << 10, 256);
        let profile = KernelProfile::elementwise(1 << 10, 2, 8);
        g.begin_capture("pair").unwrap();
        LaunchSpec::new("a", cfg, profile).run(&g, || ()).unwrap();
        LaunchSpec::new("b", cfg, profile).run(&g, || ()).unwrap();
        let graph = g.end_capture().unwrap();
        assert_eq!(graph.len(), 2);
        let r1 = graph.replay(&g).unwrap();
        assert_eq!(g.kernels_launched(), 1, "one launch per replay");
        let evs = g.recorder().snapshot();
        assert_eq!(evs.len(), 3);
        assert!(evs[0].name.starts_with("graph-launch/"));
        assert!(!evs[0].graph);
        assert!(evs[1].graph && evs[2].graph);
        assert_eq!(r1.end_ns(), g.now_ns());
        let r2 = graph.replay(&g).unwrap();
        assert_eq!(g.kernels_launched(), 2);
        assert!(r2.end_ns() > r1.end_ns());
    }

    #[test]
    fn replay_exposes_record_timestamps_in_capture_order() {
        let g = gpu();
        let cfg = LaunchConfig::for_elements(1 << 10, 256);
        let profile = KernelProfile::elementwise(1 << 10, 2, 8);
        g.begin_capture("marks").unwrap();
        LaunchSpec::new("a", cfg, profile).run(&g, || ()).unwrap();
        let first = g.record_event(StreamId::DEFAULT);
        assert_eq!(first.timestamp_ns(), 0, "unresolved during capture");
        LaunchSpec::new("b", cfg, profile).run(&g, || ()).unwrap();
        let _second = g.record_event(StreamId::DEFAULT);
        let graph = g.end_capture().unwrap();
        assert_eq!(graph.event_count(), 2);
        let r = graph.replay(&g).unwrap();
        let (t0, t1) = (r.event_ns(0).unwrap(), r.event_ns(1).unwrap());
        assert!(0 < t0 && t0 < t1);
        assert_eq!(t1, r.end_ns());
        assert_eq!(r.events(), &[t0, t1]);
        assert!(r.event_ns(2).is_none());
    }
}
