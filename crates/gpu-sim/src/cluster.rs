//! Multi-GPU nodes: peer links, P2P copies, collectives, barriers.
//!
//! Models the multi-GPU AWS instances the course used for its DDP and
//! distributed-GCN labs (up to 3 GPUs per instance, per Appendix A). Devices
//! in a cluster share one [`EventRecorder`] so profilers see a unified
//! timeline, and are connected pairwise by PCIe or NVLink-class links.

use crate::arch::DeviceSpec;
use crate::device::Gpu;
use crate::error::GpuError;
use crate::event::{EventKind, EventRecorder, TraceEvent};
use crate::memory::DeviceBuffer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Interconnect class between a pair of devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// Through host PCIe root complex (same machine, slow path).
    Pcie,
    /// Direct NVLink-class peer connection (same machine, fast path).
    NvLink,
    /// 10 GbE VPC networking between *separate instances* — how the
    /// course's students actually connected their 2–3 single-GPU
    /// instances (§III-A places them "within the same VPC").
    Ethernet,
}

impl LinkKind {
    /// Modeled unidirectional bandwidth in bytes/sec.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        match self {
            LinkKind::Pcie => 12e9,
            LinkKind::NvLink => 50e9,
            LinkKind::Ethernet => 1.25e9, // 10 Gb/s
        }
    }

    /// Fixed per-message latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        match self {
            LinkKind::Pcie => 10_000.0,
            LinkKind::NvLink => 2_000.0,
            LinkKind::Ethernet => 60_000.0, // TCP round-trip in a VPC
        }
    }
}

/// A single node holding several simulated GPUs.
#[derive(Debug)]
pub struct GpuCluster {
    devices: Vec<Arc<Gpu>>,
    link: LinkKind,
    recorder: EventRecorder,
}

impl GpuCluster {
    /// Builds a homogeneous cluster of `n` devices of the given spec,
    /// connected with `link`, recording into one shared timeline.
    pub fn homogeneous(n: usize, spec: DeviceSpec, link: LinkKind) -> Self {
        let recorder = EventRecorder::new();
        let devices = (0..n)
            .map(|i| Arc::new(Gpu::with_recorder(i as u32, spec.clone(), recorder.clone())))
            .collect();
        Self {
            devices,
            link,
            recorder,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The shared event recorder.
    pub fn recorder(&self) -> &EventRecorder {
        &self.recorder
    }

    /// The interconnect class.
    pub fn link(&self) -> LinkKind {
        self.link
    }

    /// Borrow device `i`.
    pub fn device(&self, i: usize) -> Result<&Arc<Gpu>, GpuError> {
        self.devices
            .get(i)
            .ok_or(GpuError::NoSuchDevice { device: i as u32 })
    }

    /// Iterate over all devices.
    pub fn devices(&self) -> impl Iterator<Item = &Arc<Gpu>> {
        self.devices.iter()
    }

    fn p2p_ns(&self, bytes: u64) -> u64 {
        (self.link.latency_ns() + bytes as f64 / self.link.bandwidth_bytes_per_sec() * 1e9).ceil()
            as u64
    }

    /// Copies a buffer from its owning device to device `dst`, consuming the
    /// source buffer and charging peer-link time on both devices (both must
    /// wait for the copy to complete, like `cudaMemcpyPeer`).
    pub fn p2p<T: Copy + Send + Sync + 'static>(
        &self,
        buf: DeviceBuffer<T>,
        dst: usize,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        let src = buf.device() as usize;
        let dst_dev = self.device(dst)?;
        let src_dev = self.device(src)?;
        let bytes = buf.size_bytes();
        let dur = self.p2p_ns(bytes);
        let start = src_dev.now_ns().max(dst_dev.now_ns());
        let end = start + dur;
        src_dev.advance_to(end);
        dst_dev.advance_to(end);
        self.recorder.record(TraceEvent {
            kind: EventKind::MemcpyP2P,
            name: format!("p2p {}->{}", src, dst),
            device: src as u32,
            stream: 0,
            start_ns: start,
            dur_ns: dur,
            bytes,
            flops: 0,
            occupancy: 0.0,
        });
        let data = buf.into_vec();
        // Re-allocate on destination (charges its capacity, not time —
        // the time was charged as the P2P event).
        DeviceBuffer::from_vec(data, dst as u32, dst_dev.memory_accounting())
    }

    /// Synchronizes all devices to the latest clock among them (a barrier,
    /// like the implicit sync in synchronous data-parallel training).
    /// Returns the barrier timestamp.
    pub fn barrier(&self) -> u64 {
        let t = self.devices.iter().map(|d| d.now_ns()).max().unwrap_or(0);
        for d in &self.devices {
            d.advance_to(t);
        }
        t
    }

    /// Models a ring all-reduce of `bytes` per device: each device sends and
    /// receives `2 (n-1)/n × bytes` over the peer links. Advances all device
    /// clocks past the collective and records one event per device.
    ///
    /// Returns the modeled duration in nanoseconds.
    pub fn all_reduce_cost(&self, bytes: u64) -> u64 {
        let n = self.devices.len().max(1) as u64;
        if n == 1 {
            return 0;
        }
        let per_dev_bytes = (2 * (n - 1) * bytes) / n;
        let steps = 2 * (n - 1);
        let dur = (steps as f64 * self.link.latency_ns()
            + per_dev_bytes as f64 / self.link.bandwidth_bytes_per_sec() * 1e9)
            .ceil() as u64;
        let start = self.barrier();
        for d in &self.devices {
            d.advance_to(start + dur);
            self.recorder.record(TraceEvent {
                kind: EventKind::MemcpyP2P,
                name: "all-reduce".to_owned(),
                device: d.ordinal(),
                stream: 0,
                start_ns: start,
                dur_ns: dur,
                bytes: per_dev_bytes,
                flops: 0,
                occupancy: 0.0,
            });
        }
        dur
    }

    /// Wall-clock of the slowest device (makespan of the simulated program).
    pub fn makespan_ns(&self) -> u64 {
        self.devices.iter().map(|d| d.now_ns()).max().unwrap_or(0)
    }
}

impl Gpu {
    /// Shared memory-accounting handle (used by cluster P2P re-allocation).
    pub(crate) fn memory_accounting(&self) -> Arc<crate::memory::MemoryAccounting> {
        self.accounting_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, link: LinkKind) -> GpuCluster {
        GpuCluster::homogeneous(n, DeviceSpec::t4(), link)
    }

    #[test]
    fn homogeneous_cluster_has_ordinal_devices() {
        let c = cluster(3, LinkKind::Pcie);
        assert_eq!(c.len(), 3);
        for (i, d) in c.devices().enumerate() {
            assert_eq!(d.ordinal() as usize, i);
        }
        assert!(c.device(3).is_err());
    }

    #[test]
    fn p2p_moves_data_and_memory_accounting() {
        let c = cluster(2, LinkKind::NvLink);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![7f32; 1024]).unwrap();
        assert_eq!(d0.mem_used(), 4096);
        let moved = c.p2p(buf, 1).unwrap();
        assert_eq!(moved.device(), 1);
        assert_eq!(d0.mem_used(), 0, "source allocation freed");
        assert_eq!(d1.mem_used(), 4096, "destination allocation charged");
        assert_eq!(d1.dtoh(&moved).unwrap(), vec![7f32; 1024]);
    }

    #[test]
    fn p2p_advances_both_clocks_to_same_point() {
        let c = cluster(2, LinkKind::Pcie);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![0u8; 1 << 20]).unwrap();
        let _ = c.p2p(buf, 1).unwrap();
        assert_eq!(d0.now_ns(), d1.now_ns());
        assert!(d1.now_ns() > 0);
    }

    #[test]
    fn nvlink_faster_than_pcie() {
        let time_with = |link| {
            let c = cluster(2, link);
            let d0 = c.device(0).unwrap();
            let buf = d0.htod(&vec![0u8; 64 << 20]).unwrap();
            let before = c.makespan_ns();
            let _ = c.p2p(buf, 1).unwrap();
            c.makespan_ns() - before
        };
        assert!(time_with(LinkKind::Pcie) > 3 * time_with(LinkKind::NvLink));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let c = cluster(3, LinkKind::Pcie);
        c.device(0).unwrap().advance_to(5_000);
        c.device(2).unwrap().advance_to(9_000);
        let t = c.barrier();
        assert_eq!(t, 9_000);
        for d in c.devices() {
            assert_eq!(d.now_ns(), 9_000);
        }
    }

    #[test]
    fn all_reduce_scales_with_device_count_and_bytes() {
        let small = cluster(2, LinkKind::Pcie).all_reduce_cost(1 << 20);
        let more_devices = cluster(4, LinkKind::Pcie).all_reduce_cost(1 << 20);
        let more_bytes = cluster(2, LinkKind::Pcie).all_reduce_cost(16 << 20);
        assert!(more_devices > small, "more ring steps cost more latency");
        assert!(more_bytes > 4 * small);
        assert_eq!(cluster(1, LinkKind::Pcie).all_reduce_cost(1 << 20), 0);
    }

    #[test]
    fn all_reduce_records_event_per_device() {
        let c = cluster(3, LinkKind::NvLink);
        c.all_reduce_cost(1 << 10);
        let evs = c.recorder().snapshot();
        assert_eq!(evs.iter().filter(|e| e.name == "all-reduce").count(), 3);
    }

    #[test]
    fn shared_recorder_sees_all_devices() {
        let c = cluster(2, LinkKind::Pcie);
        let _ = c.device(0).unwrap().htod(&[0f32; 16]).unwrap();
        let _ = c.device(1).unwrap().htod(&[0f32; 16]).unwrap();
        let devices: std::collections::HashSet<u32> =
            c.recorder().snapshot().iter().map(|e| e.device).collect();
        assert_eq!(devices.len(), 2);
    }
}
