//! Multi-GPU nodes: peer links, P2P copies, collectives, barriers.
//!
//! Models the multi-GPU AWS instances the course used for its DDP and
//! distributed-GCN labs (up to 3 GPUs per instance, per Appendix A). Devices
//! in a cluster share one [`EventRecorder`] so profilers see a unified
//! timeline, and are connected by a [`Topology`]: either one homogeneous
//! link class, or NVLink islands bridged by slower Ethernet — the shape of
//! a fleet of multi-GPU instances inside one VPC.

use crate::arch::DeviceSpec;
use crate::command::{CollectiveCommand, Command};
use crate::device::{Gpu, StreamId};
use crate::error::GpuError;
use crate::event::{EventKind, EventRecorder, TraceEvent};
use crate::memory::DeviceBuffer;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Interconnect class between a pair of devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// Through host PCIe root complex (same machine, slow path).
    Pcie,
    /// Direct NVLink-class peer connection (same machine, fast path).
    NvLink,
    /// 10 GbE VPC networking between *separate instances* — how the
    /// course's students actually connected their 2–3 single-GPU
    /// instances (§III-A places them "within the same VPC").
    Ethernet,
}

impl LinkKind {
    /// Modeled unidirectional bandwidth in bytes/sec.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        match self {
            LinkKind::Pcie => 12e9,
            LinkKind::NvLink => 50e9,
            LinkKind::Ethernet => 1.25e9, // 10 Gb/s
        }
    }

    /// Fixed per-message latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        match self {
            LinkKind::Pcie => 10_000.0,
            LinkKind::NvLink => 2_000.0,
            LinkKind::Ethernet => 60_000.0, // TCP round-trip in a VPC
        }
    }

    /// One lockstep ring-step duration for a `chunk`-byte neighbour
    /// exchange on this link.
    pub fn step_ns(&self, chunk: u64) -> u64 {
        (self.latency_ns() + chunk as f64 / self.bandwidth_bytes_per_sec() * 1e9).ceil() as u64
    }
}

/// Interconnect shape of a cluster.
///
/// [`Topology::Flat`] is the pre-existing model: every device pair shares
/// one link class. [`Topology::TwoTier`] models what multi-GPU cloud fleets
/// actually look like — islands of `island` GPUs joined by a fast
/// `intra` link (NVLink inside a p3/p4 instance), with the islands bridged
/// by a slower `inter` link (VPC Ethernet between instances). Collectives
/// on a two-tier cluster run hierarchically (see
/// [`GpuCluster::all_reduce_chunked`]), cutting per-device bridge traffic
/// by roughly the island size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Homogeneous: every pair of devices is connected by the same link.
    Flat(LinkKind),
    /// Islands of `island` devices on `intra` links, bridged by `inter`.
    TwoTier {
        /// Devices per island (consecutive ordinals share an island). The
        /// cost model assumes equal islands; when `island` does not divide
        /// the device count, the ragged last island is charged as full.
        island: usize,
        /// Link class inside an island.
        intra: LinkKind,
        /// Link class bridging islands.
        inter: LinkKind,
    },
}

impl Topology {
    /// Homogeneous topology on `link`.
    pub fn flat(link: LinkKind) -> Self {
        Topology::Flat(link)
    }

    /// The common cloud shape: NVLink islands of `island` GPUs, bridged by
    /// VPC Ethernet.
    pub fn nvlink_islands(island: usize) -> Self {
        Topology::TwoTier {
            island,
            intra: LinkKind::NvLink,
            inter: LinkKind::Ethernet,
        }
    }

    /// The slowest link any transfer may cross — the bridge on a two-tier
    /// cluster, the single link class on a flat one.
    pub fn bridge(&self) -> LinkKind {
        match self {
            Topology::Flat(l) => *l,
            Topology::TwoTier { inter, .. } => *inter,
        }
    }

    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Flat(_) => "flat",
            Topology::TwoTier { .. } => "hierarchical",
        }
    }

    /// `(island_size, island_count)` for an `n`-device cluster. A flat
    /// cluster is one island of `n`.
    fn shape(&self, n: usize) -> (usize, usize) {
        match self {
            Topology::Flat(_) => (n.max(1), 1),
            Topology::TwoTier { island, .. } => {
                let m = (*island).clamp(1, n.max(1));
                (m, n.max(1).div_ceil(m))
            }
        }
    }

    /// The link between devices `a` and `b`.
    pub(crate) fn link_between(&self, a: usize, b: usize) -> LinkKind {
        match self {
            Topology::Flat(l) => *l,
            Topology::TwoTier {
                island,
                intra,
                inter,
            } => {
                let m = (*island).max(1);
                if a / m == b / m {
                    *intra
                } else {
                    *inter
                }
            }
        }
    }

    /// The lockstep ring schedule reducing `bytes` over `n` devices, as a
    /// sequence of uniform phases. Flat: one ring of `2 (n-1)` steps moving
    /// `bytes / n` chunks. Two-tier (m-device islands, g islands):
    /// intra-island reduce-scatter (`m-1` steps of `bytes / m`), one inter-
    /// island ring exchange per shard over the bridge (`2 (g-1)` steps of
    /// `bytes / (m g)`), intra-island all-gather (`m-1` steps of
    /// `bytes / m`).
    pub(crate) fn ring_phases(&self, n: usize, bytes: u64) -> Vec<RingPhase> {
        if n <= 1 {
            return Vec::new();
        }
        let flat = |link: LinkKind, n: u64, rs: PhaseTag, ag: PhaseTag| {
            let chunk = bytes.div_ceil(n);
            let step_dur = link.step_ns(chunk);
            vec![
                RingPhase {
                    tag: rs,
                    steps: n - 1,
                    chunk,
                    step_dur,
                },
                RingPhase {
                    tag: ag,
                    steps: n - 1,
                    chunk,
                    step_dur,
                },
            ]
        };
        let (m, g) = self.shape(n);
        match self {
            Topology::Flat(link) => flat(*link, n as u64, PhaseTag::Rs, PhaseTag::Ag),
            Topology::TwoTier { intra, inter, .. } => {
                if g == 1 {
                    // One island: the hierarchy degenerates to a flat ring
                    // on the fast tier.
                    return flat(*intra, n as u64, PhaseTag::Rs, PhaseTag::Ag);
                }
                if m == 1 {
                    // Single-device islands: everything crosses the bridge.
                    return flat(*inter, n as u64, PhaseTag::Inter, PhaseTag::Inter);
                }
                let (m, g) = (m as u64, g as u64);
                let intra_chunk = bytes.div_ceil(m);
                let inter_chunk = bytes.div_ceil(m * g);
                vec![
                    RingPhase {
                        tag: PhaseTag::IntraRs,
                        steps: m - 1,
                        chunk: intra_chunk,
                        step_dur: intra.step_ns(intra_chunk),
                    },
                    RingPhase {
                        tag: PhaseTag::Inter,
                        steps: 2 * (g - 1),
                        chunk: inter_chunk,
                        step_dur: inter.step_ns(inter_chunk),
                    },
                    RingPhase {
                        tag: PhaseTag::IntraAg,
                        steps: m - 1,
                        chunk: intra_chunk,
                        step_dur: intra.step_ns(intra_chunk),
                    },
                ]
            }
        }
    }
}

/// Step naming within a collective; `inter*` names are what the profiler
/// keys tier attribution on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseTag {
    Rs,
    Ag,
    IntraRs,
    Inter,
    IntraAg,
}

impl PhaseTag {
    pub(crate) fn step_name(&self, collective: &str, s: u64) -> String {
        match self {
            PhaseTag::Rs => format!("{collective}/rs{s}"),
            PhaseTag::Ag => format!("{collective}/ag{s}"),
            PhaseTag::IntraRs => format!("{collective}/intra-rs{s}"),
            PhaseTag::Inter => format!("{collective}/inter{s}"),
            PhaseTag::IntraAg => format!("{collective}/intra-ag{s}"),
        }
    }

    fn crosses_bridge(&self) -> bool {
        matches!(self, PhaseTag::Inter)
    }
}

/// One uniform run of lockstep ring steps (same chunk, same link).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RingPhase {
    pub(crate) tag: PhaseTag,
    pub(crate) steps: u64,
    pub(crate) chunk: u64,
    pub(crate) step_dur: u64,
}

/// Number of dedicated communication streams ("channels") per device.
///
/// Like NCCL channels: independent collectives round-robin across them, so
/// a second gradient bucket's ring can be in flight while the first is
/// still paying its per-step link latency. Collectives assigned to the
/// *same* channel serialize (a channel models one set of link contexts).
pub const COMM_CHANNELS: usize = 2;

/// Timeline footprint of one chunked ring collective launched with
/// [`GpuCluster::all_reduce_chunked`]. The caller decides what to order
/// after it — e.g. `advance_to(end_ns)` before the optimizer step — so
/// independent compute can keep running while the collective is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceHandle {
    /// When the collective started (every participant ready, its comm
    /// channel free).
    pub start_ns: u64,
    /// When the last ring step completed on every device.
    pub end_ns: u64,
    /// Number of lockstep ring steps charged.
    pub steps: u64,
    /// Payload size reduced across the ring.
    pub bytes: u64,
    /// Bytes each device moved over its links (`Σ steps × chunk`).
    pub per_dev_bytes: u64,
    /// Ring steps that crossed the inter-island bridge (zero on flat
    /// topologies, where there is no bridge tier).
    pub inter_steps: u64,
    /// Bytes each device moved over the bridge (zero on flat topologies).
    pub inter_bytes: u64,
    /// Comm channel (round-robin ordinal) the collective ran on.
    pub channel: u32,
}

impl ReduceHandle {
    /// Wall-clock duration of the collective.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A single node holding several simulated GPUs.
#[derive(Debug)]
pub struct GpuCluster {
    devices: Vec<Arc<Gpu>>,
    topology: Topology,
    recorder: EventRecorder,
    /// [`COMM_CHANNELS`] dedicated communication streams per device
    /// (NCCL-style), created at construction so collectives never contend
    /// with compute streams.
    comm_streams: Vec<Vec<StreamId>>,
    /// Round-robin cursor assigning collectives to channels.
    next_channel: AtomicUsize,
    /// Active trace sink, mirroring cluster-level operations (barriers,
    /// collectives, peer copies) as logical records. Per-device command
    /// recording is handled by the devices themselves (the same sink is
    /// attached to each).
    trace_sink: parking_lot::Mutex<Option<crate::trace::TraceSink>>,
}

impl GpuCluster {
    /// Builds a homogeneous cluster of `n` devices of the given spec,
    /// connected flat with `link`, recording into one shared timeline.
    pub fn homogeneous(n: usize, spec: DeviceSpec, link: LinkKind) -> Self {
        Self::with_topology(n, spec, Topology::Flat(link))
    }

    /// Builds a cluster of `n` devices of the given spec wired as
    /// `topology`, recording into one shared timeline.
    pub fn with_topology(n: usize, spec: DeviceSpec, topology: Topology) -> Self {
        let recorder = EventRecorder::new();
        let devices: Vec<Arc<Gpu>> = (0..n)
            .map(|i| Arc::new(Gpu::with_recorder(i as u32, spec.clone(), recorder.clone())))
            .collect();
        let comm_streams = devices
            .iter()
            .map(|d| (0..COMM_CHANNELS).map(|_| d.create_stream()).collect())
            .collect();
        Self {
            devices,
            topology,
            recorder,
            comm_streams,
            next_channel: AtomicUsize::new(0),
            trace_sink: parking_lot::Mutex::new(None),
        }
    }

    /// Starts recording every device submission and cluster-level
    /// operation into a fresh [`crate::trace::TraceSink`]; finish with
    /// [`GpuCluster::finish_trace`].
    pub fn record_trace(&self) -> crate::trace::TraceSink {
        let sink = crate::trace::TraceSink::new();
        for d in &self.devices {
            d.attach_trace_sink(sink.clone());
        }
        *self.trace_sink.lock() = Some(sink.clone());
        sink
    }

    /// Stops recording and assembles the portable trace (topology and
    /// comm-channel count travel with it). Returns `None` when
    /// [`GpuCluster::record_trace`] was never called.
    pub fn finish_trace(&self, workload: &str) -> Option<crate::trace::TraceV1> {
        let sink = self.trace_sink.lock().take()?;
        for d in &self.devices {
            d.detach_trace_sink();
        }
        let devices: Vec<&Gpu> = self.devices.iter().map(|d| d.as_ref()).collect();
        Some(sink.finish(
            &devices,
            Some(self.topology),
            COMM_CHANNELS as u32,
            workload,
        ))
    }

    fn sink(&self) -> Option<crate::trace::TraceSink> {
        self.trace_sink.lock().clone()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The shared event recorder.
    pub fn recorder(&self) -> &EventRecorder {
        &self.recorder
    }

    /// The interconnect shape.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Borrow device `i`.
    pub fn device(&self, i: usize) -> Result<&Arc<Gpu>, GpuError> {
        self.devices
            .get(i)
            .ok_or(GpuError::NoSuchDevice { device: i as u32 })
    }

    /// Iterate over all devices.
    pub fn devices(&self) -> impl Iterator<Item = &Arc<Gpu>> {
        self.devices.iter()
    }

    fn p2p_ns(&self, src: usize, dst: usize, bytes: u64) -> u64 {
        self.topology.link_between(src, dst).step_ns(bytes)
    }

    /// Copies a buffer from its owning device to device `dst`, consuming the
    /// source buffer and charging peer-link time on both devices (both must
    /// wait for the copy to complete, like `cudaMemcpyPeer`). On a two-tier
    /// topology the charged link is the intra link when source and
    /// destination share an island, the bridge otherwise.
    pub fn p2p<T: Copy + Send + Sync + 'static>(
        &self,
        buf: DeviceBuffer<T>,
        dst: usize,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        let src = buf.device() as usize;
        let dst_dev = self.device(dst)?;
        let src_dev = self.device(src)?;
        let bytes = buf.size_bytes();
        if let Some(sink) = self.sink() {
            sink.record_global(crate::trace::RecordBody::P2p {
                src: src as u32,
                dst: dst as u32,
                bytes,
            });
        }
        let dur = self.p2p_ns(src, dst, bytes);
        let start = src_dev.now_ns().max(dst_dev.now_ns());
        let end = start + dur;
        src_dev.advance_to(end);
        dst_dev.advance_to(end);
        self.recorder.record(TraceEvent {
            kind: EventKind::MemcpyP2P,
            name: format!("p2p {}->{}", src, dst),
            device: src as u32,
            stream: 0,
            start_ns: start,
            dur_ns: dur,
            bytes,
            flops: 0,
            occupancy: 0.0,
            graph: false,
        });
        let data = buf.into_vec();
        // Re-allocate on destination (charges its capacity, not time —
        // the time was charged as the P2P event).
        DeviceBuffer::from_vec(data, dst as u32, dst_dev.memory_accounting())
    }

    /// Synchronizes all devices to the latest clock among them (a barrier,
    /// like the implicit sync in synchronous data-parallel training).
    /// Returns the barrier timestamp.
    pub fn barrier(&self) -> u64 {
        if let Some(sink) = self.sink() {
            sink.record_global(crate::trace::RecordBody::Barrier);
        }
        let t = self.devices.iter().map(|d| d.now_ns()).max().unwrap_or(0);
        for d in &self.devices {
            d.advance_to(t);
        }
        t
    }

    /// Advances every device clock to at least `t_ns` — the ordering
    /// point data-parallel trainers place after their gradient
    /// collectives (typically `handle.end_ns`) before the optimizer
    /// step. Centralized here so the trace records it as one logical
    /// operation that replay can re-target when a what-if changes the
    /// collectives' timing.
    pub fn advance_all_to(&self, t_ns: u64) {
        if let Some(sink) = self.sink() {
            sink.record_global(crate::trace::RecordBody::CollectiveSync { t_ns });
        }
        for d in &self.devices {
            d.advance_to(t_ns);
        }
    }

    /// Models a blocking all-reduce of `bytes` per device under the
    /// cluster's topology (flat ring, or hierarchical on two tiers).
    /// Advances all device clocks past the collective and records one event
    /// per device.
    ///
    /// Returns the modeled duration in nanoseconds.
    pub fn all_reduce_cost(&self, bytes: u64) -> u64 {
        let n = self.devices.len();
        if n <= 1 {
            return 0;
        }
        let sink = self.sink();
        if let Some(s) = &sink {
            // One logical record; the inner barrier must not record itself.
            s.record_global(crate::trace::RecordBody::BlockingAllReduce { bytes });
            s.push_suppress();
        }
        let phases = self.topology.ring_phases(n, bytes);
        let dur: u64 = phases.iter().map(|p| p.steps * p.step_dur).sum();
        let per_dev_bytes: u64 = phases.iter().map(|p| p.steps * p.chunk).sum();
        let start = self.barrier();
        for d in &self.devices {
            d.advance_to(start + dur);
            self.recorder.record(TraceEvent {
                kind: EventKind::MemcpyP2P,
                name: "all-reduce".to_owned(),
                device: d.ordinal(),
                stream: 0,
                start_ns: start,
                dur_ns: dur,
                bytes: per_dev_bytes,
                flops: 0,
                occupancy: 0.0,
                graph: false,
            });
        }
        if let Some(s) = &sink {
            s.pop_suppress();
        }
        dur
    }

    /// The first dedicated comm stream (channel 0) of device `i`.
    pub fn comm_stream(&self, i: usize) -> Result<StreamId, GpuError> {
        self.comm_channel(i, 0)
    }

    /// Comm stream of device `i` on channel `ch` (`ch < COMM_CHANNELS`).
    pub fn comm_channel(&self, i: usize, ch: usize) -> Result<StreamId, GpuError> {
        self.comm_streams
            .get(i)
            .and_then(|chs| chs.get(ch))
            .copied()
            .ok_or(GpuError::NoSuchDevice { device: i as u32 })
    }

    /// Chunked ring all-reduce of `bytes`, charged as discrete lockstep
    /// steps on one of each device's dedicated comm streams. On a flat
    /// topology this is the NCCL schedule — `2 (n-1)` steps moving one
    /// `bytes / n` chunk per device (reduce-scatter then all-gather). On a
    /// two-tier topology the schedule is hierarchical: reduce-scatter
    /// inside each island on the fast links (`m-1` steps of `bytes / m`),
    /// one ring exchange per shard across the `g` islands over the bridge
    /// (`2 (g-1)` steps of `bytes / (m g)` — the only steps that touch the
    /// slow tier), then an intra-island all-gather. Step events are named
    /// `{name}/intra-rs{s}`, `{name}/inter{s}`, `{name}/intra-ag{s}` so
    /// profilers can attribute exposed time per tier.
    ///
    /// `ready_ns[i]` is when device `i`'s payload becomes available (e.g.
    /// the event timestamp of the backward op producing the last gradient
    /// in a bucket); the collective starts once every participant is ready
    /// *and* its assigned channel has drained its previous collective.
    /// Collectives round-robin over [`COMM_CHANNELS`] channels, so
    /// back-to-back buckets overlap like independent NCCL channels instead
    /// of serializing on one stream. Unlike
    /// [`GpuCluster::all_reduce_cost`], this neither barriers the devices
    /// nor advances their default streams, so compute issued afterwards
    /// overlaps the collective; callers order dependents explicitly via
    /// the returned [`ReduceHandle`] (typically `advance_to(end_ns)`).
    pub fn all_reduce_chunked(&self, bytes: u64, name: &str, ready_ns: &[u64]) -> ReduceHandle {
        let n = self.devices.len();
        if n <= 1 {
            let t = ready_ns.first().copied().unwrap_or(0);
            return ReduceHandle {
                start_ns: t,
                end_ns: t,
                steps: 0,
                bytes,
                per_dev_bytes: 0,
                inter_steps: 0,
                inter_bytes: 0,
                channel: 0,
            };
        }
        assert_eq!(
            ready_ns.len(),
            self.devices.len(),
            "one ready timestamp per device"
        );
        // Trace as ONE logical collective: the per-device step commands and
        // channel-probe event records below are regenerated by replay from
        // the (possibly what-if) topology, so they must not record
        // themselves.
        let sink = self.sink();
        if let Some(s) = &sink {
            s.push_suppress();
        }
        let phases = self.topology.ring_phases(n, bytes);
        let ch = self.next_channel.fetch_add(1, Ordering::Relaxed) % COMM_CHANNELS;
        // Lockstep rings: every step is a synchronous neighbour exchange,
        // so the collective starts only when the *slowest* participant is
        // ready and its channel is free.
        let start = self
            .devices
            .iter()
            .zip(self.comm_streams.iter())
            .zip(ready_ns.iter())
            .map(|((d, chs), &r)| d.record_event(chs[ch]).timestamp_ns().max(r))
            .max()
            .unwrap_or(0);
        for (d, chs) in self.devices.iter().zip(self.comm_streams.iter()) {
            let mut s = 0u64;
            for p in &phases {
                for _ in 0..p.steps {
                    d.submit(
                        chs[ch],
                        Command::Collective(CollectiveCommand {
                            name: p.tag.step_name(name, s),
                            dur_ns: p.step_dur,
                            bytes: p.chunk,
                            not_before_ns: start,
                        }),
                    );
                    s += 1;
                }
            }
            d.doorbell()
                .expect("collective steps carry no event dependencies");
        }
        let steps: u64 = phases.iter().map(|p| p.steps).sum();
        let dur: u64 = phases.iter().map(|p| p.steps * p.step_dur).sum();
        let inter_steps: u64 = phases
            .iter()
            .filter(|p| p.tag.crosses_bridge())
            .map(|p| p.steps)
            .sum();
        let inter_bytes: u64 = phases
            .iter()
            .filter(|p| p.tag.crosses_bridge())
            .map(|p| p.steps * p.chunk)
            .sum();
        if let Some(s) = &sink {
            s.pop_suppress();
            s.record_global(crate::trace::RecordBody::Collective {
                name: name.to_owned(),
                bytes,
                channel: ch as u32,
                ready_ns: ready_ns.to_vec(),
                gates: vec![None; n],
            });
        }
        ReduceHandle {
            start_ns: start,
            end_ns: start + dur,
            steps,
            bytes,
            per_dev_bytes: phases.iter().map(|p| p.steps * p.chunk).sum(),
            inter_steps,
            inter_bytes,
            channel: ch as u32,
        }
    }

    /// Wall-clock of the slowest device (makespan of the simulated program).
    pub fn makespan_ns(&self) -> u64 {
        self.devices.iter().map(|d| d.now_ns()).max().unwrap_or(0)
    }
}

impl Gpu {
    /// Shared memory-accounting handle (used by cluster P2P re-allocation).
    pub(crate) fn memory_accounting(&self) -> Arc<crate::memory::MemoryAccounting> {
        self.accounting_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, link: LinkKind) -> GpuCluster {
        GpuCluster::homogeneous(n, DeviceSpec::t4(), link)
    }

    fn two_tier(n: usize, island: usize) -> GpuCluster {
        GpuCluster::with_topology(n, DeviceSpec::t4(), Topology::nvlink_islands(island))
    }

    #[test]
    fn homogeneous_cluster_has_ordinal_devices() {
        let c = cluster(3, LinkKind::Pcie);
        assert_eq!(c.len(), 3);
        for (i, d) in c.devices().enumerate() {
            assert_eq!(d.ordinal() as usize, i);
        }
        assert!(c.device(3).is_err());
    }

    #[test]
    fn p2p_moves_data_and_memory_accounting() {
        let c = cluster(2, LinkKind::NvLink);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![7f32; 1024]).unwrap();
        assert_eq!(d0.mem_used(), 4096);
        let moved = c.p2p(buf, 1).unwrap();
        assert_eq!(moved.device(), 1);
        assert_eq!(d0.mem_used(), 0, "source allocation freed");
        assert_eq!(d1.mem_used(), 4096, "destination allocation charged");
        assert_eq!(d1.dtoh(&moved).unwrap(), vec![7f32; 1024]);
    }

    #[test]
    fn p2p_advances_both_clocks_to_same_point() {
        let c = cluster(2, LinkKind::Pcie);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![0u8; 1 << 20]).unwrap();
        let _ = c.p2p(buf, 1).unwrap();
        assert_eq!(d0.now_ns(), d1.now_ns());
        assert!(d1.now_ns() > 0);
    }

    #[test]
    fn nvlink_faster_than_pcie() {
        let time_with = |link| {
            let c = cluster(2, link);
            let d0 = c.device(0).unwrap();
            let buf = d0.htod(&vec![0u8; 64 << 20]).unwrap();
            let before = c.makespan_ns();
            let _ = c.p2p(buf, 1).unwrap();
            c.makespan_ns() - before
        };
        assert!(time_with(LinkKind::Pcie) > 3 * time_with(LinkKind::NvLink));
    }

    #[test]
    fn two_tier_p2p_charges_intra_link_inside_an_island() {
        // Devices 0 and 1 share the first NVLink island of a 4-device,
        // 2-per-island cluster; devices 1 and 2 straddle the bridge.
        let bytes = 16u64 << 20;
        let intra = {
            let c = two_tier(4, 2);
            let buf = c
                .device(0)
                .unwrap()
                .htod(&vec![0u8; bytes as usize])
                .unwrap();
            let before = c.makespan_ns();
            let _ = c.p2p(buf, 1).unwrap();
            c.makespan_ns() - before
        };
        let inter = {
            let c = two_tier(4, 2);
            let buf = c
                .device(1)
                .unwrap()
                .htod(&vec![0u8; bytes as usize])
                .unwrap();
            let before = c.makespan_ns();
            let _ = c.p2p(buf, 2).unwrap();
            c.makespan_ns() - before
        };
        assert_eq!(intra, LinkKind::NvLink.step_ns(bytes));
        assert_eq!(inter, LinkKind::Ethernet.step_ns(bytes));
        assert!(inter > 10 * intra);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let c = cluster(3, LinkKind::Pcie);
        c.device(0).unwrap().advance_to(5_000);
        c.device(2).unwrap().advance_to(9_000);
        let t = c.barrier();
        assert_eq!(t, 9_000);
        for d in c.devices() {
            assert_eq!(d.now_ns(), 9_000);
        }
    }

    #[test]
    fn all_reduce_scales_with_device_count_and_bytes() {
        let small = cluster(2, LinkKind::Pcie).all_reduce_cost(1 << 20);
        let more_devices = cluster(4, LinkKind::Pcie).all_reduce_cost(1 << 20);
        let more_bytes = cluster(2, LinkKind::Pcie).all_reduce_cost(16 << 20);
        assert!(more_devices > small, "more ring steps cost more latency");
        assert!(more_bytes > 4 * small);
        assert_eq!(cluster(1, LinkKind::Pcie).all_reduce_cost(1 << 20), 0);
    }

    #[test]
    fn all_reduce_records_event_per_device() {
        let c = cluster(3, LinkKind::NvLink);
        c.all_reduce_cost(1 << 10);
        let evs = c.recorder().snapshot();
        assert_eq!(evs.iter().filter(|e| e.name == "all-reduce").count(), 3);
    }

    #[test]
    fn hierarchical_all_reduce_cost_beats_flat_bridge_ring() {
        // 8 devices as 2 NVLink islands of 4 bridged by Ethernet must beat
        // 8 devices flat on Ethernet: only 2 (g-1) small shard-exchanges
        // cross the slow tier instead of the whole 2 (n-1)-step ring.
        let bytes = 1u64 << 20;
        let flat = cluster(8, LinkKind::Ethernet).all_reduce_cost(bytes);
        let hier = two_tier(8, 4).all_reduce_cost(bytes);
        assert!(
            hier * 3 < flat,
            "hierarchical {hier} ns not well below flat {flat} ns"
        );
        // And it cannot beat the all-NVLink flat ring it embeds.
        let nvlink = cluster(8, LinkKind::NvLink).all_reduce_cost(bytes);
        assert!(hier > nvlink);
    }

    #[test]
    fn degenerate_two_tier_topologies_match_flat_rings() {
        let bytes = 3u64 << 20;
        // island >= n: one island, pure intra.
        let one_island = GpuCluster::with_topology(
            4,
            DeviceSpec::t4(),
            Topology::TwoTier {
                island: 4,
                intra: LinkKind::NvLink,
                inter: LinkKind::Ethernet,
            },
        );
        assert_eq!(
            one_island.all_reduce_cost(bytes),
            cluster(4, LinkKind::NvLink).all_reduce_cost(bytes)
        );
        // island == 1: every hop crosses the bridge.
        let all_bridge = GpuCluster::with_topology(
            4,
            DeviceSpec::t4(),
            Topology::TwoTier {
                island: 1,
                intra: LinkKind::NvLink,
                inter: LinkKind::Ethernet,
            },
        );
        assert_eq!(
            all_bridge.all_reduce_cost(bytes),
            cluster(4, LinkKind::Ethernet).all_reduce_cost(bytes)
        );
    }

    #[test]
    fn chunked_all_reduce_matches_monolithic_cost_model() {
        // Same bytes, same topology: the chunked schedule and the blocking
        // cost model now share one phase table, so durations are equal.
        let bytes = 1u64 << 20;
        for mk in [|| cluster(4, LinkKind::Pcie), || two_tier(8, 4)] {
            let mono = mk().all_reduce_cost(bytes);
            let c = mk();
            let h = c.all_reduce_chunked(bytes, "grads", &vec![0; c.len()]);
            assert_eq!(h.dur_ns(), mono);
        }
        let c = cluster(4, LinkKind::Pcie);
        let h = c.all_reduce_chunked(bytes, "grads", &[0, 0, 0, 0]);
        assert_eq!(h.steps, 6);
        assert!(h.per_dev_bytes >= (2 * 3 * bytes) / 4);
        assert_eq!(h.inter_steps, 0, "flat ring has no bridge tier");
        assert_eq!(h.inter_bytes, 0);
    }

    #[test]
    fn chunked_all_reduce_records_lockstep_steps_on_comm_streams() {
        let c = cluster(3, LinkKind::NvLink);
        let h = c.all_reduce_chunked(3 << 10, "b0", &[0, 0, 0]);
        let evs = c.recorder().snapshot();
        let steps: Vec<_> = evs.iter().filter(|e| e.name.starts_with("b0/")).collect();
        // 2 (n-1) steps on each of the 3 devices, all on one comm channel.
        assert_eq!(steps.len(), 12);
        assert!(steps.iter().all(|e| e.kind == EventKind::MemcpyP2P));
        for i in 0..3 {
            let stream = c.comm_channel(i, h.channel as usize).unwrap().ordinal();
            let mut dev_steps: Vec<_> = steps
                .iter()
                .filter(|e| e.device == i as u32 && e.stream == stream)
                .collect();
            dev_steps.sort_by_key(|e| e.start_ns);
            assert_eq!(dev_steps.len(), 4);
            // Lockstep: back-to-back spans starting at the collective start.
            assert_eq!(dev_steps[0].start_ns, h.start_ns);
            for w in dev_steps.windows(2) {
                assert_eq!(w[0].start_ns + w[0].dur_ns, w[1].start_ns);
            }
        }
        assert_eq!(
            h.end_ns,
            steps.iter().map(|e| e.start_ns + e.dur_ns).max().unwrap()
        );
    }

    #[test]
    fn hierarchical_steps_charge_their_own_tier_only() {
        // Property from the issue: intra-island chunks must never charge
        // time on the bridge link. Every intra step's duration is computed
        // from NVLink latency/bandwidth (well under the Ethernet RTT), and
        // every bridge step pays at least the Ethernet RTT.
        let bytes = 1u64 << 20;
        let c = two_tier(8, 4);
        let h = c.all_reduce_chunked(bytes, "g", &[0; 8]);
        let evs = c.recorder().snapshot();
        let intra: Vec<_> = evs.iter().filter(|e| e.name.contains("/intra-")).collect();
        let inter: Vec<_> = evs.iter().filter(|e| e.name.contains("/inter")).collect();
        assert!(!intra.is_empty() && !inter.is_empty());
        let intra_chunk = bytes.div_ceil(4);
        let inter_chunk = bytes.div_ceil(8);
        for e in &intra {
            assert_eq!(e.dur_ns, LinkKind::NvLink.step_ns(intra_chunk));
            assert!(
                (e.dur_ns as f64) < LinkKind::Ethernet.latency_ns(),
                "intra step {} charged bridge-scale time",
                e.name
            );
        }
        for e in &inter {
            assert_eq!(e.dur_ns, LinkKind::Ethernet.step_ns(inter_chunk));
            assert!(e.dur_ns as f64 >= LinkKind::Ethernet.latency_ns());
        }
        // Per device: m-1 = 3 intra-rs, 2 (g-1) = 2 inter, 3 intra-ag.
        assert_eq!(intra.len(), 8 * 6);
        assert_eq!(inter.len(), 8 * 2);
        assert_eq!(h.steps, 8);
        assert_eq!(h.inter_steps, 2);
        assert_eq!(h.inter_bytes, 2 * inter_chunk);
    }

    #[test]
    fn two_tier_bridge_traffic_is_cut_by_island_size() {
        // Flat over the bridge: every device pushes 2 (n-1)/n · bytes over
        // Ethernet. Hierarchical: only 2 (g-1)/(m g) · bytes ≈ 1/m as much.
        let bytes = 4u64 << 20;
        let flat = cluster(8, LinkKind::Ethernet);
        let hf = flat.all_reduce_chunked(bytes, "g", &[0; 8]);
        let hier = two_tier(8, 4);
        let hh = hier.all_reduce_chunked(bytes, "g", &[0; 8]);
        // Flat: all per-device bytes cross the one (bridge-class) link.
        let flat_bridge_bytes = hf.per_dev_bytes;
        assert!(hh.inter_bytes * 5 < flat_bridge_bytes);
    }

    #[test]
    fn chunked_all_reduce_waits_for_slowest_participant() {
        let c = cluster(2, LinkKind::Pcie);
        let h = c.all_reduce_chunked(1 << 10, "g", &[1_000, 50_000]);
        assert_eq!(h.start_ns, 50_000);
    }

    #[test]
    fn chunked_all_reduce_overlaps_default_stream_compute() {
        let c = cluster(2, LinkKind::Pcie);
        let h = c.all_reduce_chunked(1 << 20, "g", &[0, 0]);
        assert!(h.dur_ns() > 0);
        // The default stream was not advanced: new compute can start at 0,
        // concurrent with the in-flight collective.
        for d in c.devices() {
            let ev = d.record_event(StreamId::DEFAULT);
            assert_eq!(ev.timestamp_ns(), 0);
        }
        // But the device makespan covers the collective.
        assert_eq!(c.makespan_ns(), h.end_ns);
    }

    #[test]
    fn collectives_round_robin_channels_and_serialize_per_channel() {
        // Two back-to-back collectives land on different channels and
        // overlap like independent NCCL channels; the third reuses the
        // first channel and queues behind its collective.
        let c = cluster(2, LinkKind::Pcie);
        let a = c.all_reduce_chunked(1 << 16, "a", &[0, 0]);
        let b = c.all_reduce_chunked(1 << 16, "b", &[0, 0]);
        let third = c.all_reduce_chunked(1 << 16, "c", &[0, 0]);
        assert_ne!(a.channel, b.channel);
        assert_eq!(b.start_ns, 0, "second bucket overlaps the first");
        assert_eq!(third.channel, a.channel);
        assert_eq!(
            third.start_ns, a.end_ns,
            "third bucket queues behind the first on its channel"
        );
    }

    #[test]
    fn chunked_all_reduce_single_device_is_free() {
        let c = cluster(1, LinkKind::Ethernet);
        let h = c.all_reduce_chunked(1 << 20, "g", &[123]);
        assert_eq!(h.dur_ns(), 0);
        assert_eq!(h.steps, 0);
        assert!(c.recorder().snapshot().is_empty());
    }

    #[test]
    fn shared_recorder_sees_all_devices() {
        let c = cluster(2, LinkKind::Pcie);
        let _ = c.device(0).unwrap().htod(&[0f32; 16]).unwrap();
        let _ = c.device(1).unwrap().htod(&[0f32; 16]).unwrap();
        let devices: std::collections::HashSet<u32> =
            c.recorder().snapshot().iter().map(|e| e.device).collect();
        assert_eq!(devices.len(), 2);
    }
}
