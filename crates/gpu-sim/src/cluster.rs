//! Multi-GPU nodes: peer links, P2P copies, collectives, barriers.
//!
//! Models the multi-GPU AWS instances the course used for its DDP and
//! distributed-GCN labs (up to 3 GPUs per instance, per Appendix A). Devices
//! in a cluster share one [`EventRecorder`] so profilers see a unified
//! timeline, and are connected pairwise by PCIe or NVLink-class links.

use crate::arch::DeviceSpec;
use crate::command::{CollectiveCommand, Command};
use crate::device::{Gpu, StreamId};
use crate::error::GpuError;
use crate::event::{EventKind, EventRecorder, TraceEvent};
use crate::memory::DeviceBuffer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Interconnect class between a pair of devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// Through host PCIe root complex (same machine, slow path).
    Pcie,
    /// Direct NVLink-class peer connection (same machine, fast path).
    NvLink,
    /// 10 GbE VPC networking between *separate instances* — how the
    /// course's students actually connected their 2–3 single-GPU
    /// instances (§III-A places them "within the same VPC").
    Ethernet,
}

impl LinkKind {
    /// Modeled unidirectional bandwidth in bytes/sec.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        match self {
            LinkKind::Pcie => 12e9,
            LinkKind::NvLink => 50e9,
            LinkKind::Ethernet => 1.25e9, // 10 Gb/s
        }
    }

    /// Fixed per-message latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        match self {
            LinkKind::Pcie => 10_000.0,
            LinkKind::NvLink => 2_000.0,
            LinkKind::Ethernet => 60_000.0, // TCP round-trip in a VPC
        }
    }
}

/// Timeline footprint of one chunked ring collective launched with
/// [`GpuCluster::all_reduce_chunked`]. The caller decides what to order
/// after it — e.g. `advance_to(end_ns)` before the optimizer step — so
/// independent compute can keep running while the collective is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceHandle {
    /// When the collective started (every participant ready, comm stream free).
    pub start_ns: u64,
    /// When the last ring step completed on every device.
    pub end_ns: u64,
    /// Number of lockstep ring steps charged (`2 (n-1)`).
    pub steps: u64,
    /// Payload size reduced across the ring.
    pub bytes: u64,
    /// Bytes each device moved over its links (`steps × chunk`).
    pub per_dev_bytes: u64,
}

impl ReduceHandle {
    /// Wall-clock duration of the collective.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A single node holding several simulated GPUs.
#[derive(Debug)]
pub struct GpuCluster {
    devices: Vec<Arc<Gpu>>,
    link: LinkKind,
    recorder: EventRecorder,
    /// One dedicated communication stream per device (NCCL-style), created
    /// at construction so collectives never contend with compute streams.
    comm_streams: Vec<StreamId>,
}

impl GpuCluster {
    /// Builds a homogeneous cluster of `n` devices of the given spec,
    /// connected with `link`, recording into one shared timeline.
    pub fn homogeneous(n: usize, spec: DeviceSpec, link: LinkKind) -> Self {
        let recorder = EventRecorder::new();
        let devices: Vec<Arc<Gpu>> = (0..n)
            .map(|i| Arc::new(Gpu::with_recorder(i as u32, spec.clone(), recorder.clone())))
            .collect();
        let comm_streams = devices.iter().map(|d| d.create_stream()).collect();
        Self {
            devices,
            link,
            recorder,
            comm_streams,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The shared event recorder.
    pub fn recorder(&self) -> &EventRecorder {
        &self.recorder
    }

    /// The interconnect class.
    pub fn link(&self) -> LinkKind {
        self.link
    }

    /// Borrow device `i`.
    pub fn device(&self, i: usize) -> Result<&Arc<Gpu>, GpuError> {
        self.devices
            .get(i)
            .ok_or(GpuError::NoSuchDevice { device: i as u32 })
    }

    /// Iterate over all devices.
    pub fn devices(&self) -> impl Iterator<Item = &Arc<Gpu>> {
        self.devices.iter()
    }

    fn p2p_ns(&self, bytes: u64) -> u64 {
        (self.link.latency_ns() + bytes as f64 / self.link.bandwidth_bytes_per_sec() * 1e9).ceil()
            as u64
    }

    /// Copies a buffer from its owning device to device `dst`, consuming the
    /// source buffer and charging peer-link time on both devices (both must
    /// wait for the copy to complete, like `cudaMemcpyPeer`).
    pub fn p2p<T: Copy + Send + Sync + 'static>(
        &self,
        buf: DeviceBuffer<T>,
        dst: usize,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        let src = buf.device() as usize;
        let dst_dev = self.device(dst)?;
        let src_dev = self.device(src)?;
        let bytes = buf.size_bytes();
        let dur = self.p2p_ns(bytes);
        let start = src_dev.now_ns().max(dst_dev.now_ns());
        let end = start + dur;
        src_dev.advance_to(end);
        dst_dev.advance_to(end);
        self.recorder.record(TraceEvent {
            kind: EventKind::MemcpyP2P,
            name: format!("p2p {}->{}", src, dst),
            device: src as u32,
            stream: 0,
            start_ns: start,
            dur_ns: dur,
            bytes,
            flops: 0,
            occupancy: 0.0,
            graph: false,
        });
        let data = buf.into_vec();
        // Re-allocate on destination (charges its capacity, not time —
        // the time was charged as the P2P event).
        DeviceBuffer::from_vec(data, dst as u32, dst_dev.memory_accounting())
    }

    /// Synchronizes all devices to the latest clock among them (a barrier,
    /// like the implicit sync in synchronous data-parallel training).
    /// Returns the barrier timestamp.
    pub fn barrier(&self) -> u64 {
        let t = self.devices.iter().map(|d| d.now_ns()).max().unwrap_or(0);
        for d in &self.devices {
            d.advance_to(t);
        }
        t
    }

    /// Models a ring all-reduce of `bytes` per device: each device sends and
    /// receives `2 (n-1)/n × bytes` over the peer links. Advances all device
    /// clocks past the collective and records one event per device.
    ///
    /// Returns the modeled duration in nanoseconds.
    pub fn all_reduce_cost(&self, bytes: u64) -> u64 {
        let n = self.devices.len().max(1) as u64;
        if n == 1 {
            return 0;
        }
        let per_dev_bytes = (2 * (n - 1) * bytes) / n;
        let steps = 2 * (n - 1);
        let dur = (steps as f64 * self.link.latency_ns()
            + per_dev_bytes as f64 / self.link.bandwidth_bytes_per_sec() * 1e9)
            .ceil() as u64;
        let start = self.barrier();
        for d in &self.devices {
            d.advance_to(start + dur);
            self.recorder.record(TraceEvent {
                kind: EventKind::MemcpyP2P,
                name: "all-reduce".to_owned(),
                device: d.ordinal(),
                stream: 0,
                start_ns: start,
                dur_ns: dur,
                bytes: per_dev_bytes,
                flops: 0,
                occupancy: 0.0,
                graph: false,
            });
        }
        dur
    }

    /// The dedicated comm stream of device `i`.
    pub fn comm_stream(&self, i: usize) -> Result<StreamId, GpuError> {
        self.comm_streams
            .get(i)
            .copied()
            .ok_or(GpuError::NoSuchDevice { device: i as u32 })
    }

    /// Chunked ring all-reduce of `bytes`, charged as `2 (n-1)` discrete
    /// lockstep steps on each device's dedicated comm stream — the NCCL
    /// schedule, where each step moves one `bytes / n` chunk per device
    /// (reduce-scatter phase then all-gather phase).
    ///
    /// `ready_ns[i]` is when device `i`'s payload becomes available (e.g.
    /// the event timestamp of the backward op producing the last gradient
    /// in a bucket); the collective starts once every participant is ready
    /// *and* every comm stream has drained its previous collective. Unlike
    /// [`GpuCluster::all_reduce_cost`], this neither barriers the devices
    /// nor advances their default streams, so compute issued afterwards
    /// overlaps the collective; callers order dependents explicitly via
    /// the returned [`ReduceHandle`] (typically `advance_to(end_ns)`).
    pub fn all_reduce_chunked(&self, bytes: u64, name: &str, ready_ns: &[u64]) -> ReduceHandle {
        let n = self.devices.len().max(1) as u64;
        if n == 1 {
            let t = ready_ns.first().copied().unwrap_or(0);
            return ReduceHandle {
                start_ns: t,
                end_ns: t,
                steps: 0,
                bytes,
                per_dev_bytes: 0,
            };
        }
        assert_eq!(
            ready_ns.len(),
            self.devices.len(),
            "one ready timestamp per device"
        );
        let chunk = bytes.div_ceil(n);
        let steps = 2 * (n - 1);
        let step_dur = (self.link.latency_ns()
            + chunk as f64 / self.link.bandwidth_bytes_per_sec() * 1e9)
            .ceil() as u64;
        // Lockstep rings: every step is a synchronous neighbour exchange,
        // so the collective starts only when the *slowest* participant is
        // ready and its comm stream is free.
        let start = self
            .devices
            .iter()
            .zip(self.comm_streams.iter())
            .zip(ready_ns.iter())
            .map(|((d, &cs), &r)| d.record_event(cs).timestamp_ns().max(r))
            .max()
            .unwrap_or(0);
        for (d, &cs) in self.devices.iter().zip(self.comm_streams.iter()) {
            for s in 0..steps {
                let phase = if s < n - 1 { "rs" } else { "ag" };
                d.submit(
                    cs,
                    Command::Collective(CollectiveCommand {
                        name: format!("{name}/{phase}{s}"),
                        dur_ns: step_dur,
                        bytes: chunk,
                        not_before_ns: start,
                    }),
                );
            }
            d.doorbell()
                .expect("collective steps carry no event dependencies");
        }
        ReduceHandle {
            start_ns: start,
            end_ns: start + steps * step_dur,
            steps,
            bytes,
            per_dev_bytes: steps * chunk,
        }
    }

    /// Wall-clock of the slowest device (makespan of the simulated program).
    pub fn makespan_ns(&self) -> u64 {
        self.devices.iter().map(|d| d.now_ns()).max().unwrap_or(0)
    }
}

impl Gpu {
    /// Shared memory-accounting handle (used by cluster P2P re-allocation).
    pub(crate) fn memory_accounting(&self) -> Arc<crate::memory::MemoryAccounting> {
        self.accounting_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, link: LinkKind) -> GpuCluster {
        GpuCluster::homogeneous(n, DeviceSpec::t4(), link)
    }

    #[test]
    fn homogeneous_cluster_has_ordinal_devices() {
        let c = cluster(3, LinkKind::Pcie);
        assert_eq!(c.len(), 3);
        for (i, d) in c.devices().enumerate() {
            assert_eq!(d.ordinal() as usize, i);
        }
        assert!(c.device(3).is_err());
    }

    #[test]
    fn p2p_moves_data_and_memory_accounting() {
        let c = cluster(2, LinkKind::NvLink);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![7f32; 1024]).unwrap();
        assert_eq!(d0.mem_used(), 4096);
        let moved = c.p2p(buf, 1).unwrap();
        assert_eq!(moved.device(), 1);
        assert_eq!(d0.mem_used(), 0, "source allocation freed");
        assert_eq!(d1.mem_used(), 4096, "destination allocation charged");
        assert_eq!(d1.dtoh(&moved).unwrap(), vec![7f32; 1024]);
    }

    #[test]
    fn p2p_advances_both_clocks_to_same_point() {
        let c = cluster(2, LinkKind::Pcie);
        let d0 = c.device(0).unwrap();
        let d1 = c.device(1).unwrap();
        let buf = d0.htod(&vec![0u8; 1 << 20]).unwrap();
        let _ = c.p2p(buf, 1).unwrap();
        assert_eq!(d0.now_ns(), d1.now_ns());
        assert!(d1.now_ns() > 0);
    }

    #[test]
    fn nvlink_faster_than_pcie() {
        let time_with = |link| {
            let c = cluster(2, link);
            let d0 = c.device(0).unwrap();
            let buf = d0.htod(&vec![0u8; 64 << 20]).unwrap();
            let before = c.makespan_ns();
            let _ = c.p2p(buf, 1).unwrap();
            c.makespan_ns() - before
        };
        assert!(time_with(LinkKind::Pcie) > 3 * time_with(LinkKind::NvLink));
    }

    #[test]
    fn barrier_aligns_clocks() {
        let c = cluster(3, LinkKind::Pcie);
        c.device(0).unwrap().advance_to(5_000);
        c.device(2).unwrap().advance_to(9_000);
        let t = c.barrier();
        assert_eq!(t, 9_000);
        for d in c.devices() {
            assert_eq!(d.now_ns(), 9_000);
        }
    }

    #[test]
    fn all_reduce_scales_with_device_count_and_bytes() {
        let small = cluster(2, LinkKind::Pcie).all_reduce_cost(1 << 20);
        let more_devices = cluster(4, LinkKind::Pcie).all_reduce_cost(1 << 20);
        let more_bytes = cluster(2, LinkKind::Pcie).all_reduce_cost(16 << 20);
        assert!(more_devices > small, "more ring steps cost more latency");
        assert!(more_bytes > 4 * small);
        assert_eq!(cluster(1, LinkKind::Pcie).all_reduce_cost(1 << 20), 0);
    }

    #[test]
    fn all_reduce_records_event_per_device() {
        let c = cluster(3, LinkKind::NvLink);
        c.all_reduce_cost(1 << 10);
        let evs = c.recorder().snapshot();
        assert_eq!(evs.iter().filter(|e| e.name == "all-reduce").count(), 3);
    }

    #[test]
    fn chunked_all_reduce_matches_monolithic_cost_model() {
        // Same bytes, same link: the chunked schedule's total duration must
        // track the monolithic formula (identical latency terms; bandwidth
        // term differs only by per-step chunk rounding).
        let bytes = 1u64 << 20;
        let mono = cluster(4, LinkKind::Pcie).all_reduce_cost(bytes);
        let c = cluster(4, LinkKind::Pcie);
        let h = c.all_reduce_chunked(bytes, "grads", &[0, 0, 0, 0]);
        assert_eq!(h.steps, 6);
        let slack = h.steps; // ±1 ns of ceil rounding per step
        assert!(h.dur_ns() <= mono + slack && h.dur_ns() + slack >= mono);
        assert!(h.per_dev_bytes >= (2 * 3 * bytes) / 4);
    }

    #[test]
    fn chunked_all_reduce_records_lockstep_steps_on_comm_streams() {
        let c = cluster(3, LinkKind::NvLink);
        let h = c.all_reduce_chunked(3 << 10, "b0", &[0, 0, 0]);
        let evs = c.recorder().snapshot();
        let steps: Vec<_> = evs.iter().filter(|e| e.name.starts_with("b0/")).collect();
        // 2 (n-1) steps on each of the 3 devices, all on the comm stream.
        assert_eq!(steps.len(), 12);
        assert!(steps.iter().all(|e| e.kind == EventKind::MemcpyP2P));
        for i in 0..3 {
            let stream = c.comm_stream(i).unwrap().ordinal();
            let mut dev_steps: Vec<_> = steps
                .iter()
                .filter(|e| e.device == i as u32 && e.stream == stream)
                .collect();
            dev_steps.sort_by_key(|e| e.start_ns);
            assert_eq!(dev_steps.len(), 4);
            // Lockstep: back-to-back spans starting at the collective start.
            assert_eq!(dev_steps[0].start_ns, h.start_ns);
            for w in dev_steps.windows(2) {
                assert_eq!(w[0].start_ns + w[0].dur_ns, w[1].start_ns);
            }
        }
        assert_eq!(
            h.end_ns,
            steps.iter().map(|e| e.start_ns + e.dur_ns).max().unwrap()
        );
    }

    #[test]
    fn chunked_all_reduce_waits_for_slowest_participant() {
        let c = cluster(2, LinkKind::Pcie);
        let h = c.all_reduce_chunked(1 << 10, "g", &[1_000, 50_000]);
        assert_eq!(h.start_ns, 50_000);
    }

    #[test]
    fn chunked_all_reduce_overlaps_default_stream_compute() {
        let c = cluster(2, LinkKind::Pcie);
        let h = c.all_reduce_chunked(1 << 20, "g", &[0, 0]);
        assert!(h.dur_ns() > 0);
        // The default stream was not advanced: new compute can start at 0,
        // concurrent with the in-flight collective.
        for d in c.devices() {
            let ev = d.record_event(StreamId::DEFAULT);
            assert_eq!(ev.timestamp_ns(), 0);
        }
        // But the device makespan covers the collective.
        assert_eq!(c.makespan_ns(), h.end_ns);
    }

    #[test]
    fn chunked_all_reduce_serializes_on_comm_stream() {
        let c = cluster(2, LinkKind::Pcie);
        let a = c.all_reduce_chunked(1 << 16, "a", &[0, 0]);
        let b = c.all_reduce_chunked(1 << 16, "b", &[0, 0]);
        assert_eq!(b.start_ns, a.end_ns, "second bucket queues behind first");
    }

    #[test]
    fn chunked_all_reduce_single_device_is_free() {
        let c = cluster(1, LinkKind::Ethernet);
        let h = c.all_reduce_chunked(1 << 20, "g", &[123]);
        assert_eq!(h.dur_ns(), 0);
        assert_eq!(h.steps, 0);
        assert!(c.recorder().snapshot().is_empty());
    }

    #[test]
    fn shared_recorder_sees_all_devices() {
        let c = cluster(2, LinkKind::Pcie);
        let _ = c.device(0).unwrap().htod(&[0f32; 16]).unwrap();
        let _ = c.device(1).unwrap().htod(&[0f32; 16]).unwrap();
        let devices: std::collections::HashSet<u32> =
            c.recorder().snapshot().iter().map(|e| e.device).collect();
        assert_eq!(devices.len(), 2);
    }
}
