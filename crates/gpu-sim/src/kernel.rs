//! Kernel launch configuration and cost profiles.
//!
//! The simulator separates a kernel's *semantics* (a real Rust closure run
//! over the index space) from its *cost* (a [`KernelProfile`] describing how
//! much arithmetic and memory traffic the kernel performs). Simulated
//! duration follows a roofline model:
//!
//! ```text
//! t = launch_overhead
//!   + max( flops / (peak_flops × occupancy),
//!          bytes / (peak_bw × coalescing_factor) )
//! ```
//!
//! so memory-bound kernels (low arithmetic intensity, poor access patterns)
//! dominate at the bandwidth roof and compute-bound kernels at the FLOP roof
//! — exactly the distinction the course's profiling labs teach.

use crate::dim::Dim3;
use serde::{Deserialize, Serialize};

/// How a kernel's threads touch global memory.
///
/// Determines the fraction of peak bandwidth the kernel achieves. Values
/// follow the usual CUDA guidance: fully coalesced warps reach near-peak,
/// strided access wastes most of each 128-byte transaction, random access
/// is worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive threads read consecutive addresses.
    Coalesced,
    /// Fixed-stride access (e.g. column-major walk of a row-major matrix).
    Strided,
    /// Data-dependent gather/scatter (e.g. graph neighbor aggregation).
    Random,
}

impl AccessPattern {
    /// Fraction of peak memory bandwidth achieved.
    pub fn bandwidth_efficiency(&self) -> f64 {
        match self {
            AccessPattern::Coalesced => 0.85,
            AccessPattern::Strided => 0.25,
            AccessPattern::Random => 0.08,
        }
    }
}

/// Cost description of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Total floating-point operations performed by the whole launch.
    pub flops: u64,
    /// Total bytes read from + written to global memory.
    pub bytes: u64,
    /// Global-memory access pattern.
    pub access: AccessPattern,
    /// Registers used per thread (occupancy input).
    pub registers_per_thread: u32,
}

impl KernelProfile {
    /// Profile for an elementwise kernel over `n` elements performing
    /// `flops_per_elem` FLOPs and moving `bytes_per_elem` bytes each.
    pub fn elementwise(n: u64, flops_per_elem: u64, bytes_per_elem: u64) -> Self {
        Self {
            flops: n * flops_per_elem,
            bytes: n * bytes_per_elem,
            access: AccessPattern::Coalesced,
            registers_per_thread: 32,
        }
    }

    /// Profile for a dense `m×k · k×n` single-precision matrix multiply
    /// using shared-memory tiling (bytes model: each operand tile is reused,
    /// so traffic ≈ inputs + output rather than 2·m·n·k).
    pub fn matmul(m: u64, k: u64, n: u64) -> Self {
        Self {
            flops: 2 * m * k * n,
            bytes: 4 * (m * k + k * n + m * n),
            access: AccessPattern::Coalesced,
            registers_per_thread: 64,
        }
    }

    /// Naive matmul without tiling: every product term re-reads its operands.
    pub fn matmul_naive(m: u64, k: u64, n: u64) -> Self {
        Self {
            flops: 2 * m * k * n,
            bytes: 4 * (2 * m * n * k + m * n),
            access: AccessPattern::Strided,
            registers_per_thread: 40,
        }
    }

    /// Profile for a reduction over `n` elements (sum, max, …).
    pub fn reduction(n: u64) -> Self {
        Self {
            flops: n,
            bytes: 4 * n,
            access: AccessPattern::Coalesced,
            registers_per_thread: 24,
        }
    }

    /// Profile for sparse gather/aggregation over `nnz` edges with feature
    /// width `d` (the GCN neighbor-aggregation workload).
    pub fn sparse_aggregate(nnz: u64, d: u64) -> Self {
        Self {
            flops: 2 * nnz * d,
            bytes: 4 * (2 * nnz * d),
            access: AccessPattern::Random,
            registers_per_thread: 48,
        }
    }

    /// Fused `m×k · k×n` matmul with a bias epilogue (`X·W + b`): the
    /// bias add happens in registers before the store, so the profile is
    /// the tiled matmul plus the bias read and `m·n` extra FLOPs — the
    /// intermediate `m×n` product is never written to or re-read from
    /// global memory, and only one launch overhead is charged.
    pub fn fused_linear(m: u64, k: u64, n: u64) -> Self {
        Self {
            flops: 2 * m * k * n + m * n,
            bytes: 4 * (m * k + k * n + n + m * n),
            access: AccessPattern::Coalesced,
            registers_per_thread: 64,
        }
    }

    /// [`Self::fused_linear`] with a ReLU epilogue as well (`relu(X·W + b)`)
    /// — one more FLOP per output element, still zero extra traffic.
    pub fn fused_linear_relu(m: u64, k: u64, n: u64) -> Self {
        Self {
            flops: 2 * m * k * n + 2 * m * n,
            bytes: 4 * (m * k + k * n + n + m * n),
            access: AccessPattern::Coalesced,
            registers_per_thread: 72,
        }
    }

    /// Fused backward pass of a linear layer: one launch computes
    /// `dX = dY·Wᵀ`, `dW = Xᵀ·dY` and `dB = colsum(dY)`, reading the
    /// upstream gradient once instead of three times. `relu_mask` adds the
    /// in-register masking of `dY` by the forward activation.
    pub fn fused_linear_bwd(m: u64, k: u64, n: u64, relu_mask: bool) -> Self {
        let mask_flops = if relu_mask { m * n } else { 0 };
        Self {
            flops: 4 * m * k * n + m * n + mask_flops,
            bytes: 4 * (2 * (m * k) + 2 * (k * n) + m * n + n),
            access: AccessPattern::Coalesced,
            registers_per_thread: 80,
        }
    }

    /// Sparse aggregation over `nnz` edges at width `d` with a ReLU
    /// epilogue over the `rows × d` output applied in registers: same
    /// traffic as [`Self::sparse_aggregate`], plus the epilogue FLOPs.
    pub fn spmm_relu(nnz: u64, d: u64, rows: u64) -> Self {
        Self {
            flops: 2 * nnz * d + rows * d,
            bytes: 4 * (2 * nnz * d),
            access: AccessPattern::Random,
            registers_per_thread: 48,
        }
    }

    /// Fused scale + row softmax over `n` elements: one read, one write,
    /// with the scaling folded into the exponentiation pass.
    pub fn scale_softmax(n: u64) -> Self {
        Self {
            flops: 5 * n,
            bytes: 8 * n,
            access: AccessPattern::Coalesced,
            registers_per_thread: 32,
        }
    }

    /// Overrides the access pattern.
    pub fn with_access(mut self, access: AccessPattern) -> Self {
        self.access = access;
        self
    }

    /// Overrides register usage per thread.
    pub fn with_registers(mut self, regs: u32) -> Self {
        self.registers_per_thread = regs;
        self
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// The pricing inputs of one kernel launch — everything
/// [`crate::device::Gpu::kernel_duration_ns`] needs to re-derive the
/// modeled duration on a *different* device. Commands carrying a pricing
/// block can be re-priced by [`crate::trace::replay`] under a what-if GPU
/// profile; commands without one replay at their recorded duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelPricing {
    /// Grid/block geometry of the launch.
    pub cfg: LaunchConfig,
    /// Roofline cost profile.
    pub profile: KernelProfile,
}

/// Grid/block geometry of a launch, mirroring CUDA's `<<<grid, block>>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
    /// Dynamic shared memory requested per block, bytes.
    pub shared_mem_bytes: u32,
}

impl LaunchConfig {
    /// A launch with the given grid and block shapes.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        Self {
            grid: grid.into(),
            block: block.into(),
            shared_mem_bytes: 0,
        }
    }

    /// 1-D launch covering `n` elements with `block_size` threads per block
    /// (grid size rounded up, the canonical CUDA idiom).
    pub fn for_elements(n: u64, block_size: u32) -> Self {
        let bs = block_size.max(1) as u64;
        let blocks = n.div_ceil(bs).max(1);
        Self::new(Dim3::x(blocks as u32), Dim3::x(block_size.max(1)))
    }

    /// 2-D launch covering an `rows × cols` domain with `tile × tile` blocks.
    pub fn for_matrix(rows: u64, cols: u64, tile: u32) -> Self {
        let t = tile.max(1) as u64;
        let gx = cols.div_ceil(t).max(1) as u32;
        let gy = rows.div_ceil(t).max(1) as u32;
        Self::new(Dim3::xy(gx, gy), Dim3::xy(tile.max(1), tile.max(1)))
    }

    /// Adds a dynamic shared memory request.
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u64 {
        self.block.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_elements_rounds_grid_up() {
        let cfg = LaunchConfig::for_elements(1000, 256);
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.block.x, 256);
        assert!(cfg.total_threads() >= 1000);
    }

    #[test]
    fn for_elements_handles_exact_multiple_and_tiny_n() {
        assert_eq!(LaunchConfig::for_elements(512, 256).grid.x, 2);
        assert_eq!(LaunchConfig::for_elements(1, 256).grid.x, 1);
        assert_eq!(LaunchConfig::for_elements(0, 256).grid.x, 1);
    }

    #[test]
    fn for_matrix_covers_domain() {
        let cfg = LaunchConfig::for_matrix(100, 70, 16);
        assert_eq!(cfg.grid.y, 7); // ceil(100/16)
        assert_eq!(cfg.grid.x, 5); // ceil(70/16)
        assert_eq!(cfg.block.count(), 256);
    }

    #[test]
    fn matmul_profile_flops() {
        let p = KernelProfile::matmul(128, 64, 32);
        assert_eq!(p.flops, 2 * 128 * 64 * 32);
        assert!(p.arithmetic_intensity() > 1.0);
    }

    #[test]
    fn naive_matmul_moves_more_bytes_than_tiled() {
        let tiled = KernelProfile::matmul(256, 256, 256);
        let naive = KernelProfile::matmul_naive(256, 256, 256);
        assert!(naive.bytes > 10 * tiled.bytes);
        assert_eq!(naive.flops, tiled.flops);
    }

    #[test]
    fn fused_linear_drops_intermediate_traffic() {
        let (m, k, n) = (256, 64, 32);
        // Serial path: matmul writes m*n, bias-add re-reads m*n + n and
        // writes m*n, relu re-reads and re-writes m*n again.
        let serial_bytes = KernelProfile::matmul(m, k, n).bytes
            + 4 * (m * n + n + m * n) // bias add: read out + bias, write out
            + 4 * (2 * m * n); // relu: read + write
        let fused = KernelProfile::fused_linear_relu(m, k, n);
        assert!(fused.bytes < serial_bytes);
        // FLOPs are identical: matmul + bias + relu.
        let serial_flops = KernelProfile::matmul(m, k, n).flops + m * n + m * n;
        assert_eq!(fused.flops, serial_flops);
        assert!(KernelProfile::fused_linear(m, k, n).bytes == fused.bytes);
        assert!(KernelProfile::fused_linear(m, k, n).flops < fused.flops);
    }

    #[test]
    fn spmm_relu_matches_sparse_aggregate_traffic() {
        let fused = KernelProfile::spmm_relu(10_000, 32, 500);
        let base = KernelProfile::sparse_aggregate(10_000, 32);
        assert_eq!(fused.bytes, base.bytes);
        assert_eq!(fused.flops, base.flops + 500 * 32);
        assert_eq!(fused.access, AccessPattern::Random);
    }

    #[test]
    fn fused_linear_bwd_reads_gradient_once() {
        let plain = KernelProfile::fused_linear_bwd(128, 64, 32, false);
        let masked = KernelProfile::fused_linear_bwd(128, 64, 32, true);
        assert_eq!(masked.bytes, plain.bytes);
        assert_eq!(masked.flops, plain.flops + 128 * 32);
        // Three separate backward matmuls would read dY three times.
        let three_reads = 4 * 3 * (128 * 32);
        assert!(plain.bytes < KernelProfile::matmul(128, 32, 64).bytes * 3 + three_reads);
    }

    #[test]
    fn access_pattern_ordering() {
        assert!(
            AccessPattern::Coalesced.bandwidth_efficiency()
                > AccessPattern::Strided.bandwidth_efficiency()
        );
        assert!(
            AccessPattern::Strided.bandwidth_efficiency()
                > AccessPattern::Random.bandwidth_efficiency()
        );
    }

    #[test]
    fn elementwise_intensity_is_low() {
        // vecadd: 1 FLOP per 12 bytes — firmly memory bound.
        let p = KernelProfile::elementwise(1 << 20, 1, 12);
        assert!(p.arithmetic_intensity() < 0.1);
    }

    #[test]
    fn zero_byte_profile_has_infinite_intensity() {
        let p = KernelProfile {
            flops: 100,
            bytes: 0,
            access: AccessPattern::Coalesced,
            registers_per_thread: 16,
        };
        assert!(p.arithmetic_intensity().is_infinite());
    }
}
