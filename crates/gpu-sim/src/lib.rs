//! # gpu-sim — a deterministic CUDA-like GPU execution and cost simulator
//!
//! This crate stands in for real NVIDIA hardware in the reproduction of
//! *"GPU Programming for AI Workflow Development on AWS SageMaker"* (SC'25).
//! The course it reproduces teaches the CUDA execution model — kernels,
//! grids, blocks, threads, host/device memory traffic, occupancy, and
//! profiling — through Python front-ends (Numba/CuPy). None of that requires
//! physical silicon to *behave* correctly: what matters pedagogically and
//! experimentally is that
//!
//! 1. kernels execute real computations over an explicit `grid × block`
//!    index space (here: real Rust closures, parallelized with rayon);
//! 2. device memory is a finite, explicitly managed resource reached only
//!    through host↔device transfers that cost time;
//! 3. kernel *simulated* duration follows a roofline cost model (compute
//!    vs. memory bound, occupancy- and coalescing-adjusted) so profilers
//!    see the same bottleneck shapes a real GPU exposes;
//! 4. everything is deterministic: the same program yields the same
//!    simulated timeline on every run.
//!
//! ## Architecture
//!
//! - [`arch::DeviceSpec`] — static description of a GPU (SMs, clocks,
//!   bandwidths). Presets model the AWS instance GPUs the paper used
//!   (T4 on `g4dn`, A10G on `g5`, V100 on `p3`).
//! - [`device::Gpu`] — a live device: allocator, streams, simulated clock,
//!   kernel launch via the [`device::LaunchSpec`] builder.
//! - [`command`] — the command-stream runtime: typed commands on
//!   per-stream queues, doorbell-driven retirement, completion queues,
//!   and CUDA-graph-style capture/replay.
//! - [`memory::DeviceBuffer`] — typed device allocation holding real data.
//! - [`kernel`] — launch configuration, cost profiles, access patterns.
//! - [`occupancy`] — CUDA-style occupancy calculator.
//! - [`cluster::GpuCluster`] — multi-GPU node with PCIe/NVLink peer links,
//!   optionally wired as a two-tier [`cluster::Topology`] (NVLink islands
//!   bridged by Ethernet) with hierarchical collectives.
//! - [`event`] — the trace-event stream consumed by `sagegpu-profiler`.
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::prelude::*;
//!
//! let gpu = Gpu::new(0, DeviceSpec::t4());
//! let a = gpu.htod(&vec![1.0f32; 1024]).unwrap();
//! let b = gpu.htod(&vec![2.0f32; 1024]).unwrap();
//! let mut out = gpu.alloc_zeroed::<f32>(1024).unwrap();
//!
//! let cfg = LaunchConfig::for_elements(1024, 256);
//! let profile = KernelProfile::elementwise(1024, 2, 3 * 4);
//! LaunchSpec::new("vecadd", cfg, profile)
//!     .map(&gpu, &mut out, |i, _| a.host_view()[i] + b.host_view()[i])
//!     .unwrap();
//!
//! let host = gpu.dtoh(&out).unwrap();
//! assert!(host.iter().all(|&x| x == 3.0));
//! assert!(gpu.now_ns() > 0); // simulated time advanced
//! ```

pub mod arch;
pub mod cluster;
pub mod command;
pub mod device;
pub mod dim;
pub mod error;
pub mod event;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod pool;
pub mod trace;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::arch::{DeviceSpec, MemorySpec};
    pub use crate::cluster::{GpuCluster, LinkKind, ReduceHandle, Topology, COMM_CHANNELS};
    pub use crate::command::{
        CmdEvent, CollectiveCommand, Command, Completion, CopyCommand, Graph, KernelCommand, Replay,
    };
    pub use crate::device::{Gpu, GpuEvent, LaunchSpec, StreamId};
    pub use crate::dim::Dim3;
    pub use crate::error::GpuError;
    pub use crate::event::{EventKind, EventRecorder, TraceEvent};
    pub use crate::kernel::{AccessPattern, KernelPricing, KernelProfile, LaunchConfig};
    pub use crate::memory::DeviceBuffer;
    pub use crate::occupancy::OccupancyResult;
    pub use crate::pool::{
        BufferId, MemoryPool, PoolLease, PoolStats, ResidencySnapshot, ResidencyStats,
    };
    pub use crate::trace::{
        CopyKind, RecordBody, ReplayReport, TraceDevice, TraceError, TraceRecord, TraceSink,
        TraceV1, WhatIf,
    };
}

pub use arch::DeviceSpec;
pub use cluster::{GpuCluster, LinkKind, ReduceHandle, Topology, COMM_CHANNELS};
pub use command::{
    CmdEvent, CollectiveCommand, Command, Completion, CopyCommand, Graph, KernelCommand, Replay,
};
pub use device::{Gpu, GpuEvent, LaunchSpec, StreamId};
pub use dim::Dim3;
pub use error::GpuError;
pub use event::{EventKind, EventRecorder, TraceEvent};
pub use kernel::{AccessPattern, KernelPricing, KernelProfile, LaunchConfig};
pub use memory::DeviceBuffer;
pub use pool::{BufferId, MemoryPool, PoolLease, PoolStats, ResidencySnapshot, ResidencyStats};
pub use trace::{
    replay, CopyKind, RecordBody, ReplayReport, TraceDevice, TraceError, TraceRecord, TraceSink,
    TraceV1, WhatIf,
};
