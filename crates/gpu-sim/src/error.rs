//! Error types for the GPU simulator.

use crate::dim::Dim3;

/// Errors raised by allocation, transfer, and launch operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// Device global memory exhausted.
    OutOfMemory {
        device: u32,
        requested_bytes: u64,
        free_bytes: u64,
    },
    /// The launch configuration violates a device limit.
    InvalidLaunch { reason: String },
    /// A buffer was used on a device other than the one that owns it.
    WrongDevice { expected: u32, actual: u32 },
    /// Grid×block index space does not cover / match the output length.
    ShapeMismatch { expected: u64, actual: u64 },
    /// Peer-to-peer copy requested between devices with no link.
    NoPeerLink { from: u32, to: u32 },
    /// Referenced device id does not exist in the cluster.
    NoSuchDevice { device: u32 },
    /// Graph capture was begun, ended, or validated in an illegal state
    /// (nested capture, end without begin, a cross-stream wait on an event
    /// never recorded inside the capture, ...).
    InvalidCapture { reason: String },
    /// The command processor made a full retirement pass without progress:
    /// some queued command waits on an event that will never resolve.
    QueueStalled { reason: String },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::OutOfMemory {
                device,
                requested_bytes,
                free_bytes,
            } => write!(
                f,
                "device {device}: out of memory (requested {requested_bytes} B, free {free_bytes} B)"
            ),
            GpuError::InvalidLaunch { reason } => write!(f, "invalid launch: {reason}"),
            GpuError::WrongDevice { expected, actual } => {
                write!(f, "buffer belongs to device {expected}, used on {actual}")
            }
            GpuError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} elements, got {actual}")
            }
            GpuError::NoPeerLink { from, to } => {
                write!(f, "no peer link between device {from} and device {to}")
            }
            GpuError::NoSuchDevice { device } => write!(f, "no such device: {device}"),
            GpuError::InvalidCapture { reason } => write!(f, "invalid graph capture: {reason}"),
            GpuError::QueueStalled { reason } => write!(f, "command queue stalled: {reason}"),
        }
    }
}

impl std::error::Error for GpuError {}

/// Helper constructing an [`GpuError::InvalidLaunch`] for a grid/block issue.
pub(crate) fn invalid_launch(grid: Dim3, block: Dim3, why: &str) -> GpuError {
    GpuError::InvalidLaunch {
        reason: format!("grid {grid} block {block}: {why}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GpuError::OutOfMemory {
            device: 1,
            requested_bytes: 2048,
            free_bytes: 100,
        };
        let msg = e.to_string();
        assert!(msg.contains("2048"));
        assert!(msg.contains("device 1"));

        let e = invalid_launch(Dim3::x(0), Dim3::x(32), "grid.x must be >= 1");
        assert!(e.to_string().contains("grid.x"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GpuError::NoSuchDevice { device: 3 });
    }
}
