//! # sagegpu — GPU programming for AI workflows, reproduced in Rust
//!
//! This is the facade crate of the reproduction of *"GPU Programming for
//! AI Workflow Development on AWS SageMaker: An Instructional Approach"*
//! (SC 2025). The paper describes a course whose technical stack runs from
//! cloud provisioning through CUDA-style GPU programming up to distributed
//! GCN training and RAG serving; this workspace rebuilds every layer of
//! that stack as simulation-backed Rust libraries:
//!
//! | Layer | Crate (re-exported here as) |
//! |---|---|
//! | AWS control plane (EC2/VPC/IAM/SageMaker/billing) | [`cloud`] |
//! | CUDA-like GPU execution + cost model | [`gpu`] |
//! | Dense/sparse tensors with GPU-charged ops | [`tensor`] |
//! | Autograd, GCN layers, optimizers | [`nn`] |
//! | Graphs, SBM datasets, METIS-like partitioning | [`graph`] |
//! | Dask-like scheduler with GPU-pinned workers | [`taskflow`] |
//! | Nsight-like profiler | [`profiler`] |
//! | Algorithm 1 (distributed GCN training) | [`gcn`] |
//! | RAG pipelines (FAISS-style indexes, generator) | [`rag`] |
//! | RL agents: gridworlds, tabular Q, DQN, multi-GPU | [`rl`] |
//! | RAPIDS/Dask-style dataframes | [`df`] |
//! | Statistics (Shapiro–Wilk, Levene, Mann–Whitney…) | [`stats`] |
//! | Cohort simulator behind the paper's evaluation | [`edu`] |
//!
//! On top of the re-exports, [`workflow`] offers the course's own loop —
//! provision a student environment, run a lab workload, profile it, tear
//! down and read the bill — and [`labs`] packages three canonical labs
//! (matmul/memory, distributed GCN, RAG serving) used by the examples and
//! benchmarks. Both speak [`error::SageError`], the single error surface
//! folding every layer's error enum, so `?` composes across layers.
//!
//! ```
//! use sagegpu_core::workflow::LabEnvironment;
//!
//! let mut env = LabEnvironment::provision("student-01", 1).unwrap();
//! let report = sagegpu_core::labs::matmul_lab(&env, 128).unwrap();
//! assert!(report.gpu_time_ns > 0);
//! let bill = env.teardown().unwrap();
//! assert!(bill.total_usd >= 0.0);
//! ```

pub use cloud_sim as cloud;
pub use gpu_sim as gpu;
pub use sagegpu_df as df;
pub use sagegpu_edu as edu;
pub use sagegpu_gcn as gcn;
pub use sagegpu_graph as graph;
pub use sagegpu_nn as nn;
pub use sagegpu_profiler as profiler;
pub use sagegpu_rag as rag;
pub use sagegpu_rl as rl;
pub use sagegpu_stats as stats;
pub use sagegpu_tensor as tensor;
pub use taskflow;

pub mod error;
pub mod labs;
pub mod workflow;

/// Convenient glob-import of the most-used types across the stack.
pub mod prelude {
    pub use crate::error::{SageError, SageResult};
    pub use crate::labs::{cnn_lab, gcn_lab, matmul_lab, rag_lab, LabReport};
    pub use crate::workflow::{CostBill, LabEnvironment};
    pub use cloud_sim::prelude::*;
    pub use gpu_sim::prelude::*;
}
