//! The course workflow: provision → work → profile → teardown → bill.
//!
//! §III-A's student loop, as an API: each assessment began with the
//! bootstrap script (VPC, subnet, notebook, GPU instances under the
//! student's IAM role), work ran on the provisioned GPUs, profilers were
//! consulted, and everything was terminated with usage billed against the
//! student's cap. [`LabEnvironment`] packages that loop over the simulated
//! cloud and simulated GPUs.

use crate::error::SageResult;
use cloud_sim::bootstrap::{BootstrapOutcome, BootstrapPlan};
use cloud_sim::provider::{CloudProvider, Region};
use gpu_sim::cluster::LinkKind;
use gpu_sim::{DeviceSpec, Gpu, GpuCluster};
use sagegpu_profiler::bottleneck::{analyze, BottleneckReport};
use sagegpu_profiler::opstats::OpStatsTable;
use sagegpu_profiler::timeline::Timeline;
use std::sync::Arc;

/// The final bill of one provisioned session.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBill {
    pub student: String,
    pub total_usd: f64,
    pub gpu_hours: f64,
    pub remaining_budget_usd: f64,
}

/// A provisioned student lab environment: cloud resources plus the
/// simulated GPUs that correspond to the launched instances.
pub struct LabEnvironment {
    cloud: CloudProvider,
    role: String,
    outcome: BootstrapOutcome,
    gpus: Arc<GpuCluster>,
    torn_down: bool,
}

impl LabEnvironment {
    /// Provisions a fresh environment for `student` with `gpu_count`
    /// simulated T4s (1 = the single-GPU lab plan, >1 = the multi-GPU
    /// plan; the course capped students at 3 concurrent GPUs).
    pub fn provision(student: &str, gpu_count: usize) -> SageResult<Self> {
        let cloud = CloudProvider::new(Region::UsEast1);
        let role = cloud.create_student_role(student, 100.0)?;
        let plan = if gpu_count <= 1 {
            BootstrapPlan::single_gpu_lab("lab")
        } else {
            let mut p = BootstrapPlan::multi_gpu_lab("lab");
            for step in &mut p.steps {
                if let cloud_sim::bootstrap::BootstrapStep::LaunchInstances { count, .. } = step {
                    *count = gpu_count as u32;
                }
            }
            p
        };
        let outcome = plan.execute(&cloud, &role).map_err(|(e, _)| e)?;
        let gpus = Arc::new(GpuCluster::homogeneous(
            gpu_count.max(1),
            DeviceSpec::t4(),
            LinkKind::Pcie,
        ));
        Ok(Self {
            cloud,
            role,
            outcome,
            gpus,
            torn_down: false,
        })
    }

    /// The student's IAM role name.
    pub fn student(&self) -> &str {
        &self.role
    }

    /// The simulated cloud control plane.
    pub fn cloud(&self) -> &CloudProvider {
        &self.cloud
    }

    /// The simulated GPU cluster backing the launched instances.
    pub fn gpus(&self) -> &Arc<GpuCluster> {
        &self.gpus
    }

    /// The first (or only) GPU.
    pub fn gpu(&self) -> &Arc<Gpu> {
        self.gpus.device(0).expect("cluster is non-empty")
    }

    /// Number of provisioned GPU instances.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Marks lab activity on the cloud instances (defeats the idle reaper)
    /// and advances the cloud clock by `secs` of working time.
    pub fn work_for(&self, secs: u64) -> SageResult<()> {
        self.cloud.clock().advance_secs(secs);
        for id in &self.outcome.instances {
            self.cloud.touch_instance(id)?;
        }
        Ok(())
    }

    /// Profiler view: the Nsight-style timeline of everything run so far.
    pub fn timeline(&self) -> Timeline {
        Timeline::from_recorder(self.gpus.recorder())
    }

    /// Profiler view: per-op aggregate statistics.
    pub fn op_stats(&self) -> OpStatsTable {
        OpStatsTable::from_events(&self.gpus.recorder().snapshot())
    }

    /// Profiler view: bottleneck report for device `d`.
    pub fn bottleneck_report(&self, d: usize) -> BottleneckReport {
        let spec = self
            .gpus
            .device(d)
            .map(|g| g.spec().clone())
            .unwrap_or_else(|_| DeviceSpec::t4());
        analyze(&self.timeline(), d as u32, &spec)
    }

    /// Terminates all cloud resources and returns the bill.
    pub fn teardown(&mut self) -> SageResult<CostBill> {
        if !self.torn_down {
            BootstrapPlan::teardown(&self.cloud, &self.role, &self.outcome);
            self.torn_down = true;
        }
        Ok(CostBill {
            student: self.role.clone(),
            total_usd: self.cloud.billing().cost_for(&self.role),
            gpu_hours: self.cloud.billing().gpu_hours_for(&self.role),
            remaining_budget_usd: self.cloud.billing().remaining_budget(&self.role),
        })
    }
}

impl Drop for LabEnvironment {
    fn drop(&mut self) {
        if !self.torn_down {
            BootstrapPlan::teardown(&self.cloud, &self.role, &self.outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_single_gpu_environment() {
        let env = LabEnvironment::provision("alice", 1).unwrap();
        assert_eq!(env.gpu_count(), 1);
        assert_eq!(env.student(), "alice");
        assert_eq!(env.cloud().list_running().len(), 1);
    }

    #[test]
    fn provision_multi_gpu_environment() {
        let env = LabEnvironment::provision("bob", 3).unwrap();
        assert_eq!(env.gpu_count(), 3);
        assert_eq!(env.cloud().list_running().len(), 3);
    }

    #[test]
    fn quota_blocks_oversized_requests_with_typed_error() {
        match LabEnvironment::provision("carol", 4) {
            Err(crate::error::SageError::Cloud(_)) => {}
            Err(other) => panic!("expected a cloud-layer quota error, got {other}"),
            Ok(_) => panic!("oversized request should have been rejected"),
        }
    }

    #[test]
    fn work_and_teardown_produce_a_bill() {
        let mut env = LabEnvironment::provision("dave", 1).unwrap();
        env.work_for(2 * 3600).unwrap();
        let bill = env.teardown().unwrap();
        // 2 h on a g4dn.xlarge ≈ $1.05, plus the notebook.
        assert!(
            bill.total_usd > 1.0 && bill.total_usd < 2.0,
            "bill {}",
            bill.total_usd
        );
        assert!((bill.gpu_hours - 2.0).abs() < 0.01);
        assert!(bill.remaining_budget_usd < 100.0);
        // Idempotent.
        let again = env.teardown().unwrap();
        assert_eq!(bill, again);
    }

    #[test]
    fn drop_cleans_up_instances() {
        let env = LabEnvironment::provision("erin", 2).unwrap();
        let running = env.cloud().list_running().len();
        assert_eq!(running, 2);
        drop(env);
        // Cloud is dropped with the env; nothing to assert post-drop other
        // than the Drop path not panicking.
    }

    #[test]
    fn profiler_views_reflect_gpu_work() {
        let env = LabEnvironment::provision("fred", 1).unwrap();
        let gpu = env.gpu();
        let _ = gpu.htod(&vec![0f32; 1 << 16]).unwrap();
        assert!(!env.timeline().is_empty());
        assert_eq!(env.op_stats().rows.len(), 1);
        let report = env.bottleneck_report(0);
        assert!(report.transfer_fraction > 0.0);
    }
}
