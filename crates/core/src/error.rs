//! One error surface over the whole stack.
//!
//! Every layer of the reproduction has its own typed error enum (the GPU
//! simulator's [`GpuError`], the scheduler's [`TaskError`], …). Code that
//! composes layers — the [`crate::workflow`] loop, the [`crate::labs`],
//! downstream experiment drivers — would otherwise juggle one error type
//! per call or, worse, flatten everything to strings. [`SageError`] folds
//! them into one sum type with `From` impls, so `?` works across layer
//! boundaries and callers match on a single enum.

use cloud_sim::provider::CloudError;
use gpu_sim::GpuError;
use sagegpu_df::DfError;
use sagegpu_graph::GraphError;
use sagegpu_rag::error::IndexError;
use sagegpu_stats::StatsError;
use sagegpu_tensor::TensorError;
use taskflow::TaskError;

/// Any error the stack can produce, one variant per layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SageError {
    /// Cloud control plane: quotas, budgets, missing resources.
    Cloud(CloudError),
    /// Simulated GPU: allocation, transfer, launch failures.
    Gpu(GpuError),
    /// Tensor ops: shape mismatches, device-residency errors.
    Tensor(TensorError),
    /// Graph construction and partitioning.
    Graph(GraphError),
    /// Scheduler: panics, retries exhausted, deadlines, unknown workers.
    Task(TaskError),
    /// Dataframe ops: missing columns, type mismatches.
    Df(DfError),
    /// Retrieval indexes: degenerate training sets, bad PQ/shard layouts.
    Index(IndexError),
    /// Statistical routines: degenerate samples, invalid parameters.
    Stats(StatsError),
}

/// Shorthand for stack-spanning results.
pub type SageResult<T> = Result<T, SageError>;

macro_rules! from_layer {
    ($variant:ident, $err:ty) => {
        impl From<$err> for SageError {
            fn from(e: $err) -> Self {
                SageError::$variant(e)
            }
        }
    };
}

from_layer!(Cloud, CloudError);
from_layer!(Gpu, GpuError);
from_layer!(Tensor, TensorError);
from_layer!(Graph, GraphError);
from_layer!(Task, TaskError);
from_layer!(Df, DfError);
from_layer!(Index, IndexError);
from_layer!(Stats, StatsError);

impl std::fmt::Display for SageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SageError::Cloud(e) => write!(f, "cloud: {e}"),
            SageError::Gpu(e) => write!(f, "gpu: {e}"),
            SageError::Tensor(e) => write!(f, "tensor: {e}"),
            SageError::Graph(e) => write!(f, "graph: {e}"),
            SageError::Task(e) => write!(f, "task: {e}"),
            SageError::Df(e) => write!(f, "dataframe: {e}"),
            SageError::Index(e) => write!(f, "index: {e}"),
            SageError::Stats(e) => write!(f, "stats: {e}"),
        }
    }
}

impl std::error::Error for SageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SageError::Cloud(e) => Some(e),
            SageError::Gpu(e) => Some(e),
            SageError::Tensor(e) => Some(e),
            SageError::Graph(e) => Some(e),
            SageError::Task(e) => Some(e),
            SageError::Df(e) => Some(e),
            SageError::Index(e) => Some(e),
            SageError::Stats(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_layer() -> Result<(), TensorError> {
        Err(TensorError::ShapeMismatch {
            expected: "2x3".into(),
            got: "4x5".into(),
        })
    }

    #[test]
    fn question_mark_lifts_layer_errors() {
        fn composed() -> SageResult<()> {
            tensor_layer()?;
            Ok(())
        }
        match composed() {
            Err(SageError::Tensor(TensorError::ShapeMismatch { expected, .. })) => {
                assert_eq!(expected, "2x3")
            }
            other => panic!("expected tensor shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn display_prefixes_the_layer() {
        let e = SageError::from(TaskError::NoGpu { worker: 2 });
        let msg = e.to_string();
        assert!(msg.starts_with("task: "), "{msg}");
        assert!(msg.contains("worker 2"), "{msg}");
    }

    #[test]
    fn index_errors_lift_with_the_layer_prefix() {
        let e = SageError::from(IndexError::NlistExceedsCorpus {
            nlist: 64,
            corpus: 10,
        });
        let msg = e.to_string();
        assert!(msg.starts_with("index: "), "{msg}");
        assert!(msg.contains("64"), "{msg}");
    }

    #[test]
    fn source_chains_to_the_layer_error() {
        use std::error::Error;
        let e = SageError::from(TaskError::Panicked("boom".into()));
        let src = e.source().expect("has a source");
        assert_eq!(src.to_string(), "task panicked: boom");
    }
}
