//! Canned course labs runnable against a [`crate::workflow::LabEnvironment`].
//!
//! Three representative labs spanning the syllabus: the week-3 matmul &
//! memory-profiling lab, the weeks-8–10 distributed GCN training labs
//! (Algorithm 1), and the weeks-12–14 RAG serving labs. Each returns a
//! [`LabReport`] with real results plus the simulated GPU time — the pair
//! the course graded on.

use crate::error::SageResult;
use crate::workflow::LabEnvironment;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sagegpu_gcn::distributed::{train_distributed, PartitionStrategy};
use sagegpu_gcn::sequential::train_sequential;
use sagegpu_gcn::TrainConfig;
use sagegpu_graph::generators::{sbm, SbmParams};
use sagegpu_rag::pipeline::build_flat_pipeline;
use sagegpu_tensor::dense::Tensor;
use sagegpu_tensor::gpu_exec::GpuExecutor;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Result of one lab run.
#[derive(Debug, Clone, PartialEq)]
pub struct LabReport {
    pub lab: &'static str,
    /// Total simulated GPU time consumed by the lab (ns).
    pub gpu_time_ns: u64,
    /// Lab-specific scalar results (named metrics).
    pub metrics: BTreeMap<&'static str, f64>,
}

/// Week 3 — matrix multiplication with memory profiling: uploads two
/// `n × n` operands, multiplies on the device, reads the product back, and
/// reports the transfer-vs-compute split (Assignment 1's deliverable).
pub fn matmul_lab(env: &LabEnvironment, n: usize) -> SageResult<LabReport> {
    let gpu = Arc::clone(env.gpu());
    let exec = GpuExecutor::new(Arc::clone(&gpu));
    let t0 = gpu.now_ns();
    let mut rng = SmallRng::seed_from_u64(3);
    let a = Tensor::randn(n, n, &mut rng);
    let b = Tensor::randn(n, n, &mut rng);
    let da = exec.upload(&a)?;
    let db = exec.upload(&b)?;
    let c = exec.matmul(&da, &db)?;
    let c = exec.download(&c)?;
    let gpu_time_ns = gpu.now_ns() - t0;

    // The lab's analysis: what fraction went to transfers?
    let stats = env.op_stats();
    let transfer_ns: u64 = stats
        .rows
        .iter()
        .filter(|r| r.kind.is_transfer())
        .map(|r| r.total_ns)
        .sum();
    let kernel = stats.get("sgemm").expect("matmul kernel ran");
    let mut metrics = BTreeMap::new();
    metrics.insert("n", n as f64);
    metrics.insert(
        "transfer_fraction",
        transfer_ns as f64 / gpu_time_ns.max(1) as f64,
    );
    metrics.insert("achieved_gflops", kernel.achieved_gflops());
    metrics.insert("checksum", c.sum() as f64);
    Ok(LabReport {
        lab: "matmul-memory-profiling",
        gpu_time_ns,
        metrics,
    })
}

/// Weeks 8–10 — distributed GCN training (Algorithm 1): trains on an SBM
/// dataset across the environment's GPUs with METIS partitioning and
/// reports accuracy plus the speedup over sequential training.
pub fn gcn_lab(env: &LabEnvironment, nodes_per_class: usize) -> SageResult<LabReport> {
    let ds = sbm(
        &SbmParams {
            block_sizes: vec![nodes_per_class; 3],
            p_in: 0.15,
            p_out: 0.01,
            feature_dim: 32,
            feature_separation: 1.2,
            train_fraction: 0.5,
        },
        17,
    )?;
    let cfg = TrainConfig {
        epochs: 20,
        ..Default::default()
    };
    let seq = train_sequential(&ds, &cfg);
    let k = env.gpu_count().max(1);
    let dist = train_distributed(&ds, k, &cfg, PartitionStrategy::Metis)?;
    let mut metrics = BTreeMap::new();
    metrics.insert("k", k as f64);
    metrics.insert("sequential_accuracy", seq.test_accuracy);
    metrics.insert("distributed_accuracy", dist.test_accuracy);
    metrics.insert(
        "speedup",
        seq.sim_time_ns as f64 / dist.sim_time_ns.max(1) as f64,
    );
    metrics.insert("edge_cut", dist.edge_cut);
    Ok(LabReport {
        lab: "distributed-gcn",
        gpu_time_ns: dist.sim_time_ns,
        metrics,
    })
}

/// Week 8 — CNN training: trains the small conv → ReLU → GAP → linear
/// classifier on the shifted-strokes dataset, charging each optimization
/// step to the environment's GPU as a fused im2col-GEMM kernel.
pub fn cnn_lab(env: &LabEnvironment, steps: usize) -> SageResult<LabReport> {
    use sagegpu_nn::conv::{patches_per_image, stroke_digits, SmallCnn};
    use sagegpu_nn::metrics::accuracy;
    use sagegpu_nn::optim::{Adam, Optimizer};
    use sagegpu_nn::tape::Tape;

    let gpu = Arc::clone(env.gpu());
    let (train, train_labels) = stroke_digits(64, 0.15, 2);
    let (test, test_labels) = stroke_digits(32, 0.15, 99);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut cnn = SmallCnn::new(3, 8, 4, &mut rng);
    let mut opt = Adam::new(0.03);
    let mask = vec![true; train.batch];

    let p = patches_per_image(train.height, train.width, 3) as u64;
    let gemm_rows = train.batch as u64 * p;
    let profile = gpu_sim::KernelProfile {
        // conv GEMM fwd+bwd (3x) + head GEMM, im2col bytes streamed.
        flops: 3 * 2 * gemm_rows * 9 * 8 + 3 * 2 * train.batch as u64 * 8 * 4,
        bytes: 4 * 3 * (gemm_rows * 9 + gemm_rows * 8 + train.batch as u64 * 8),
        access: gpu_sim::AccessPattern::Coalesced,
        registers_per_thread: 48,
    };
    let launch = gpu_sim::LaunchConfig::for_elements(gemm_rows, 128);

    let mut first_loss = 0.0f32;
    let mut last_loss = 0.0f32;
    for step in 0..steps {
        let loss_val =
            gpu_sim::LaunchSpec::new("cnn_train_step", launch, profile).run(&gpu, || {
                let tape = Tape::new();
                let fwd = cnn.forward(&tape, &train);
                let loss = tape.cross_entropy(fwd.logits, &train_labels, &mask);
                let loss_val = tape.value(loss).get(0, 0);
                let grads = tape.backward(loss);
                let grad_tensors: Vec<Tensor> = fwd
                    .params
                    .iter()
                    .map(|v| grads[v.index()].clone().expect("param grad"))
                    .collect();
                opt.step_all(cnn.parameters_mut(), &grad_tensors);
                loss_val
            })?;
        if step == 0 {
            first_loss = loss_val;
        }
        last_loss = loss_val;
    }
    let tape = Tape::new();
    let fwd = cnn.forward(&tape, &test);
    let test_acc = accuracy(
        &tape.value(fwd.logits),
        &test_labels,
        &vec![true; test.batch],
    );

    let mut metrics = BTreeMap::new();
    metrics.insert("steps", steps as f64);
    metrics.insert("first_loss", first_loss as f64);
    metrics.insert("last_loss", last_loss as f64);
    metrics.insert("test_accuracy", test_acc);
    Ok(LabReport {
        lab: "cnn-training",
        gpu_time_ns: gpu.now_ns(),
        metrics,
    })
}

/// Weeks 12–14 — RAG serving: builds the flat-index pipeline on the
/// environment's GPU, runs a batched workload, and reports p50/p99/QPS.
pub fn rag_lab(env: &LabEnvironment, corpus_size: usize, queries: usize) -> SageResult<LabReport> {
    let exec = GpuExecutor::new(Arc::clone(env.gpu()));
    let pipeline = build_flat_pipeline(corpus_size, 96, exec, 7);
    let workload: Vec<String> = (0..queries)
        .map(|i| sagegpu_rag::corpus::Corpus::topic_query(i % 5, 5, i as u64))
        .collect();
    let report = pipeline.run_workload(&workload, 8, 0);
    let mut metrics = BTreeMap::new();
    metrics.insert("queries", report.queries as f64);
    metrics.insert("p50_us", report.p50_us);
    metrics.insert("p99_us", report.p99_us);
    metrics.insert("throughput_qps", report.throughput_qps);
    metrics.insert("retrieve_fraction", report.retrieve_fraction);
    Ok(LabReport {
        lab: "rag-serving",
        gpu_time_ns: pipeline.gpu().gpu().now_ns(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_lab_reports_transfer_fraction() {
        let env = LabEnvironment::provision("s1", 1).unwrap();
        let small = matmul_lab(&env, 64).unwrap();
        assert!(small.gpu_time_ns > 0);
        let tf = small.metrics["transfer_fraction"];
        assert!((0.0..=1.0).contains(&tf));
        // Small matmuls are transfer-dominated — the lab's teaching point.
        assert!(tf > 0.5, "transfer fraction {tf} should dominate at n=64");
    }

    #[test]
    fn matmul_lab_achieved_gflops_grows_with_n() {
        // Assignment 1's profiling insight: larger matmuls amortize launch
        // overhead and climb the roofline toward peak FLOP throughput.
        let env1 = LabEnvironment::provision("s2", 1).unwrap();
        let small = matmul_lab(&env1, 64).unwrap();
        let env2 = LabEnvironment::provision("s3", 1).unwrap();
        let big = matmul_lab(&env2, 256).unwrap();
        assert!(
            big.metrics["achieved_gflops"] > 5.0 * small.metrics["achieved_gflops"],
            "achieved GFLOP/s should grow sharply: {} vs {}",
            small.metrics["achieved_gflops"],
            big.metrics["achieved_gflops"]
        );
    }

    #[test]
    fn gcn_lab_trains_and_reports() {
        let env = LabEnvironment::provision("s4", 2).unwrap();
        let r = gcn_lab(&env, 40).unwrap();
        assert_eq!(r.metrics["k"], 2.0);
        assert!(r.metrics["distributed_accuracy"] > 0.5);
        assert!(r.metrics["speedup"] > 0.0);
        assert!(r.metrics["edge_cut"] >= 0.0);
    }

    #[test]
    fn cnn_lab_trains_to_usable_accuracy() {
        let env = LabEnvironment::provision("s6", 1).unwrap();
        let r = cnn_lab(&env, 60).unwrap();
        assert!(r.metrics["last_loss"] < 0.5 * r.metrics["first_loss"]);
        assert!(
            r.metrics["test_accuracy"] > 0.7,
            "acc {}",
            r.metrics["test_accuracy"]
        );
        assert!(r.gpu_time_ns > 0);
    }

    #[test]
    fn rag_lab_reports_latency_distribution() {
        let env = LabEnvironment::provision("s5", 1).unwrap();
        let r = rag_lab(&env, 30, 12).unwrap();
        assert_eq!(r.metrics["queries"], 12.0);
        assert!(r.metrics["p99_us"] >= r.metrics["p50_us"]);
        assert!(r.metrics["throughput_qps"] > 0.0);
    }
}
