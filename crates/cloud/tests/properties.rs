//! Property-based invariants of the cloud control plane.

use cloud_sim::prelude::*;
use cloud_sim::pricing::billable_cost;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Billing is monotone in runtime and never below the 60 s minimum.
    #[test]
    fn billing_monotone(rate in 0.01f64..50.0, s1 in 0u64..1_000_000, s2 in 0u64..1_000_000) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let c_lo = billable_cost(rate, lo);
        let c_hi = billable_cost(rate, hi);
        prop_assert!(c_lo <= c_hi + 1e-12);
        prop_assert!(c_lo >= rate * 60.0 / 3600.0 - 1e-12);
    }

    /// CIDR parse→display→parse is a fixed point.
    #[test]
    fn cidr_roundtrip(a in 0u32..=255, b in 0u32..=255, c in 0u32..=255, d in 0u32..=255, p in 0u8..=32) {
        let s = format!("{a}.{b}.{c}.{d}/{p}");
        let cidr = Cidr::parse(&s).unwrap();
        let reparsed = Cidr::parse(&cidr.to_string()).unwrap();
        prop_assert_eq!(cidr, reparsed);
        // The base address is always inside its own block.
        prop_assert!(cidr.contains_ip(cidr.base));
    }

    /// A block always contains any longer-prefix sub-block of itself.
    #[test]
    fn cidr_nesting(a in 0u32..=255, b in 0u32..=255, p1 in 8u8..=24, extra in 0u8..=8) {
        let outer = Cidr::parse(&format!("{a}.{b}.0.0/{p1}")).unwrap();
        let inner = Cidr { base: outer.base, prefix: p1 + extra };
        prop_assert!(outer.contains(&inner));
        prop_assert!(outer.overlaps(&inner));
        if extra > 0 {
            prop_assert!(!inner.contains(&outer));
        }
    }

    /// Instance lifecycle: cost accrues only while Running, and is
    /// unchanged by stopped time, for any interleaving of durations.
    #[test]
    fn stop_time_is_free(run1 in 61u64..100_000, stopped in 0u64..1_000_000, run2 in 61u64..100_000) {
        let cloud = CloudProvider::new(Region::UsEast1);
        let role = cloud.create_student_role("s", 1e9).unwrap();
        let vpc = cloud.create_vpc("v", "10.0.0.0/16").unwrap();
        let subnet = cloud.create_subnet(&vpc, "n", "10.0.1.0/24").unwrap();
        let id = cloud.run_instance(&role, "g4dn.xlarge", &subnet).unwrap();
        cloud.clock().advance_secs(run1);
        cloud.stop_instance(&role, &id).unwrap();
        cloud.clock().advance_secs(stopped);
        let inst = cloud.describe_instance(&id).unwrap();
        prop_assert_eq!(inst.billable_secs(cloud.clock()), run1);
        let _ = run2;
    }

    /// IAM: the student policy never grants budget modification, no matter
    /// the resource string.
    #[test]
    fn student_cannot_modify_budget(resource in "[a-z0-9/_-]{1,40}") {
        let role = Role::new("s", vec![Policy::student_lab_policy()]);
        prop_assert!(!role.is_allowed(Action::ModifyBudget, &resource));
        prop_assert!(role.is_allowed(Action::DescribeInstances, &resource));
    }

    /// Subnet IP allocation never repeats and never leaves the block.
    #[test]
    fn ip_allocation_unique(prefix in 24u8..=28) {
        let mut vpc = Vpc::new(VpcId(1), "v", "10.1.0.0/16").unwrap();
        vpc.create_subnet(SubnetId(1), "s", &format!("10.1.2.0/{prefix}")).unwrap();
        let s = vpc.subnet_mut(SubnetId(1)).unwrap();
        let mut seen = std::collections::HashSet::new();
        while let Ok(ip) = s.allocate_ip() {
            prop_assert!(seen.insert(ip), "duplicate ip");
            prop_assert!(s.cidr.contains_ip(ip));
            if seen.len() > 300 { break; }
        }
        prop_assert!(!seen.is_empty());
    }
}
