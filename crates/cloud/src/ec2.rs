//! EC2-style compute instances: lifecycle, metering, idle tracking.

use crate::clock::SimClock;
use crate::pricing::{billable_cost, InstanceType};
use crate::vpc::{SubnetId, VpcId};
use serde::{Deserialize, Serialize};

/// Opaque instance identifier (`i-<n>` in display form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i-{:08x}", self.0)
    }
}

/// Instance lifecycle states, matching the EC2 state machine the course's
/// week-1 lab walks through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    Pending,
    Running,
    Stopping,
    Stopped,
    Terminated,
}

/// Errors from instance state transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum Ec2Error {
    /// The requested transition is not legal from the current state.
    InvalidTransition {
        from: InstanceState,
        requested: &'static str,
    },
}

impl std::fmt::Display for Ec2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ec2Error::InvalidTransition { from, requested } => {
                write!(f, "cannot {requested} an instance in state {from:?}")
            }
        }
    }
}

impl std::error::Error for Ec2Error {}

/// One compute instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    pub id: InstanceId,
    /// Owning principal (IAM role name).
    pub owner: String,
    pub instance_type: InstanceType,
    pub vpc: VpcId,
    pub subnet: SubnetId,
    /// Private IP within the subnet.
    pub private_ip: u32,
    pub state: InstanceState,
    /// Simulated second the instance entered `Running`.
    pub launched_at_secs: u64,
    /// Billable running seconds accumulated across run intervals.
    billed_run_secs: u64,
    /// Start of the current running interval, if running.
    run_started_at: Option<u64>,
    /// Last activity heartbeat (lab work touching the instance).
    pub last_activity_secs: u64,
}

impl Instance {
    /// Creates an instance directly in `Running` (the simulator treats the
    /// Pending phase as instantaneous but still records it for state-machine
    /// completeness via [`InstanceState::Pending`] in provider bootstraps).
    pub fn launch(
        id: InstanceId,
        owner: &str,
        instance_type: InstanceType,
        vpc: VpcId,
        subnet: SubnetId,
        private_ip: u32,
        clock: &SimClock,
    ) -> Self {
        let now = clock.now_secs();
        Self {
            id,
            owner: owner.to_owned(),
            instance_type,
            vpc,
            subnet,
            private_ip,
            state: InstanceState::Running,
            launched_at_secs: now,
            billed_run_secs: 0,
            run_started_at: Some(now),
            last_activity_secs: now,
        }
    }

    /// Whether the instance is in a billable state.
    pub fn is_running(&self) -> bool {
        self.state == InstanceState::Running
    }

    /// Records an activity heartbeat (used by the idle reaper).
    pub fn touch(&mut self, clock: &SimClock) {
        self.last_activity_secs = clock.now_secs();
    }

    /// Seconds since the last activity heartbeat.
    pub fn idle_secs(&self, clock: &SimClock) -> u64 {
        clock.now_secs().saturating_sub(self.last_activity_secs)
    }

    fn close_run_interval(&mut self, clock: &SimClock) {
        if let Some(start) = self.run_started_at.take() {
            self.billed_run_secs += clock.now_secs().saturating_sub(start);
        }
    }

    /// Stops the instance (billing pauses; state retained).
    pub fn stop(&mut self, clock: &SimClock) -> Result<(), Ec2Error> {
        match self.state {
            InstanceState::Running => {
                self.close_run_interval(clock);
                self.state = InstanceState::Stopped;
                Ok(())
            }
            from => Err(Ec2Error::InvalidTransition {
                from,
                requested: "stop",
            }),
        }
    }

    /// Restarts a stopped instance.
    pub fn start(&mut self, clock: &SimClock) -> Result<(), Ec2Error> {
        match self.state {
            InstanceState::Stopped => {
                self.state = InstanceState::Running;
                self.run_started_at = Some(clock.now_secs());
                self.last_activity_secs = clock.now_secs();
                Ok(())
            }
            from => Err(Ec2Error::InvalidTransition {
                from,
                requested: "start",
            }),
        }
    }

    /// Terminates the instance (irreversible).
    pub fn terminate(&mut self, clock: &SimClock) -> Result<(), Ec2Error> {
        match self.state {
            InstanceState::Running | InstanceState::Stopped | InstanceState::Pending => {
                self.close_run_interval(clock);
                self.state = InstanceState::Terminated;
                Ok(())
            }
            from => Err(Ec2Error::InvalidTransition {
                from,
                requested: "terminate",
            }),
        }
    }

    /// Total billable running seconds so far (including the open interval).
    pub fn billable_secs(&self, clock: &SimClock) -> u64 {
        let open = self
            .run_started_at
            .map(|s| clock.now_secs().saturating_sub(s))
            .unwrap_or(0);
        self.billed_run_secs + open
    }

    /// Accrued cost in USD under per-second billing with a 60 s minimum.
    pub fn accrued_cost(&self, clock: &SimClock) -> f64 {
        let secs = self.billable_secs(clock);
        if secs == 0 && self.state == InstanceState::Terminated {
            return 0.0;
        }
        billable_cost(self.instance_type.hourly_usd, secs)
    }

    /// AWS-style resource string for IAM checks: `owner/i-xxxxxxxx`.
    pub fn resource_name(&self) -> String {
        format!("{}/{}", self.owner, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::InstanceCatalog;

    fn inst(clock: &SimClock) -> Instance {
        let ty = InstanceCatalog::us_east_1()
            .get("g4dn.xlarge")
            .unwrap()
            .clone();
        Instance::launch(
            InstanceId(1),
            "student-01",
            ty,
            VpcId(1),
            SubnetId(1),
            0x0a000104,
            clock,
        )
    }

    #[test]
    fn billing_accrues_while_running() {
        let clock = SimClock::new();
        let i = inst(&clock);
        clock.advance_hours(2);
        assert_eq!(i.billable_secs(&clock), 7200);
        let cost = i.accrued_cost(&clock);
        assert!((cost - 2.0 * 0.526).abs() < 1e-9);
    }

    #[test]
    fn stop_pauses_billing_start_resumes() {
        let clock = SimClock::new();
        let mut i = inst(&clock);
        clock.advance_hours(1);
        i.stop(&clock).unwrap();
        clock.advance_hours(5); // stopped time is free
        assert_eq!(i.billable_secs(&clock), 3600);
        i.start(&clock).unwrap();
        clock.advance_hours(1);
        assert_eq!(i.billable_secs(&clock), 7200);
    }

    #[test]
    fn terminate_freezes_billing() {
        let clock = SimClock::new();
        let mut i = inst(&clock);
        clock.advance_secs(1800);
        i.terminate(&clock).unwrap();
        clock.advance_hours(100);
        assert_eq!(i.billable_secs(&clock), 1800);
        assert_eq!(i.state, InstanceState::Terminated);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let clock = SimClock::new();
        let mut i = inst(&clock);
        assert!(i.start(&clock).is_err(), "cannot start a running instance");
        i.terminate(&clock).unwrap();
        assert!(i.stop(&clock).is_err());
        assert!(i.start(&clock).is_err());
        assert!(i.terminate(&clock).is_err());
    }

    #[test]
    fn stop_start_stop_accumulates_intervals() {
        let clock = SimClock::new();
        let mut i = inst(&clock);
        clock.advance_secs(600);
        i.stop(&clock).unwrap();
        clock.advance_secs(1000);
        i.start(&clock).unwrap();
        clock.advance_secs(400);
        i.stop(&clock).unwrap();
        assert_eq!(i.billable_secs(&clock), 1000);
    }

    #[test]
    fn idle_tracking_resets_on_touch() {
        let clock = SimClock::new();
        let mut i = inst(&clock);
        clock.advance_secs(500);
        assert_eq!(i.idle_secs(&clock), 500);
        i.touch(&clock);
        assert_eq!(i.idle_secs(&clock), 0);
        clock.advance_secs(10);
        assert_eq!(i.idle_secs(&clock), 10);
    }

    #[test]
    fn minimum_minute_billing() {
        let clock = SimClock::new();
        let mut i = inst(&clock);
        clock.advance_secs(5);
        i.terminate(&clock).unwrap();
        // Billed as 60 seconds.
        assert!((i.accrued_cost(&clock) - 0.526 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn display_and_resource_name() {
        let clock = SimClock::new();
        let i = inst(&clock);
        assert_eq!(i.id.to_string(), "i-00000001");
        assert_eq!(i.resource_name(), "student-01/i-00000001");
    }
}
