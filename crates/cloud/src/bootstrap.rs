//! Assessment bootstrap plans.
//!
//! "Students were provided with a bootstrap script that simplified resource
//! configuration using their AWS credentials for each assessment" (§III-A).
//! A [`BootstrapPlan`] is that script in declarative form: an ordered list
//! of steps executed against the provider under the student's role. Plans
//! also support the misconfiguration modes the paper attributes student
//! struggles to (wrong subnet CIDRs, forgotten heartbeats), so the course
//! simulator can replay them.

use crate::ec2::InstanceId;
use crate::provider::{CloudError, CloudProvider, SubnetRef};
use crate::vpc::VpcId;

/// One step of a bootstrap plan.
#[derive(Debug, Clone, PartialEq)]
pub enum BootstrapStep {
    /// Ensure a VPC with this name/CIDR exists (creates it if missing).
    EnsureVpc { name: String, cidr: String },
    /// Carve a subnet out of the most recent `EnsureVpc`.
    EnsureSubnet { name: String, cidr: String },
    /// Launch `count` instances of `type_name` into the most recent subnet,
    /// tagged with the assessment name.
    LaunchInstances { type_name: String, count: u32 },
    /// Create a SageMaker notebook for the student.
    CreateNotebook { type_name: String },
    /// Record a heartbeat on every launched instance (protects them from
    /// the idle reaper during setup).
    Heartbeat,
}

/// Result of executing a plan.
#[derive(Debug, Clone, Default)]
pub struct BootstrapOutcome {
    /// Instances launched, in launch order.
    pub instances: Vec<InstanceId>,
    /// Notebook ids created.
    pub notebooks: Vec<u64>,
    /// VPC the plan worked in, if any.
    pub vpc: Option<VpcId>,
    /// Subnet instances were placed in, if any.
    pub subnet: Option<SubnetRef>,
}

/// A declarative per-assessment setup script.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapPlan {
    /// Assessment name used as the activity tag, e.g. `"assignment-3"`.
    pub activity: String,
    pub steps: Vec<BootstrapStep>,
}

impl BootstrapPlan {
    /// The standard single-GPU lab plan the course handed out.
    pub fn single_gpu_lab(activity: &str) -> Self {
        Self {
            activity: activity.to_owned(),
            steps: vec![
                BootstrapStep::EnsureVpc {
                    name: "course".into(),
                    cidr: "10.0.0.0/16".into(),
                },
                BootstrapStep::EnsureSubnet {
                    name: "lab".into(),
                    cidr: "10.0.1.0/24".into(),
                },
                BootstrapStep::CreateNotebook {
                    type_name: "ml.t3.medium".into(),
                },
                BootstrapStep::LaunchInstances {
                    type_name: "g4dn.xlarge".into(),
                    count: 1,
                },
                BootstrapStep::Heartbeat,
            ],
        }
    }

    /// The multi-GPU (distributed training) plan: three single-GPU
    /// instances in one subnet, per the course's 3-GPU cap.
    pub fn multi_gpu_lab(activity: &str) -> Self {
        Self {
            activity: activity.to_owned(),
            steps: vec![
                BootstrapStep::EnsureVpc {
                    name: "course".into(),
                    cidr: "10.0.0.0/16".into(),
                },
                BootstrapStep::EnsureSubnet {
                    name: "ddp".into(),
                    cidr: "10.0.2.0/24".into(),
                },
                BootstrapStep::LaunchInstances {
                    type_name: "g4dn.xlarge".into(),
                    count: 3,
                },
                BootstrapStep::Heartbeat,
            ],
        }
    }

    /// The classic student mistake behind Fig. 4b: the subnet CIDR is not
    /// inside the VPC block, so the plan fails at the subnet step.
    pub fn with_wrong_subnet(mut self) -> Self {
        for step in &mut self.steps {
            if let BootstrapStep::EnsureSubnet { cidr, .. } = step {
                *cidr = "192.168.1.0/24".into();
            }
        }
        self
    }

    /// Executes the plan under `role`, stopping at the first error.
    /// On error the partially provisioned outcome is returned alongside.
    // The outcome rides in the error so callers can tear down the partial
    // provision; that intentionally makes the Err variant large.
    #[allow(clippy::result_large_err)]
    pub fn execute(
        &self,
        cloud: &CloudProvider,
        role: &str,
    ) -> Result<BootstrapOutcome, (CloudError, BootstrapOutcome)> {
        let mut out = BootstrapOutcome::default();
        for step in &self.steps {
            match step {
                BootstrapStep::EnsureVpc { name, cidr } => match cloud.create_vpc(name, cidr) {
                    Ok(id) => out.vpc = Some(id),
                    Err(e) => return Err((e, out)),
                },
                BootstrapStep::EnsureSubnet { name, cidr } => {
                    let Some(vpc) = out.vpc else {
                        return Err((CloudError::NotFound("no VPC from prior step".into()), out));
                    };
                    match cloud.create_subnet(&vpc, name, cidr) {
                        Ok(s) => out.subnet = Some(s),
                        Err(e) => return Err((e, out)),
                    }
                }
                BootstrapStep::LaunchInstances { type_name, count } => {
                    let Some(subnet) = out.subnet else {
                        return Err((
                            CloudError::NotFound("no subnet from prior step".into()),
                            out,
                        ));
                    };
                    for _ in 0..*count {
                        match cloud.run_instance_tagged(role, type_name, &subnet, &self.activity) {
                            Ok(id) => out.instances.push(id),
                            Err(e) => return Err((e, out)),
                        }
                    }
                }
                BootstrapStep::CreateNotebook { type_name } => {
                    match cloud.create_notebook(
                        role,
                        &format!("{}-{role}", self.activity),
                        type_name,
                    ) {
                        Ok(id) => out.notebooks.push(id),
                        Err(e) => return Err((e, out)),
                    }
                }
                BootstrapStep::Heartbeat => {
                    for id in &out.instances {
                        if let Err(e) = cloud.touch_instance(id) {
                            return Err((e, out));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Tears down everything a plan provisioned (end-of-assessment cleanup).
    pub fn teardown(cloud: &CloudProvider, role: &str, outcome: &BootstrapOutcome) {
        for id in &outcome.instances {
            let _ = cloud.terminate_instance(role, id);
        }
        for nb in &outcome.notebooks {
            let _ = cloud.delete_notebook(role, *nb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::Region;

    fn cloud_with_student() -> (CloudProvider, String) {
        let cloud = CloudProvider::new(Region::UsEast1);
        let s = cloud.create_student_role("s1", 100.0).unwrap();
        (cloud, s)
    }

    #[test]
    fn single_gpu_plan_provisions_everything() {
        let (cloud, s) = cloud_with_student();
        let out = BootstrapPlan::single_gpu_lab("lab-2")
            .execute(&cloud, &s)
            .unwrap();
        assert_eq!(out.instances.len(), 1);
        assert_eq!(out.notebooks.len(), 1);
        assert!(out.vpc.is_some() && out.subnet.is_some());
        assert_eq!(cloud.list_running().len(), 1);
    }

    #[test]
    fn multi_gpu_plan_launches_three_connected_instances() {
        let (cloud, s) = cloud_with_student();
        let out = BootstrapPlan::multi_gpu_lab("assignment-3")
            .execute(&cloud, &s)
            .unwrap();
        assert_eq!(out.instances.len(), 3);
        for pair in out.instances.windows(2) {
            assert!(cloud.can_reach(&pair[0], &pair[1]).unwrap());
        }
    }

    #[test]
    fn wrong_subnet_plan_fails_at_subnet_step() {
        let (cloud, s) = cloud_with_student();
        let plan = BootstrapPlan::single_gpu_lab("lab-2").with_wrong_subnet();
        let (err, partial) = plan.execute(&cloud, &s).unwrap_err();
        assert!(matches!(err, CloudError::Vpc(_)));
        assert!(
            partial.vpc.is_some(),
            "VPC step succeeded before the failure"
        );
        assert!(partial.instances.is_empty(), "no instances were launched");
    }

    #[test]
    fn teardown_terminates_and_bills() {
        let (cloud, s) = cloud_with_student();
        let plan = BootstrapPlan::multi_gpu_lab("assignment-3");
        let out = plan.execute(&cloud, &s).unwrap();
        cloud.clock().advance_hours(2);
        BootstrapPlan::teardown(&cloud, &s, &out);
        assert!(cloud.list_running().is_empty());
        // 3 instances × 2 h × $0.526.
        let cost = cloud.billing().cost_for(&s);
        assert!((cost - 3.0 * 2.0 * 0.526).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn quota_violation_returns_partial_outcome() {
        let (cloud, s) = cloud_with_student();
        let mut plan = BootstrapPlan::multi_gpu_lab("big");
        if let Some(BootstrapStep::LaunchInstances { count, .. }) = plan
            .steps
            .iter_mut()
            .find(|st| matches!(st, BootstrapStep::LaunchInstances { .. }))
        {
            *count = 5; // over the 3-GPU quota
        }
        let (err, partial) = plan.execute(&cloud, &s).unwrap_err();
        assert!(matches!(err, CloudError::GpuQuotaExceeded { .. }));
        assert_eq!(partial.instances.len(), 3);
    }
}
