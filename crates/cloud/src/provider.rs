//! The cloud-provider facade: one object that owns the clock, catalog,
//! IAM roles, VPCs, instances, notebooks, and the billing ledger, and
//! enforces the course's governance rules (IAM, budgets, GPU quotas) on
//! every control-plane call.

use crate::billing::{BillingLedger, UsageRecord};
use crate::clock::SimClock;
use crate::ec2::{Instance, InstanceId, InstanceState};
use crate::iam::{Action, Policy, Role};
use crate::pricing::InstanceCatalog;
use crate::sagemaker::NotebookInstance;
use crate::vpc::{SubnetId, Vpc, VpcError, VpcId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// AWS regions the simulator knows about. The paper pins everything to
/// US East (N. Virginia) "for efficient management and monitoring".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    UsEast1,
    UsWest2,
}

impl Region {
    /// API name of the region.
    pub fn as_str(&self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsWest2 => "us-west-2",
        }
    }
}

/// A (vpc, subnet) handle returned by subnet creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubnetRef {
    pub vpc: VpcId,
    pub subnet: SubnetId,
}

/// Errors from provider control-plane calls.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// IAM evaluation denied the call.
    AccessDenied { role: String, action: &'static str },
    /// The principal's budget cap is exhausted.
    BudgetExceeded { role: String, spent: f64, cap: f64 },
    /// The principal would exceed the concurrent-GPU quota.
    GpuQuotaExceeded {
        role: String,
        in_use: u32,
        quota: u32,
    },
    /// Unknown instance type, role, VPC, subnet, or instance.
    NotFound(String),
    /// A role with this name already exists.
    RoleExists(String),
    /// VPC/subnet configuration error.
    Vpc(VpcError),
    /// Illegal instance state transition.
    Lifecycle(String),
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::AccessDenied { role, action } => {
                write!(f, "access denied: role {role} may not {action}")
            }
            CloudError::BudgetExceeded { role, spent, cap } => {
                write!(
                    f,
                    "budget exceeded for {role}: spent ${spent:.2} of ${cap:.2}"
                )
            }
            CloudError::GpuQuotaExceeded {
                role,
                in_use,
                quota,
            } => {
                write!(
                    f,
                    "GPU quota exceeded for {role}: {in_use} in use, quota {quota}"
                )
            }
            CloudError::NotFound(what) => write!(f, "not found: {what}"),
            CloudError::RoleExists(name) => write!(f, "role already exists: {name}"),
            CloudError::Vpc(e) => write!(f, "vpc error: {e}"),
            CloudError::Lifecycle(e) => write!(f, "lifecycle error: {e}"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<VpcError> for CloudError {
    fn from(e: VpcError) -> Self {
        CloudError::Vpc(e)
    }
}

/// The simulated cloud.
pub struct CloudProvider {
    region: Region,
    clock: SimClock,
    catalog: InstanceCatalog,
    billing: BillingLedger,
    /// Concurrent GPUs allowed per principal (paper: "up to 3").
    gpu_quota: u32,
    roles: RwLock<HashMap<String, Role>>,
    vpcs: RwLock<HashMap<VpcId, Vpc>>,
    instances: RwLock<HashMap<InstanceId, Instance>>,
    notebooks: RwLock<HashMap<u64, NotebookInstance>>,
    /// Activity tags (lab/assignment names) keyed by instance, kept outside
    /// `Instance` so the ec2 module stays a pure state machine.
    activities: RwLock<HashMap<InstanceId, String>>,
    next_id: AtomicU64,
}

impl CloudProvider {
    /// A provider for `region` with the default catalog and a 3-GPU quota.
    pub fn new(region: Region) -> Self {
        Self {
            region,
            clock: SimClock::new(),
            catalog: InstanceCatalog::us_east_1(),
            billing: BillingLedger::new(),
            gpu_quota: 3,
            roles: RwLock::new(HashMap::new()),
            vpcs: RwLock::new(HashMap::new()),
            instances: RwLock::new(HashMap::new()),
            notebooks: RwLock::new(HashMap::new()),
            activities: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The simulated clock (advance it to make time pass).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The region this provider serves.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The billing ledger.
    pub fn billing(&self) -> &BillingLedger {
        &self.billing
    }

    /// The instance-type catalog.
    pub fn catalog(&self) -> &InstanceCatalog {
        &self.catalog
    }

    /// Overrides the per-principal concurrent-GPU quota.
    pub fn set_gpu_quota(&mut self, quota: u32) {
        self.gpu_quota = quota;
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // IAM
    // ------------------------------------------------------------------

    /// Creates a student role with the standard lab policy and a budget cap.
    pub fn create_student_role(&self, name: &str, budget_usd: f64) -> Result<String, CloudError> {
        let mut roles = self.roles.write();
        if roles.contains_key(name) {
            return Err(CloudError::RoleExists(name.to_owned()));
        }
        roles.insert(
            name.to_owned(),
            Role::new(name, vec![Policy::student_lab_policy()]),
        );
        self.billing.set_budget(name, budget_usd);
        Ok(name.to_owned())
    }

    /// Creates an unrestricted instructor/admin role.
    pub fn create_admin_role(&self, name: &str) -> Result<String, CloudError> {
        let mut roles = self.roles.write();
        if roles.contains_key(name) {
            return Err(CloudError::RoleExists(name.to_owned()));
        }
        roles.insert(
            name.to_owned(),
            Role::new(name, vec![Policy::admin_policy()]),
        );
        Ok(name.to_owned())
    }

    fn authorize(&self, role: &str, action: Action, resource: &str) -> Result<(), CloudError> {
        let roles = self.roles.read();
        let r = roles
            .get(role)
            .ok_or_else(|| CloudError::NotFound(format!("role {role}")))?;
        if r.is_allowed(action, resource) {
            Ok(())
        } else {
            Err(CloudError::AccessDenied {
                role: role.to_owned(),
                action: action.as_str(),
            })
        }
    }

    // ------------------------------------------------------------------
    // Networking
    // ------------------------------------------------------------------

    /// Creates a VPC over a CIDR block.
    pub fn create_vpc(&self, name: &str, cidr: &str) -> Result<VpcId, CloudError> {
        let id = VpcId(self.fresh_id());
        let vpc = Vpc::new(id, name, cidr)?;
        self.vpcs.write().insert(id, vpc);
        Ok(id)
    }

    /// Carves a subnet out of an existing VPC.
    pub fn create_subnet(
        &self,
        vpc: &VpcId,
        name: &str,
        cidr: &str,
    ) -> Result<SubnetRef, CloudError> {
        let mut vpcs = self.vpcs.write();
        let v = vpcs
            .get_mut(vpc)
            .ok_or_else(|| CloudError::NotFound(format!("vpc {vpc:?}")))?;
        let sid = SubnetId(self.fresh_id());
        v.create_subnet(sid, name, cidr)?;
        Ok(SubnetRef {
            vpc: *vpc,
            subnet: sid,
        })
    }

    /// Whether two running instances can reach each other (same VPC).
    pub fn can_reach(&self, a: &InstanceId, b: &InstanceId) -> Result<bool, CloudError> {
        let instances = self.instances.read();
        let ia = instances
            .get(a)
            .ok_or_else(|| CloudError::NotFound(format!("instance {a}")))?;
        let ib = instances
            .get(b)
            .ok_or_else(|| CloudError::NotFound(format!("instance {b}")))?;
        if ia.vpc != ib.vpc {
            return Ok(false);
        }
        let vpcs = self.vpcs.read();
        let v = vpcs
            .get(&ia.vpc)
            .ok_or_else(|| CloudError::NotFound(format!("vpc {:?}", ia.vpc)))?;
        Ok(v.can_reach(ia.private_ip, ib.private_ip))
    }

    // ------------------------------------------------------------------
    // EC2
    // ------------------------------------------------------------------

    fn gpus_in_use(&self, role: &str) -> u32 {
        self.instances
            .read()
            .values()
            .filter(|i| i.owner == role && i.is_running())
            .map(|i| i.instance_type.gpus)
            .sum()
    }

    /// Launches an instance with an activity tag (lab/assignment name).
    pub fn run_instance_tagged(
        &self,
        role: &str,
        type_name: &str,
        subnet: &SubnetRef,
        activity: &str,
    ) -> Result<InstanceId, CloudError> {
        self.authorize(role, Action::RunInstances, &format!("{role}/*"))?;
        if !self.billing.within_budget(role) {
            let cap = self.billing.budget_of(role).unwrap_or(0.0);
            return Err(CloudError::BudgetExceeded {
                role: role.to_owned(),
                spent: self.billing.cost_for(role),
                cap,
            });
        }
        let ty = self
            .catalog
            .get(type_name)
            .ok_or_else(|| CloudError::NotFound(format!("instance type {type_name}")))?
            .clone();
        if ty.gpus > 0 {
            let in_use = self.gpus_in_use(role);
            if in_use + ty.gpus > self.gpu_quota {
                return Err(CloudError::GpuQuotaExceeded {
                    role: role.to_owned(),
                    in_use,
                    quota: self.gpu_quota,
                });
            }
        }
        let ip = {
            let mut vpcs = self.vpcs.write();
            let v = vpcs
                .get_mut(&subnet.vpc)
                .ok_or_else(|| CloudError::NotFound(format!("vpc {:?}", subnet.vpc)))?;
            let s = v
                .subnet_mut(subnet.subnet)
                .ok_or_else(|| CloudError::NotFound(format!("subnet {:?}", subnet.subnet)))?;
            s.allocate_ip()?
        };
        let id = InstanceId(self.fresh_id());
        let mut inst = Instance::launch(id, role, ty, subnet.vpc, subnet.subnet, ip, &self.clock);
        // Remember the activity tag by smuggling it through the owner-level
        // records at termination time; store on the instance meanwhile.
        inst.touch(&self.clock);
        self.instances.write().insert(id, inst);
        self.activities.write().insert(id, activity.to_owned());
        Ok(id)
    }

    /// Launches with the default `"untagged"` activity.
    pub fn run_instance(
        &self,
        role: &str,
        type_name: &str,
        subnet: &SubnetRef,
    ) -> Result<InstanceId, CloudError> {
        self.run_instance_tagged(role, type_name, subnet, "untagged")
    }

    /// Terminates an instance and finalizes its usage record.
    pub fn terminate_instance(&self, role: &str, id: &InstanceId) -> Result<(), CloudError> {
        let mut instances = self.instances.write();
        let inst = instances
            .get_mut(id)
            .ok_or_else(|| CloudError::NotFound(format!("instance {id}")))?;
        self.authorize(role, Action::TerminateInstances, &inst.resource_name())?;
        inst.terminate(&self.clock)
            .map_err(|e| CloudError::Lifecycle(e.to_string()))?;
        let activity = self
            .activities
            .write()
            .remove(id)
            .unwrap_or_else(|| "untagged".to_owned());
        self.billing.record(UsageRecord {
            principal: inst.owner.clone(),
            instance_type: inst.instance_type.name.clone(),
            gpus: inst.instance_type.gpus,
            secs: inst.billable_secs(&self.clock),
            usd: inst.accrued_cost(&self.clock),
            activity,
        });
        Ok(())
    }

    /// Stops an instance (billing pauses; no ledger record yet).
    pub fn stop_instance(&self, role: &str, id: &InstanceId) -> Result<(), CloudError> {
        let mut instances = self.instances.write();
        let inst = instances
            .get_mut(id)
            .ok_or_else(|| CloudError::NotFound(format!("instance {id}")))?;
        self.authorize(role, Action::StopInstances, &inst.resource_name())?;
        inst.stop(&self.clock)
            .map_err(|e| CloudError::Lifecycle(e.to_string()))
    }

    /// Records lab activity on an instance (resets its idle timer).
    pub fn touch_instance(&self, id: &InstanceId) -> Result<(), CloudError> {
        let mut instances = self.instances.write();
        let inst = instances
            .get_mut(id)
            .ok_or_else(|| CloudError::NotFound(format!("instance {id}")))?;
        inst.touch(&self.clock);
        Ok(())
    }

    /// Snapshot of one instance.
    pub fn describe_instance(&self, id: &InstanceId) -> Result<Instance, CloudError> {
        self.instances
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| CloudError::NotFound(format!("instance {id}")))
    }

    /// All instances currently in `Running`, with their idle seconds.
    pub fn list_running(&self) -> Vec<(InstanceId, u64)> {
        let mut v: Vec<(InstanceId, u64)> = self
            .instances
            .read()
            .values()
            .filter(|i| i.state == InstanceState::Running)
            .map(|i| (i.id, i.idle_secs(&self.clock)))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Administrative terminate used by the idle reaper: bypasses student
    /// IAM but still writes the usage record against the owner.
    pub fn admin_terminate(&self, id: &InstanceId) -> Result<(), CloudError> {
        let mut instances = self.instances.write();
        let inst = instances
            .get_mut(id)
            .ok_or_else(|| CloudError::NotFound(format!("instance {id}")))?;
        inst.terminate(&self.clock)
            .map_err(|e| CloudError::Lifecycle(e.to_string()))?;
        let activity = self
            .activities
            .write()
            .remove(id)
            .unwrap_or_else(|| "untagged".to_owned());
        self.billing.record(UsageRecord {
            principal: inst.owner.clone(),
            instance_type: inst.instance_type.name.clone(),
            gpus: inst.instance_type.gpus,
            secs: inst.billable_secs(&self.clock),
            usd: inst.accrued_cost(&self.clock),
            activity,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // SageMaker
    // ------------------------------------------------------------------

    /// Creates a notebook instance for a role.
    pub fn create_notebook(
        &self,
        role: &str,
        name: &str,
        type_name: &str,
    ) -> Result<u64, CloudError> {
        self.authorize(role, Action::CreateNotebook, &format!("{role}/*"))?;
        let ty = self
            .catalog
            .get(type_name)
            .ok_or_else(|| CloudError::NotFound(format!("instance type {type_name}")))?
            .clone();
        let id = self.fresh_id();
        let nb = NotebookInstance::create(id, name, role, ty, &self.clock);
        self.notebooks.write().insert(id, nb);
        Ok(id)
    }

    /// Deletes a notebook and finalizes its usage record.
    pub fn delete_notebook(&self, role: &str, id: u64) -> Result<(), CloudError> {
        let mut notebooks = self.notebooks.write();
        let nb = notebooks
            .get_mut(&id)
            .ok_or_else(|| CloudError::NotFound(format!("notebook {id}")))?;
        self.authorize(
            role,
            Action::StopNotebook,
            &format!("{}/{}", nb.owner, nb.name),
        )?;
        nb.delete(&self.clock)
            .map_err(|e| CloudError::Lifecycle(e.to_string()))?;
        self.billing.record(UsageRecord {
            principal: nb.owner.clone(),
            instance_type: nb.instance_type.name.clone(),
            gpus: nb.instance_type.gpus,
            secs: nb.billable_secs(&self.clock),
            usd: nb.accrued_cost(&self.clock),
            activity: "notebook".to_owned(),
        });
        Ok(())
    }

    /// Snapshot of a notebook.
    pub fn describe_notebook(&self, id: u64) -> Result<NotebookInstance, CloudError> {
        self.notebooks
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| CloudError::NotFound(format!("notebook {id}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CloudProvider, String, SubnetRef) {
        let cloud = CloudProvider::new(Region::UsEast1);
        let student = cloud.create_student_role("student-01", 100.0).unwrap();
        let vpc = cloud.create_vpc("course", "10.0.0.0/16").unwrap();
        let subnet = cloud.create_subnet(&vpc, "lab", "10.0.1.0/24").unwrap();
        (cloud, student, subnet)
    }

    #[test]
    fn launch_run_terminate_bills_correctly() {
        let (cloud, student, subnet) = setup();
        let id = cloud
            .run_instance_tagged(&student, "g4dn.xlarge", &subnet, "lab-1")
            .unwrap();
        cloud.clock().advance_hours(3);
        cloud.terminate_instance(&student, &id).unwrap();
        let cost = cloud.billing().cost_for(&student);
        assert!((cost - 3.0 * 0.526).abs() < 1e-9, "cost {cost}");
        assert!((cloud.billing().gpu_hours_for(&student) - 3.0).abs() < 1e-9);
        let by = cloud.billing().cost_by_activity();
        assert!(by.contains_key("lab-1"));
    }

    #[test]
    fn unknown_role_or_type_rejected() {
        let (cloud, _, subnet) = setup();
        assert!(matches!(
            cloud.run_instance("ghost", "g4dn.xlarge", &subnet),
            Err(CloudError::NotFound(_))
        ));
        assert!(matches!(
            cloud.run_instance("student-01", "h100.mega", &subnet),
            Err(CloudError::NotFound(_))
        ));
    }

    #[test]
    fn duplicate_role_rejected() {
        let (cloud, _, _) = setup();
        assert!(matches!(
            cloud.create_student_role("student-01", 50.0),
            Err(CloudError::RoleExists(_))
        ));
    }

    #[test]
    fn gpu_quota_enforced_at_three() {
        let (cloud, student, subnet) = setup();
        for _ in 0..3 {
            cloud
                .run_instance(&student, "g4dn.xlarge", &subnet)
                .unwrap();
        }
        let err = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap_err();
        assert!(matches!(
            err,
            CloudError::GpuQuotaExceeded {
                in_use: 3,
                quota: 3,
                ..
            }
        ));
        // A 4-GPU type can never fit under the default quota.
        let err = cloud
            .run_instance(&student, "g4dn.12xlarge", &subnet)
            .unwrap_err();
        assert!(matches!(err, CloudError::GpuQuotaExceeded { .. }));
    }

    #[test]
    fn quota_frees_after_termination() {
        let (cloud, student, subnet) = setup();
        let ids: Vec<_> = (0..3)
            .map(|_| {
                cloud
                    .run_instance(&student, "g4dn.xlarge", &subnet)
                    .unwrap()
            })
            .collect();
        cloud.terminate_instance(&student, &ids[0]).unwrap();
        assert!(cloud.run_instance(&student, "g4dn.xlarge", &subnet).is_ok());
    }

    #[test]
    fn budget_cap_blocks_new_launches() {
        let (cloud, _, subnet) = setup();
        let poor = cloud.create_student_role("student-02", 0.50).unwrap();
        let id = cloud.run_instance(&poor, "g4dn.xlarge", &subnet).unwrap();
        cloud.clock().advance_hours(1); // $0.526 > $0.50
        cloud.terminate_instance(&poor, &id).unwrap();
        let err = cloud
            .run_instance(&poor, "g4dn.xlarge", &subnet)
            .unwrap_err();
        assert!(matches!(err, CloudError::BudgetExceeded { .. }));
    }

    #[test]
    fn student_cannot_terminate_shared_infrastructure() {
        let (cloud, student, subnet) = setup();
        // Course-owned shared infra runs under the "shared" principal; the
        // student lab policy explicitly denies ec2:TerminateInstances on
        // shared/* resources.
        let shared = cloud.create_admin_role("shared").unwrap();
        let head = cloud.run_instance(&shared, "m5.xlarge", &subnet).unwrap();
        let err = cloud.terminate_instance(&student, &head).unwrap_err();
        assert!(matches!(err, CloudError::AccessDenied { .. }));
        // The owning admin role can.
        assert!(cloud.terminate_instance(&shared, &head).is_ok());
    }

    #[test]
    fn same_vpc_instances_reach_each_other() {
        let (cloud, student, subnet) = setup();
        let a = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        let b = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        assert!(cloud.can_reach(&a, &b).unwrap());
    }

    #[test]
    fn cross_vpc_instances_cannot_reach() {
        let (cloud, student, subnet) = setup();
        let other_vpc = cloud.create_vpc("other", "172.16.0.0/16").unwrap();
        let other_subnet = cloud
            .create_subnet(&other_vpc, "x", "172.16.1.0/24")
            .unwrap();
        let a = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        let b = cloud
            .run_instance(&student, "g4dn.xlarge", &other_subnet)
            .unwrap();
        assert!(!cloud.can_reach(&a, &b).unwrap());
    }

    #[test]
    fn notebooks_create_bill_delete() {
        let (cloud, student, _) = setup();
        let nb = cloud
            .create_notebook(&student, "jl", "ml.t3.medium")
            .unwrap();
        cloud.clock().advance_hours(10);
        cloud.delete_notebook(&student, nb).unwrap();
        let cost = cloud.billing().cost_for(&student);
        assert!((cost - 0.5).abs() < 1e-9); // 10 h × $0.05
        assert_eq!(cloud.billing().gpu_hours_for(&student), 0.0);
    }

    #[test]
    fn subnet_misconfiguration_surfaces_as_vpc_error() {
        let (cloud, _, _) = setup();
        let vpc = cloud.create_vpc("v2", "10.1.0.0/16").unwrap();
        let err = cloud
            .create_subnet(&vpc, "bad", "192.168.0.0/24")
            .unwrap_err();
        assert!(matches!(
            err,
            CloudError::Vpc(VpcError::SubnetOutsideVpc { .. })
        ));
    }

    #[test]
    fn list_running_tracks_idleness() {
        let (cloud, student, subnet) = setup();
        let a = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        cloud.clock().advance_secs(100);
        let running = cloud.list_running();
        assert_eq!(running, vec![(a, 100)]);
        cloud.touch_instance(&a).unwrap();
        assert_eq!(cloud.list_running(), vec![(a, 0)]);
    }

    #[test]
    fn stop_pauses_billing_through_provider() {
        let (cloud, student, subnet) = setup();
        let id = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        cloud.clock().advance_hours(1);
        cloud.stop_instance(&student, &id).unwrap();
        cloud.clock().advance_hours(10);
        cloud.terminate_instance(&student, &id).unwrap();
        assert!((cloud.billing().cost_for(&student) - 0.526).abs() < 1e-9);
    }
}
