//! Identity and Access Management: roles, policies, evaluation.
//!
//! Each student in the paper's course received "a dedicated IAM role,
//! empowering them to independently launch instances" (§III-A). This module
//! implements the subset of IAM semantics the course relies on: policy
//! documents made of allow/deny statements over (action, resource) pairs
//! with `*`-wildcard matching, attached to roles, evaluated with AWS's rule
//! — *explicit deny beats allow, default is deny*.

use serde::{Deserialize, Serialize};

/// A control-plane action, e.g. `ec2:RunInstances`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    RunInstances,
    TerminateInstances,
    StopInstances,
    DescribeInstances,
    CreateVpc,
    CreateSubnet,
    CreateNotebook,
    StopNotebook,
    ViewBilling,
    ModifyBudget,
}

impl Action {
    /// AWS-style action string.
    pub fn as_str(&self) -> &'static str {
        match self {
            Action::RunInstances => "ec2:RunInstances",
            Action::TerminateInstances => "ec2:TerminateInstances",
            Action::StopInstances => "ec2:StopInstances",
            Action::DescribeInstances => "ec2:DescribeInstances",
            Action::CreateVpc => "ec2:CreateVpc",
            Action::CreateSubnet => "ec2:CreateSubnet",
            Action::CreateNotebook => "sagemaker:CreateNotebookInstance",
            Action::StopNotebook => "sagemaker:StopNotebookInstance",
            Action::ViewBilling => "billing:View",
            Action::ModifyBudget => "billing:ModifyBudget",
        }
    }
}

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effect {
    Allow,
    Deny,
}

/// One statement in a policy document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    pub effect: Effect,
    /// Action pattern: exact string or `"*"`, or a `service:*` prefix form.
    pub action_pattern: String,
    /// Resource pattern with trailing-`*` wildcard support.
    pub resource_pattern: String,
}

impl Statement {
    pub fn new(effect: Effect, action_pattern: &str, resource_pattern: &str) -> Self {
        Self {
            effect,
            action_pattern: action_pattern.to_owned(),
            resource_pattern: resource_pattern.to_owned(),
        }
    }

    fn pattern_matches(pattern: &str, value: &str) -> bool {
        if pattern == "*" {
            return true;
        }
        if let Some(prefix) = pattern.strip_suffix('*') {
            value.starts_with(prefix)
        } else {
            pattern == value
        }
    }

    /// Whether this statement applies to the (action, resource) pair.
    pub fn matches(&self, action: Action, resource: &str) -> bool {
        Self::pattern_matches(&self.action_pattern, action.as_str())
            && Self::pattern_matches(&self.resource_pattern, resource)
    }
}

/// A named policy document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    pub name: String,
    pub statements: Vec<Statement>,
}

impl Policy {
    pub fn new(name: &str, statements: Vec<Statement>) -> Self {
        Self {
            name: name.to_owned(),
            statements,
        }
    }

    /// The policy handed to each student: full EC2/SageMaker lab powers and
    /// billing visibility, but no budget modification.
    pub fn student_lab_policy() -> Self {
        Self::new(
            "student-lab",
            vec![
                Statement::new(Effect::Allow, "ec2:*", "*"),
                Statement::new(Effect::Allow, "sagemaker:*", "*"),
                Statement::new(Effect::Allow, "billing:View", "*"),
                Statement::new(Effect::Deny, "billing:ModifyBudget", "*"),
                // Students may not touch course-owned shared infrastructure.
                Statement::new(Effect::Deny, "ec2:TerminateInstances", "shared/*"),
            ],
        )
    }

    /// The instructor/administrator policy: everything.
    pub fn admin_policy() -> Self {
        Self::new("admin", vec![Statement::new(Effect::Allow, "*", "*")])
    }
}

/// A principal: a named role with attached policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Role {
    pub name: String,
    pub policies: Vec<Policy>,
}

impl Role {
    pub fn new(name: &str, policies: Vec<Policy>) -> Self {
        Self {
            name: name.to_owned(),
            policies,
        }
    }

    /// AWS evaluation order: any matching explicit Deny → denied;
    /// otherwise any matching Allow → allowed; otherwise denied.
    pub fn is_allowed(&self, action: Action, resource: &str) -> bool {
        let mut allowed = false;
        for stmt in self.policies.iter().flat_map(|p| &p.statements) {
            if stmt.matches(action, resource) {
                match stmt.effect {
                    Effect::Deny => return false,
                    Effect::Allow => allowed = true,
                }
            }
        }
        allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_deny() {
        let role = Role::new("empty", vec![]);
        assert!(!role.is_allowed(Action::RunInstances, "i-123"));
    }

    #[test]
    fn explicit_deny_beats_allow() {
        let role = Role::new(
            "r",
            vec![Policy::new(
                "p",
                vec![
                    Statement::new(Effect::Allow, "*", "*"),
                    Statement::new(Effect::Deny, "billing:ModifyBudget", "*"),
                ],
            )],
        );
        assert!(role.is_allowed(Action::RunInstances, "x"));
        assert!(!role.is_allowed(Action::ModifyBudget, "x"));
    }

    #[test]
    fn deny_wins_regardless_of_statement_order() {
        let role = Role::new(
            "r",
            vec![Policy::new(
                "p",
                vec![
                    Statement::new(Effect::Deny, "ec2:RunInstances", "*"),
                    Statement::new(Effect::Allow, "*", "*"),
                ],
            )],
        );
        assert!(!role.is_allowed(Action::RunInstances, "anything"));
    }

    #[test]
    fn service_prefix_wildcards_match() {
        let s = Statement::new(Effect::Allow, "ec2:*", "*");
        assert!(s.matches(Action::RunInstances, "i-1"));
        assert!(s.matches(Action::CreateVpc, "vpc-1"));
        assert!(!s.matches(Action::CreateNotebook, "nb-1"));
    }

    #[test]
    fn resource_prefix_wildcards_match() {
        let s = Statement::new(Effect::Deny, "ec2:TerminateInstances", "shared/*");
        assert!(s.matches(Action::TerminateInstances, "shared/head-node"));
        assert!(!s.matches(Action::TerminateInstances, "student/i-9"));
    }

    #[test]
    fn student_policy_permits_labs_but_protects_shared() {
        let role = Role::new("student-01", vec![Policy::student_lab_policy()]);
        assert!(role.is_allowed(Action::RunInstances, "student-01/i-1"));
        assert!(role.is_allowed(Action::CreateNotebook, "student-01/nb-1"));
        assert!(role.is_allowed(Action::ViewBilling, "student-01"));
        assert!(!role.is_allowed(Action::ModifyBudget, "student-01"));
        assert!(!role.is_allowed(Action::TerminateInstances, "shared/cluster-head"));
        assert!(role.is_allowed(Action::TerminateInstances, "student-01/i-1"));
    }

    #[test]
    fn admin_can_do_everything() {
        let role = Role::new("instructor", vec![Policy::admin_policy()]);
        assert!(role.is_allowed(Action::ModifyBudget, "any"));
        assert!(role.is_allowed(Action::TerminateInstances, "shared/x"));
    }

    #[test]
    fn multiple_policies_merge() {
        let view_only = Policy::new(
            "view",
            vec![Statement::new(Effect::Allow, "ec2:DescribeInstances", "*")],
        );
        let billing = Policy::new(
            "bill",
            vec![Statement::new(Effect::Allow, "billing:View", "*")],
        );
        let role = Role::new("ta", vec![view_only, billing]);
        assert!(role.is_allowed(Action::DescribeInstances, "i-1"));
        assert!(role.is_allowed(Action::ViewBilling, "course"));
        assert!(!role.is_allowed(Action::RunInstances, "i-1"));
    }
}
