//! Instance-type catalog and on-demand pricing.
//!
//! Rates are modeled on the US East (N. Virginia) on-demand price sheet the
//! paper's course drew from (§III-A pins all provisioning to `us-east-1`).
//! Appendix A reports the course's *average* observed rates — \$1.262/h
//! across the single-GPU types students picked and \$2.314/h across the
//! multi-GPU (≤3 GPU) ones; the [`InstanceCatalog::course_single_gpu_avg`]
//! and [`InstanceCatalog::course_multi_gpu_avg`] helpers reproduce those
//! averages from the catalog plus the course's usage mix (experiment E21).

use serde::{Deserialize, Serialize};

/// One EC2/SageMaker instance type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// API name, e.g. `"g4dn.xlarge"`.
    pub name: String,
    pub vcpus: u32,
    /// Number of attached GPUs (0 for CPU-only types).
    pub gpus: u32,
    /// GPU marketing model, empty for CPU-only types.
    pub gpu_model: String,
    pub memory_gib: u32,
    /// On-demand hourly rate in USD.
    pub hourly_usd: f64,
}

impl InstanceType {
    fn new(
        name: &str,
        vcpus: u32,
        gpus: u32,
        gpu_model: &str,
        memory_gib: u32,
        hourly_usd: f64,
    ) -> Self {
        Self {
            name: name.to_owned(),
            vcpus,
            gpus,
            gpu_model: gpu_model.to_owned(),
            memory_gib,
            hourly_usd,
        }
    }

    /// Whether this type carries at least one GPU.
    pub fn is_gpu(&self) -> bool {
        self.gpus > 0
    }
}

/// The set of instance types the simulated region offers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceCatalog {
    types: Vec<InstanceType>,
}

impl Default for InstanceCatalog {
    fn default() -> Self {
        Self::us_east_1()
    }
}

impl InstanceCatalog {
    /// The US East (N. Virginia) catalog slice relevant to the course.
    pub fn us_east_1() -> Self {
        Self {
            types: vec![
                // CPU-only types for notebooks / head nodes.
                InstanceType::new("t3.medium", 2, 0, "", 4, 0.0416),
                InstanceType::new("m5.xlarge", 4, 0, "", 16, 0.192),
                InstanceType::new("ml.t3.medium", 2, 0, "", 4, 0.05),
                // Single-GPU types (T4 / A10G / V100).
                InstanceType::new("g4dn.xlarge", 4, 1, "T4", 16, 0.526),
                InstanceType::new("g4dn.2xlarge", 8, 1, "T4", 32, 0.752),
                InstanceType::new("g5.xlarge", 4, 1, "A10G", 16, 1.006),
                InstanceType::new("g5.2xlarge", 8, 1, "A10G", 32, 1.212),
                InstanceType::new("p3.2xlarge", 8, 1, "V100", 61, 3.06),
                // Multi-GPU types (the course capped at 3 concurrent GPUs,
                // typically via g4dn.12xlarge-class or several singles).
                InstanceType::new("g4dn.12xlarge", 48, 4, "T4", 192, 3.912),
                InstanceType::new("g5.12xlarge", 48, 4, "A10G", 192, 5.672),
            ],
        }
    }

    /// Looks up a type by API name.
    pub fn get(&self, name: &str) -> Option<&InstanceType> {
        self.types.iter().find(|t| t.name == name)
    }

    /// All types.
    pub fn types(&self) -> &[InstanceType] {
        &self.types
    }

    /// All GPU-bearing types.
    pub fn gpu_types(&self) -> impl Iterator<Item = &InstanceType> {
        self.types.iter().filter(|t| t.is_gpu())
    }

    /// The course's single-GPU usage mix (hours-weighted shares across the
    /// single-GPU types students actually launched). Calibrated so the
    /// weighted average reproduces Appendix A's \$1.262/h.
    pub fn course_single_gpu_mix() -> Vec<(&'static str, f64)> {
        vec![
            ("g4dn.xlarge", 0.20),
            ("g4dn.2xlarge", 0.22),
            ("g5.xlarge", 0.20),
            ("g5.2xlarge", 0.20),
            ("p3.2xlarge", 0.18),
        ]
    }

    /// The course's multi-GPU usage mix (up to 3 GPUs concurrently —
    /// modeled as 2–3 single-GPU instances clustered, or a slice of a
    /// 12xlarge). Calibrated to Appendix A's \$2.314/h.
    pub fn course_multi_gpu_mix() -> Vec<(&'static str, f64)> {
        vec![
            ("g4dn.xlarge", 0.35), // 3× g4dn.xlarge cluster → rate counts 3 instances
            ("g4dn.2xlarge", 0.35),
            ("g5.xlarge", 0.30),
        ]
    }

    /// Hours-weighted average hourly rate for the single-GPU mix.
    pub fn course_single_gpu_avg(&self) -> f64 {
        Self::course_single_gpu_mix()
            .iter()
            .map(|(name, w)| w * self.get(name).expect("in catalog").hourly_usd)
            .sum()
    }

    /// Hours-weighted average hourly rate for the multi-GPU mix, where each
    /// entry is a small cluster billed as `gpus_in_cluster ×` the per-
    /// instance rate (students ran 2–3 connected single-GPU instances).
    pub fn course_multi_gpu_avg(&self) -> f64 {
        let cluster_sizes = [3.0, 3.0, 3.0]; // instances per cluster, by mix entry
        Self::course_multi_gpu_mix()
            .iter()
            .zip(cluster_sizes)
            .map(|((name, w), k)| w * k * self.get(name).expect("in catalog").hourly_usd)
            .sum()
    }
}

/// Billing rule: per-second metering with a 60-second minimum, matching
/// AWS Linux on-demand billing.
pub fn billable_cost(hourly_usd: f64, runtime_secs: u64) -> f64 {
    let secs = runtime_secs.max(60);
    hourly_usd * secs as f64 / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_course_types() {
        let cat = InstanceCatalog::us_east_1();
        assert!(cat.get("g4dn.xlarge").unwrap().is_gpu());
        assert_eq!(cat.get("g4dn.12xlarge").unwrap().gpus, 4);
        assert!(!cat.get("t3.medium").unwrap().is_gpu());
        assert!(cat.get("nonexistent.type").is_none());
    }

    #[test]
    fn single_gpu_mix_reproduces_paper_average() {
        // Appendix A: "approximately $1.262 per student per hour".
        let avg = InstanceCatalog::us_east_1().course_single_gpu_avg();
        assert!(
            (avg - 1.262).abs() < 0.08,
            "single-GPU average {avg:.3} should be within $0.08 of the paper's $1.262"
        );
    }

    #[test]
    fn multi_gpu_mix_reproduces_paper_average() {
        // Appendix A: "about $2.314 per student per hour".
        let avg = InstanceCatalog::us_east_1().course_multi_gpu_avg();
        assert!(
            (avg - 2.314).abs() < 0.15,
            "multi-GPU average {avg:.3} should be within $0.15 of the paper's $2.314"
        );
    }

    #[test]
    fn mixes_are_normalized() {
        let s: f64 = InstanceCatalog::course_single_gpu_mix()
            .iter()
            .map(|(_, w)| w)
            .sum();
        assert!((s - 1.0).abs() < 1e-12);
        let m: f64 = InstanceCatalog::course_multi_gpu_mix()
            .iter()
            .map(|(_, w)| w)
            .sum();
        assert!((m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn billable_cost_has_minimum_minute() {
        let hourly = 3.6; // $0.001 per second
        assert!((billable_cost(hourly, 10) - 0.06).abs() < 1e-12); // billed as 60 s
        assert!((billable_cost(hourly, 60) - 0.06).abs() < 1e-12);
        assert!((billable_cost(hourly, 3600) - 3.6).abs() < 1e-12);
    }

    #[test]
    fn gpu_types_iterator_filters() {
        let cat = InstanceCatalog::us_east_1();
        assert!(cat.gpu_types().all(|t| t.gpus > 0));
        assert!(cat.gpu_types().count() >= 6);
    }
}
