//! Virtual Private Clouds: CIDR blocks, subnets, reachability.
//!
//! Fig. 4b of the paper traces low mid-semester confidence to "challenges in
//! configuring GPUs and ensuring instances were correctly connected within
//! the same Virtual Private Cloud (VPC) with appropriate subnet addresses".
//! This module implements exactly the machinery those mistakes live in:
//! IPv4 CIDR parsing and containment, subnet carving with overlap checks,
//! private-IP allocation, and a same-VPC reachability predicate.

use serde::{Deserialize, Serialize};

/// Errors raised by VPC/subnet configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum VpcError {
    /// The CIDR string could not be parsed.
    BadCidr(String),
    /// Subnet CIDR does not lie inside the VPC CIDR.
    SubnetOutsideVpc { subnet: String, vpc: String },
    /// Subnet CIDR overlaps an existing subnet.
    SubnetOverlap { subnet: String, existing: String },
    /// No free addresses remain in the subnet.
    SubnetExhausted { subnet: String },
}

impl std::fmt::Display for VpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VpcError::BadCidr(s) => write!(f, "invalid CIDR: {s}"),
            VpcError::SubnetOutsideVpc { subnet, vpc } => {
                write!(f, "subnet {subnet} is not contained in VPC block {vpc}")
            }
            VpcError::SubnetOverlap { subnet, existing } => {
                write!(f, "subnet {subnet} overlaps existing subnet {existing}")
            }
            VpcError::SubnetExhausted { subnet } => write!(f, "subnet {subnet} has no free IPs"),
        }
    }
}

impl std::error::Error for VpcError {}

/// An IPv4 CIDR block, e.g. `10.0.1.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    /// Network base address as a u32 (host bits already masked off).
    pub base: u32,
    /// Prefix length, 0–32.
    pub prefix: u8,
}

impl Cidr {
    /// Parses dotted-quad/prefix notation.
    pub fn parse(s: &str) -> Result<Self, VpcError> {
        let err = || VpcError::BadCidr(s.to_owned());
        let (addr, prefix) = s.split_once('/').ok_or_else(err)?;
        let prefix: u8 = prefix.parse().map_err(|_| err())?;
        if prefix > 32 {
            return Err(err());
        }
        let octets: Vec<u32> = addr
            .split('.')
            .map(|o| o.parse::<u32>().map_err(|_| err()))
            .collect::<Result<_, _>>()?;
        if octets.len() != 4 || octets.iter().any(|&o| o > 255) {
            return Err(err());
        }
        let raw = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3];
        Ok(Self {
            base: raw & Self::mask(prefix),
            prefix,
        })
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// Number of addresses in the block.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix)
    }

    /// Whether `ip` lies inside this block.
    pub fn contains_ip(&self, ip: u32) -> bool {
        ip & Self::mask(self.prefix) == self.base
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains(&self, other: &Cidr) -> bool {
        other.prefix >= self.prefix && self.contains_ip(other.base)
    }

    /// Whether the two blocks share any address.
    pub fn overlaps(&self, other: &Cidr) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Formats an address in this block as dotted quad.
    pub fn format_ip(ip: u32) -> String {
        format!(
            "{}.{}.{}.{}",
            (ip >> 24) & 255,
            (ip >> 16) & 255,
            (ip >> 8) & 255,
            ip & 255
        )
    }
}

impl std::fmt::Display for Cidr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", Cidr::format_ip(self.base), self.prefix)
    }
}

/// Opaque VPC identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VpcId(pub u64);

/// Opaque subnet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubnetId(pub u64);

/// A subnet: a carve-out of the VPC block that hands out host addresses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subnet {
    pub id: SubnetId,
    pub vpc: VpcId,
    pub name: String,
    pub cidr: Cidr,
    next_host: u32,
}

impl Subnet {
    fn new(id: SubnetId, vpc: VpcId, name: &str, cidr: Cidr) -> Self {
        Self {
            id,
            vpc,
            name: name.to_owned(),
            cidr,
            // .0 is the network address; AWS also reserves a few low
            // addresses per subnet — we start hosts at .4 like AWS does.
            next_host: 4,
        }
    }

    /// Allocates the next free private IP in the subnet.
    pub fn allocate_ip(&mut self) -> Result<u32, VpcError> {
        // Leave the broadcast (last) address unallocated.
        if self.next_host as u64 >= self.cidr.size() - 1 {
            return Err(VpcError::SubnetExhausted {
                subnet: self.cidr.to_string(),
            });
        }
        let ip = self.cidr.base + self.next_host;
        self.next_host += 1;
        Ok(ip)
    }

    /// Number of addresses handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next_host - 4
    }
}

/// A VPC: a named CIDR block plus its subnets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vpc {
    pub id: VpcId,
    pub name: String,
    pub cidr: Cidr,
    subnets: Vec<Subnet>,
}

impl Vpc {
    /// Creates a VPC over the given block.
    pub fn new(id: VpcId, name: &str, cidr_str: &str) -> Result<Self, VpcError> {
        Ok(Self {
            id,
            name: name.to_owned(),
            cidr: Cidr::parse(cidr_str)?,
            subnets: Vec::new(),
        })
    }

    /// Carves a new subnet out of the VPC block, rejecting blocks outside
    /// the VPC or overlapping existing subnets — the exact failure modes
    /// behind the paper's Fig. 4b confidence dip.
    pub fn create_subnet(
        &mut self,
        id: SubnetId,
        name: &str,
        cidr_str: &str,
    ) -> Result<SubnetId, VpcError> {
        let cidr = Cidr::parse(cidr_str)?;
        if !self.cidr.contains(&cidr) {
            return Err(VpcError::SubnetOutsideVpc {
                subnet: cidr.to_string(),
                vpc: self.cidr.to_string(),
            });
        }
        if let Some(existing) = self.subnets.iter().find(|s| s.cidr.overlaps(&cidr)) {
            return Err(VpcError::SubnetOverlap {
                subnet: cidr.to_string(),
                existing: existing.cidr.to_string(),
            });
        }
        self.subnets.push(Subnet::new(id, self.id, name, cidr));
        Ok(id)
    }

    /// Borrow a subnet by id.
    pub fn subnet(&self, id: SubnetId) -> Option<&Subnet> {
        self.subnets.iter().find(|s| s.id == id)
    }

    /// Mutable borrow of a subnet by id.
    pub fn subnet_mut(&mut self, id: SubnetId) -> Option<&mut Subnet> {
        self.subnets.iter_mut().find(|s| s.id == id)
    }

    /// All subnets.
    pub fn subnets(&self) -> &[Subnet] {
        &self.subnets
    }

    /// Two private IPs can reach each other iff both belong to some subnet
    /// of *this* VPC (no peering in the course setup).
    pub fn can_reach(&self, ip_a: u32, ip_b: u32) -> bool {
        let in_vpc = |ip| self.subnets.iter().any(|s| s.cidr.contains_ip(ip));
        in_vpc(ip_a) && in_vpc(ip_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_parse_and_display_roundtrip() {
        let c = Cidr::parse("10.0.1.0/24").unwrap();
        assert_eq!(c.to_string(), "10.0.1.0/24");
        assert_eq!(c.size(), 256);
    }

    #[test]
    fn cidr_parse_masks_host_bits() {
        let c = Cidr::parse("10.0.1.77/24").unwrap();
        assert_eq!(c.to_string(), "10.0.1.0/24");
    }

    #[test]
    fn cidr_parse_rejects_garbage() {
        for bad in [
            "",
            "10.0.0.0",
            "10.0.0/24",
            "10.0.0.0/33",
            "256.0.0.0/8",
            "a.b.c.d/8",
        ] {
            assert!(Cidr::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn containment_and_overlap() {
        let vpc = Cidr::parse("10.0.0.0/16").unwrap();
        let sub = Cidr::parse("10.0.5.0/24").unwrap();
        let outside = Cidr::parse("10.1.0.0/24").unwrap();
        assert!(vpc.contains(&sub));
        assert!(!vpc.contains(&outside));
        assert!(vpc.overlaps(&sub));
        assert!(!sub.overlaps(&outside));
    }

    #[test]
    fn subnet_creation_validates_block() {
        let mut vpc = Vpc::new(VpcId(1), "course", "10.0.0.0/16").unwrap();
        vpc.create_subnet(SubnetId(1), "a", "10.0.1.0/24").unwrap();
        // Outside the VPC — the classic student mistake.
        let err = vpc
            .create_subnet(SubnetId(2), "b", "192.168.1.0/24")
            .unwrap_err();
        assert!(matches!(err, VpcError::SubnetOutsideVpc { .. }));
        // Overlapping an existing subnet.
        let err = vpc
            .create_subnet(SubnetId(3), "c", "10.0.1.128/25")
            .unwrap_err();
        assert!(matches!(err, VpcError::SubnetOverlap { .. }));
        // Disjoint sibling works.
        vpc.create_subnet(SubnetId(4), "d", "10.0.2.0/24").unwrap();
        assert_eq!(vpc.subnets().len(), 2);
    }

    #[test]
    fn ip_allocation_is_sequential_and_bounded() {
        let mut vpc = Vpc::new(VpcId(1), "v", "10.0.0.0/16").unwrap();
        vpc.create_subnet(SubnetId(1), "tiny", "10.0.0.0/29")
            .unwrap(); // 8 addrs
        let s = vpc.subnet_mut(SubnetId(1)).unwrap();
        // hosts .4, .5, .6 available (network + 3 reserved low, broadcast kept free)
        let a = s.allocate_ip().unwrap();
        let b = s.allocate_ip().unwrap();
        let c = s.allocate_ip().unwrap();
        assert_eq!(Cidr::format_ip(a), "10.0.0.4");
        assert_eq!(Cidr::format_ip(b), "10.0.0.5");
        assert_eq!(Cidr::format_ip(c), "10.0.0.6");
        assert!(matches!(
            s.allocate_ip(),
            Err(VpcError::SubnetExhausted { .. })
        ));
        assert_eq!(s.allocated(), 3);
    }

    #[test]
    fn same_vpc_reachability() {
        let mut vpc = Vpc::new(VpcId(1), "v", "10.0.0.0/16").unwrap();
        vpc.create_subnet(SubnetId(1), "a", "10.0.1.0/24").unwrap();
        vpc.create_subnet(SubnetId(2), "b", "10.0.2.0/24").unwrap();
        let ip_a = vpc.subnet_mut(SubnetId(1)).unwrap().allocate_ip().unwrap();
        let ip_b = vpc.subnet_mut(SubnetId(2)).unwrap().allocate_ip().unwrap();
        assert!(vpc.can_reach(ip_a, ip_b), "cross-subnet same-VPC reachable");
        let foreign = Cidr::parse("192.168.0.5/32").unwrap().base;
        assert!(!vpc.can_reach(ip_a, foreign));
    }
}
