//! The simulated wall clock shared by every cloud subsystem.
//!
//! Cloud billing happens at human time scales (seconds to semesters), so the
//! clock is a plain seconds counter advanced explicitly by the caller —
//! tests and experiments decide how fast time passes, and every run is
//! deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable, monotonically advancing simulated clock (seconds).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_secs: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds since epoch (t = 0 at creation).
    pub fn now_secs(&self) -> u64 {
        self.now_secs.load(Ordering::SeqCst)
    }

    /// Advances the clock by `secs`.
    pub fn advance_secs(&self, secs: u64) {
        self.now_secs.fetch_add(secs, Ordering::SeqCst);
    }

    /// Advances the clock by whole hours.
    pub fn advance_hours(&self, hours: u64) {
        self.advance_secs(hours * 3600);
    }

    /// Convenience: current time expressed in fractional hours.
    pub fn now_hours(&self) -> f64 {
        self.now_secs() as f64 / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_secs(), 0);
        c.advance_secs(90);
        assert_eq!(c.now_secs(), 90);
        c.advance_hours(2);
        assert_eq!(c.now_secs(), 90 + 7200);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_secs(10);
        assert_eq!(b.now_secs(), 10);
    }

    #[test]
    fn now_hours_is_fractional() {
        let c = SimClock::new();
        c.advance_secs(1800);
        assert!((c.now_hours() - 0.5).abs() < 1e-12);
    }
}
