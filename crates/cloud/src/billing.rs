//! Per-principal cost ledger, budget caps, and usage reporting.
//!
//! §III-A: "each student's usage was capped for all assessments … students
//! could request additional resources, capped at \$100 per student for the
//! semester". The ledger enforces those caps at provisioning time and
//! produces the per-student hour/cost aggregates behind Fig. 5.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One finalized usage record (written when an instance terminates or a
/// notebook session closes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageRecord {
    /// Principal (student role name) the usage bills to.
    pub principal: String,
    /// Instance type name.
    pub instance_type: String,
    /// Number of GPUs on the resource.
    pub gpus: u32,
    /// Billable seconds.
    pub secs: u64,
    /// Cost in USD.
    pub usd: f64,
    /// Free-form tag, e.g. `"lab-3"` or `"assignment-2"`.
    pub activity: String,
}

impl UsageRecord {
    /// Billable hours.
    pub fn hours(&self) -> f64 {
        self.secs as f64 / 3600.0
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    records: Vec<UsageRecord>,
    budgets: HashMap<String, f64>,
}

/// Thread-safe billing ledger shared across the provider.
#[derive(Debug, Clone, Default)]
pub struct BillingLedger {
    inner: Arc<RwLock<LedgerInner>>,
}

impl BillingLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or raises) a principal's budget cap in USD.
    pub fn set_budget(&self, principal: &str, usd: f64) {
        self.inner.write().budgets.insert(principal.to_owned(), usd);
    }

    /// The principal's budget cap, if any.
    pub fn budget_of(&self, principal: &str) -> Option<f64> {
        self.inner.read().budgets.get(principal).copied()
    }

    /// Appends a finalized usage record.
    pub fn record(&self, rec: UsageRecord) {
        self.inner.write().records.push(rec);
    }

    /// Total spend of a principal so far.
    pub fn cost_for(&self, principal: &str) -> f64 {
        self.inner
            .read()
            .records
            .iter()
            .filter(|r| r.principal == principal)
            .map(|r| r.usd)
            .sum()
    }

    /// Total GPU-hours of a principal so far (records with ≥1 GPU).
    pub fn gpu_hours_for(&self, principal: &str) -> f64 {
        self.inner
            .read()
            .records
            .iter()
            .filter(|r| r.principal == principal && r.gpus > 0)
            .map(|r| r.hours())
            .sum()
    }

    /// Remaining headroom under the principal's budget; `f64::INFINITY`
    /// when no cap is set.
    pub fn remaining_budget(&self, principal: &str) -> f64 {
        match self.budget_of(principal) {
            Some(cap) => cap - self.cost_for(principal),
            None => f64::INFINITY,
        }
    }

    /// Whether new provisioning would be allowed: spend strictly below cap.
    pub fn within_budget(&self, principal: &str) -> bool {
        self.remaining_budget(principal) > 0.0
    }

    /// All records for a principal.
    pub fn records_for(&self, principal: &str) -> Vec<UsageRecord> {
        self.inner
            .read()
            .records
            .iter()
            .filter(|r| r.principal == principal)
            .cloned()
            .collect()
    }

    /// Total spend across all principals.
    pub fn total_cost(&self) -> f64 {
        self.inner.read().records.iter().map(|r| r.usd).sum()
    }

    /// Cost aggregated per activity tag (lab/assignment breakdowns).
    pub fn cost_by_activity(&self) -> HashMap<String, f64> {
        let mut out: HashMap<String, f64> = HashMap::new();
        for r in self.inner.read().records.iter() {
            *out.entry(r.activity.clone()).or_default() += r.usd;
        }
        out
    }

    /// (mean GPU-hours, mean cost) per distinct principal with any usage —
    /// the two series of the paper's Fig. 5. Uses an ordered map so float
    /// summation order (hence the result) is deterministic.
    pub fn per_student_averages(&self) -> (f64, f64) {
        let inner = self.inner.read();
        let mut per: std::collections::BTreeMap<&str, (f64, f64)> =
            std::collections::BTreeMap::new();
        for r in inner.records.iter() {
            let e = per.entry(&r.principal).or_default();
            if r.gpus > 0 {
                e.0 += r.hours();
            }
            e.1 += r.usd;
        }
        if per.is_empty() {
            return (0.0, 0.0);
        }
        let n = per.len() as f64;
        let (h, c) = per
            .values()
            .fold((0.0, 0.0), |(ah, ac), (h, c)| (ah + h, ac + c));
        (h / n, c / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(p: &str, gpus: u32, secs: u64, usd: f64, act: &str) -> UsageRecord {
        UsageRecord {
            principal: p.into(),
            instance_type: "g4dn.xlarge".into(),
            gpus,
            secs,
            usd,
            activity: act.into(),
        }
    }

    #[test]
    fn cost_and_hours_aggregate_per_principal() {
        let l = BillingLedger::new();
        l.record(rec("alice", 1, 3600, 0.526, "lab-1"));
        l.record(rec("alice", 1, 7200, 1.052, "lab-2"));
        l.record(rec("bob", 1, 3600, 0.526, "lab-1"));
        assert!((l.cost_for("alice") - 1.578).abs() < 1e-9);
        assert!((l.gpu_hours_for("alice") - 3.0).abs() < 1e-9);
        assert!((l.total_cost() - 2.104).abs() < 1e-9);
    }

    #[test]
    fn cpu_only_usage_excluded_from_gpu_hours() {
        let l = BillingLedger::new();
        l.record(rec("alice", 0, 3600, 0.05, "notebook"));
        l.record(rec("alice", 1, 3600, 0.526, "lab-1"));
        assert!((l.gpu_hours_for("alice") - 1.0).abs() < 1e-9);
        assert!((l.cost_for("alice") - 0.576).abs() < 1e-9);
    }

    #[test]
    fn budget_enforcement() {
        let l = BillingLedger::new();
        l.set_budget("alice", 1.0);
        assert!(l.within_budget("alice"));
        l.record(rec("alice", 1, 3600, 0.9, "lab-1"));
        assert!(l.within_budget("alice"));
        assert!((l.remaining_budget("alice") - 0.1).abs() < 1e-9);
        l.record(rec("alice", 1, 3600, 0.2, "lab-2"));
        assert!(!l.within_budget("alice"));
    }

    #[test]
    fn no_budget_means_infinite_headroom() {
        let l = BillingLedger::new();
        l.record(rec("carol", 1, 3600, 100.0, "x"));
        assert!(l.within_budget("carol"));
        assert!(l.remaining_budget("carol").is_infinite());
    }

    #[test]
    fn activity_breakdown() {
        let l = BillingLedger::new();
        l.record(rec("a", 1, 3600, 1.0, "lab-1"));
        l.record(rec("b", 1, 3600, 2.0, "lab-1"));
        l.record(rec("a", 1, 3600, 3.0, "assignment-1"));
        let by = l.cost_by_activity();
        assert!((by["lab-1"] - 3.0).abs() < 1e-9);
        assert!((by["assignment-1"] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_student_averages_over_distinct_students() {
        let l = BillingLedger::new();
        l.record(rec("a", 1, 2 * 3600, 1.0, "lab"));
        l.record(rec("b", 1, 4 * 3600, 3.0, "lab"));
        let (h, c) = l.per_student_averages();
        assert!((h - 3.0).abs() < 1e-9);
        assert!((c - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_averages_are_zero() {
        assert_eq!(BillingLedger::new().per_student_averages(), (0.0, 0.0));
    }
}
