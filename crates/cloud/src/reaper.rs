//! The idle-instance reaper.
//!
//! §III-A: budget discipline was "complemented by automated scripts designed
//! to terminate idle resources". The reaper sweeps running instances and
//! terminates any whose idle time (seconds since the last activity
//! heartbeat) exceeds a threshold, writing the usual usage records so the
//! terminated time is still billed to the student.

use crate::ec2::InstanceId;
use crate::provider::CloudProvider;

/// Sweeping policy for idle instances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleReaper {
    /// Instances idle longer than this many seconds are terminated.
    pub idle_threshold_secs: u64,
}

impl Default for IdleReaper {
    /// The course used a conservative 30-minute idle threshold.
    fn default() -> Self {
        Self {
            idle_threshold_secs: 30 * 60,
        }
    }
}

impl IdleReaper {
    /// A reaper with a custom threshold.
    pub fn new(idle_threshold_secs: u64) -> Self {
        Self {
            idle_threshold_secs,
        }
    }

    /// One sweep: terminates all over-threshold idle instances.
    /// Returns the ids it reaped (sorted).
    pub fn sweep(&self, cloud: &CloudProvider) -> Vec<InstanceId> {
        let victims: Vec<InstanceId> = cloud
            .list_running()
            .into_iter()
            .filter(|(_, idle)| *idle > self.idle_threshold_secs)
            .map(|(id, _)| id)
            .collect();
        let mut reaped = Vec::new();
        for id in victims {
            if cloud.admin_terminate(&id).is_ok() {
                reaped.push(id);
            }
        }
        reaped
    }

    /// Runs `sweeps` sweeps separated by `interval_secs` of simulated time,
    /// returning the total number of reaped instances. Mimics the cron-style
    /// script the course deployed.
    pub fn run_schedule(&self, cloud: &CloudProvider, sweeps: u32, interval_secs: u64) -> usize {
        let mut total = 0;
        for _ in 0..sweeps {
            cloud.clock().advance_secs(interval_secs);
            total += self.sweep(cloud).len();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{CloudProvider, Region};

    fn setup() -> (CloudProvider, String, crate::provider::SubnetRef) {
        let cloud = CloudProvider::new(Region::UsEast1);
        let student = cloud.create_student_role("s1", 100.0).unwrap();
        let vpc = cloud.create_vpc("v", "10.0.0.0/16").unwrap();
        let subnet = cloud.create_subnet(&vpc, "s", "10.0.1.0/24").unwrap();
        (cloud, student, subnet)
    }

    #[test]
    fn reaps_only_over_threshold_instances() {
        let (cloud, student, subnet) = setup();
        let idle = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        let busy = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        cloud.clock().advance_secs(45 * 60);
        cloud.touch_instance(&busy).unwrap(); // student is working on this one
        let reaped = IdleReaper::default().sweep(&cloud);
        assert_eq!(reaped, vec![idle]);
        assert_eq!(cloud.list_running().len(), 1);
    }

    #[test]
    fn reaped_time_is_still_billed() {
        let (cloud, student, subnet) = setup();
        let _ = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        cloud.clock().advance_hours(2);
        IdleReaper::new(60).sweep(&cloud);
        let cost = cloud.billing().cost_for(&student);
        assert!(
            (cost - 2.0 * 0.526).abs() < 1e-9,
            "forgotten GPU still costs: {cost}"
        );
    }

    #[test]
    fn sweep_under_threshold_reaps_nothing() {
        let (cloud, student, subnet) = setup();
        let _ = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        cloud.clock().advance_secs(10 * 60);
        assert!(IdleReaper::default().sweep(&cloud).is_empty());
    }

    #[test]
    fn schedule_advances_time_and_accumulates() {
        let (cloud, student, subnet) = setup();
        let _ = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        let _ = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        // 4 sweeps × 15 min: both instances pass the 30-min idle mark by
        // the third sweep.
        let total = IdleReaper::default().run_schedule(&cloud, 4, 15 * 60);
        assert_eq!(total, 2);
        assert!(cloud.list_running().is_empty());
    }

    #[test]
    fn reaper_caps_the_cost_of_a_forgotten_weekend_gpu() {
        // The scenario the script exists for: a student leaves a GPU running
        // Friday evening. Without the reaper it burns 64 h × $0.526 ≈ $34;
        // with a 30-min reaper sweeping hourly it costs at most ~2 h.
        let (cloud, student, subnet) = setup();
        let _ = cloud
            .run_instance(&student, "g4dn.xlarge", &subnet)
            .unwrap();
        IdleReaper::default().run_schedule(&cloud, 64, 3600);
        let cost = cloud.billing().cost_for(&student);
        assert!(
            cost < 2.0 * 0.526 + 1e-9,
            "reaper failed to cap cost: {cost}"
        );
    }
}
