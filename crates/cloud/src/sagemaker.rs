//! SageMaker-style notebook instances.
//!
//! The course ran all lab work through "AWS SageMaker, which offers Jupyter
//! Notebook, allowing them to write and run code in one place" (§I). A
//! notebook instance is a managed compute resource with its own lifecycle
//! and hourly rate; here it reuses the catalog's `ml.*` types and the same
//! per-second metering as EC2.

use crate::clock::SimClock;
use crate::pricing::{billable_cost, InstanceType};
use serde::{Deserialize, Serialize};

/// Notebook lifecycle states (the SageMaker console's vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NotebookStatus {
    Pending,
    InService,
    Stopping,
    Stopped,
    Deleted,
}

/// Errors from notebook state transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum NotebookError {
    InvalidTransition {
        from: NotebookStatus,
        requested: &'static str,
    },
}

impl std::fmt::Display for NotebookError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotebookError::InvalidTransition { from, requested } => {
                write!(f, "cannot {requested} a notebook in status {from:?}")
            }
        }
    }
}

impl std::error::Error for NotebookError {}

/// A managed Jupyter notebook instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NotebookInstance {
    pub id: u64,
    pub name: String,
    pub owner: String,
    pub instance_type: InstanceType,
    pub status: NotebookStatus,
    billed_secs: u64,
    in_service_since: Option<u64>,
}

impl NotebookInstance {
    /// Creates a notebook that is immediately in service.
    pub fn create(
        id: u64,
        name: &str,
        owner: &str,
        instance_type: InstanceType,
        clock: &SimClock,
    ) -> Self {
        Self {
            id,
            name: name.to_owned(),
            owner: owner.to_owned(),
            instance_type,
            status: NotebookStatus::InService,
            billed_secs: 0,
            in_service_since: Some(clock.now_secs()),
        }
    }

    fn close_interval(&mut self, clock: &SimClock) {
        if let Some(start) = self.in_service_since.take() {
            self.billed_secs += clock.now_secs().saturating_sub(start);
        }
    }

    /// Stops the notebook (billing pauses).
    pub fn stop(&mut self, clock: &SimClock) -> Result<(), NotebookError> {
        match self.status {
            NotebookStatus::InService => {
                self.close_interval(clock);
                self.status = NotebookStatus::Stopped;
                Ok(())
            }
            from => Err(NotebookError::InvalidTransition {
                from,
                requested: "stop",
            }),
        }
    }

    /// Restarts a stopped notebook.
    pub fn start(&mut self, clock: &SimClock) -> Result<(), NotebookError> {
        match self.status {
            NotebookStatus::Stopped => {
                self.status = NotebookStatus::InService;
                self.in_service_since = Some(clock.now_secs());
                Ok(())
            }
            from => Err(NotebookError::InvalidTransition {
                from,
                requested: "start",
            }),
        }
    }

    /// Deletes the notebook permanently.
    pub fn delete(&mut self, clock: &SimClock) -> Result<(), NotebookError> {
        match self.status {
            NotebookStatus::Deleted => Err(NotebookError::InvalidTransition {
                from: self.status,
                requested: "delete",
            }),
            _ => {
                self.close_interval(clock);
                self.status = NotebookStatus::Deleted;
                Ok(())
            }
        }
    }

    /// Billable in-service seconds so far.
    pub fn billable_secs(&self, clock: &SimClock) -> u64 {
        let open = self
            .in_service_since
            .map(|s| clock.now_secs().saturating_sub(s))
            .unwrap_or(0);
        self.billed_secs + open
    }

    /// Accrued cost in USD.
    pub fn accrued_cost(&self, clock: &SimClock) -> f64 {
        billable_cost(self.instance_type.hourly_usd, self.billable_secs(clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::InstanceCatalog;

    fn nb(clock: &SimClock) -> NotebookInstance {
        let ty = InstanceCatalog::us_east_1()
            .get("ml.t3.medium")
            .unwrap()
            .clone();
        NotebookInstance::create(1, "lab-notebook", "student-01", ty, clock)
    }

    #[test]
    fn notebook_bills_while_in_service() {
        let clock = SimClock::new();
        let n = nb(&clock);
        clock.advance_hours(4);
        assert!((n.accrued_cost(&clock) - 0.2).abs() < 1e-9); // 4 h × $0.05
    }

    #[test]
    fn stopped_notebook_stops_billing() {
        let clock = SimClock::new();
        let mut n = nb(&clock);
        clock.advance_hours(1);
        n.stop(&clock).unwrap();
        clock.advance_hours(9);
        assert_eq!(n.billable_secs(&clock), 3600);
        n.start(&clock).unwrap();
        clock.advance_hours(1);
        assert_eq!(n.billable_secs(&clock), 7200);
    }

    #[test]
    fn delete_is_terminal() {
        let clock = SimClock::new();
        let mut n = nb(&clock);
        n.delete(&clock).unwrap();
        assert_eq!(n.status, NotebookStatus::Deleted);
        assert!(n.delete(&clock).is_err());
        assert!(n.start(&clock).is_err());
        assert!(n.stop(&clock).is_err());
    }

    #[test]
    fn cannot_start_inservice_notebook() {
        let clock = SimClock::new();
        let mut n = nb(&clock);
        assert!(n.start(&clock).is_err());
    }
}
