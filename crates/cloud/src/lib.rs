//! # cloud-sim — an AWS-like control-plane simulator
//!
//! Reproduces the infrastructure substrate of *"GPU Programming for AI
//! Workflow Development on AWS SageMaker"* (SC'25, §III-A and Appendix A).
//! The paper's course ran on real AWS: per-student IAM roles, EC2 GPU
//! instances inside one region's VPCs, SageMaker notebook sessions, budget
//! caps (≈\$100/student), automated termination of idle resources, and a
//! cost ledger that came out to \$50–60 per student per semester at
//! \$1.262/h (single-GPU) and \$2.314/h (multi-GPU) average on-demand rates.
//!
//! There is no AWS SDK for this environment, and billing a real account for
//! a reproduction would be absurd — so this crate implements the control
//! plane itself: the same provisioning semantics, policy evaluation, cost
//! arithmetic, and lifecycle rules, against a simulated clock. Everything
//! the paper's infrastructure lessons depend on (caps, reapers,
//! per-assessment budgets, VPC/subnet addressing mistakes) is exercised for
//! real; only the packets and the invoice are synthetic.
//!
//! ## Modules
//!
//! - [`clock`] — shared simulated wall clock (seconds).
//! - [`pricing`] — instance-type catalog with on-demand hourly rates.
//! - [`iam`] — roles, policy documents, explicit-deny-wins evaluation.
//! - [`vpc`] — VPCs, CIDR blocks, subnets, reachability checks.
//! - [`ec2`] — instance lifecycle and per-second billing meters.
//! - [`billing`] — per-principal cost ledger, budget caps, usage reports.
//! - [`sagemaker`] — notebook sessions bound to instance types.
//! - [`reaper`] — idle-instance terminator ("automated scripts designed to
//!   terminate idle resources", §III-A).
//! - [`provider`] — the `CloudProvider` facade gluing it all together.
//! - [`bootstrap`] — the per-assessment bootstrap plan students ran.
//!
//! ## Quick example
//!
//! ```
//! use cloud_sim::prelude::*;
//!
//! let cloud = CloudProvider::new(Region::UsEast1);
//! let student = cloud.create_student_role("student-01", 100.0).unwrap();
//! let vpc = cloud.create_vpc("course", "10.0.0.0/16").unwrap();
//! let subnet = cloud.create_subnet(&vpc, "lab", "10.0.1.0/24").unwrap();
//!
//! let inst = cloud
//!     .run_instance(&student, "g4dn.xlarge", &subnet)
//!     .unwrap();
//! cloud.clock().advance_secs(3600); // one lab hour
//! cloud.terminate_instance(&student, &inst).unwrap();
//!
//! let bill = cloud.billing().cost_for("student-01");
//! assert!(bill > 0.4 && bill < 0.7); // ≈ $0.526, the g4dn.xlarge rate
//! ```

pub mod billing;
pub mod bootstrap;
pub mod clock;
pub mod ec2;
pub mod iam;
pub mod pricing;
pub mod provider;
pub mod reaper;
pub mod sagemaker;
pub mod vpc;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::billing::{BillingLedger, UsageRecord};
    pub use crate::bootstrap::{BootstrapOutcome, BootstrapPlan, BootstrapStep};
    pub use crate::clock::SimClock;
    pub use crate::ec2::{Instance, InstanceId, InstanceState};
    pub use crate::iam::{Action, Effect, Policy, Role, Statement};
    pub use crate::pricing::{InstanceCatalog, InstanceType};
    pub use crate::provider::{CloudError, CloudProvider, Region};
    pub use crate::reaper::IdleReaper;
    pub use crate::sagemaker::{NotebookInstance, NotebookStatus};
    pub use crate::vpc::{Cidr, Subnet, SubnetId, Vpc, VpcId};
}

pub use provider::{CloudError, CloudProvider, Region};
