//! Property-based invariants of the dataframe crate.

use proptest::prelude::*;
use sagegpu_df::column::Column;
use sagegpu_df::frame::{Agg, DataFrame};

fn frame(keys: Vec<i64>, vals: Vec<f64>) -> DataFrame {
    DataFrame::from_columns(vec![("k", Column::I64(keys)), ("v", Column::F64(vals))]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Filter keeps exactly the rows matching the predicate.
    #[test]
    fn filter_is_exact(vals in prop::collection::vec(-100.0f64..100.0, 0..80), threshold in -100.0f64..100.0) {
        let keys = vec![0i64; vals.len()];
        let df = frame(keys, vals.clone());
        let f = df.filter_f64("v", move |v| v > threshold).unwrap();
        let expected: Vec<f64> = vals.into_iter().filter(|&v| v > threshold).collect();
        prop_assert_eq!(f.f64_column("v").unwrap(), expected.as_slice());
    }

    /// Group-by sums conserve the grand total; counts conserve row count.
    #[test]
    fn groupby_conserves_totals(
        keys in prop::collection::vec(0i64..6, 1..100),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<f64> = keys.iter().map(|_| rng.gen_range(-50.0..50.0)).collect();
        let df = frame(keys.clone(), vals.clone());
        let g = df.groupby_i64("k", &[("v", Agg::Sum), ("v", Agg::Count)]).unwrap();
        let total: f64 = g.f64_column("v_sum").unwrap().iter().sum();
        prop_assert!((total - vals.iter().sum::<f64>()).abs() < 1e-6);
        let count: f64 = g.f64_column("v_count").unwrap().iter().sum();
        prop_assert_eq!(count as usize, keys.len());
        // Keys come out sorted and distinct.
        let out_keys = g.i64_column("k").unwrap();
        prop_assert!(out_keys.windows(2).all(|w| w[0] < w[1]));
    }

    /// Sorting yields a non-decreasing column and preserves multiset.
    #[test]
    fn sort_is_a_permutation(vals in prop::collection::vec(-1e3f64..1e3, 0..60)) {
        let df = frame(vec![0; vals.len()], vals.clone());
        let s = df.sort_by_f64("v").unwrap();
        let sorted = s.f64_column("v").unwrap();
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut expected = vals.clone();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(sorted, expected.as_slice());
    }

    /// Join row count equals the sum over keys of |left(k)| × |right(k)|.
    #[test]
    fn join_cardinality(
        left_keys in prop::collection::vec(0i64..4, 0..30),
        right_keys in prop::collection::vec(0i64..4, 0..30),
    ) {
        let left = frame(left_keys.clone(), vec![1.0; left_keys.len()]);
        let right = DataFrame::from_columns(vec![
            ("k", Column::I64(right_keys.clone())),
            ("w", Column::F64(vec![2.0; right_keys.len()])),
        ]).unwrap();
        let j = left.join_i64(&right, "k").unwrap();
        let mut expected = 0usize;
        for k in 0..4i64 {
            let l = left_keys.iter().filter(|&&x| x == k).count();
            let r = right_keys.iter().filter(|&&x| x == k).count();
            expected += l * r;
        }
        prop_assert_eq!(j.num_rows(), expected);
    }

    /// Concat length is the sum of part lengths, any split point.
    #[test]
    fn concat_roundtrip(vals in prop::collection::vec(-10.0f64..10.0, 1..50), cut_frac in 0.0f64..1.0) {
        let df = frame((0..vals.len() as i64).collect(), vals.clone());
        let cut = ((vals.len() as f64) * cut_frac) as usize;
        let head = df.head(cut);
        let idx_tail: Vec<bool> = (0..vals.len()).map(|i| i >= cut).collect();
        let tail = df.filter_mask(&idx_tail).unwrap();
        let whole = DataFrame::concat(&[head, tail]).unwrap();
        prop_assert_eq!(whole, df);
    }
}
