//! The single-node dataframe (cuDF's role).

use crate::column::Column;
use crate::DfError;
use rand::prelude::*;
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// Aggregations supported by group-by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    Sum,
    Mean,
    Count,
    Min,
    Max,
}

impl Agg {
    /// Suffix used for output column names, e.g. `fare_sum`.
    pub fn suffix(&self) -> &'static str {
        match self {
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::Count => "count",
            Agg::Min => "min",
            Agg::Max => "max",
        }
    }
}

/// A columnar dataframe.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    columns: Vec<(String, Column)>,
}

impl DataFrame {
    /// An empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from (name, column) pairs, validating lengths and names.
    pub fn from_columns(columns: Vec<(&str, Column)>) -> Result<Self, DfError> {
        let mut df = Self::new();
        for (name, col) in columns {
            df.add_column(name, col)?;
        }
        Ok(df)
    }

    /// Appends a column.
    pub fn add_column(&mut self, name: &str, col: Column) -> Result<(), DfError> {
        if self.columns.iter().any(|(n, _)| n == name) {
            return Err(DfError::DuplicateColumn(name.to_owned()));
        }
        if !self.columns.is_empty() && col.len() != self.num_rows() {
            return Err(DfError::LengthMismatch {
                expected: self.num_rows(),
                got: col.len(),
            });
        }
        self.columns.push((name.to_owned(), col));
        Ok(())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|(_, c)| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, DfError> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| DfError::NoSuchColumn(name.to_owned()))
    }

    /// Typed f64 column accessor.
    pub fn f64_column(&self, name: &str) -> Result<&[f64], DfError> {
        self.column(name)?.as_f64().ok_or(DfError::TypeMismatch {
            column: name.to_owned(),
            expected: "f64",
        })
    }

    /// Typed i64 column accessor.
    pub fn i64_column(&self, name: &str) -> Result<&[i64], DfError> {
        self.column(name)?.as_i64().ok_or(DfError::TypeMismatch {
            column: name.to_owned(),
            expected: "i64",
        })
    }

    /// Typed string column accessor.
    pub fn str_column(&self, name: &str) -> Result<&[String], DfError> {
        self.column(name)?.as_str().ok_or(DfError::TypeMismatch {
            column: name.to_owned(),
            expected: "str",
        })
    }

    /// Projection onto a subset of columns.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame, DfError> {
        let mut out = DataFrame::new();
        for &n in names {
            out.add_column(n, self.column(n)?.clone())?;
        }
        Ok(out)
    }

    /// Rows where `mask` is true (mask length must equal rows).
    pub fn filter_mask(&self, mask: &[bool]) -> Result<DataFrame, DfError> {
        if mask.len() != self.num_rows() {
            return Err(DfError::LengthMismatch {
                expected: self.num_rows(),
                got: mask.len(),
            });
        }
        Ok(DataFrame {
            columns: self
                .columns
                .iter()
                .map(|(n, c)| (n.clone(), c.filter(mask)))
                .collect(),
        })
    }

    /// Rows where the f64 predicate holds on `column`.
    pub fn filter_f64(
        &self,
        column: &str,
        pred: impl Fn(f64) -> bool,
    ) -> Result<DataFrame, DfError> {
        let mask: Vec<bool> = self.f64_column(column)?.iter().map(|&v| pred(v)).collect();
        self.filter_mask(&mask)
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let idx: Vec<usize> = (0..self.num_rows().min(n)).collect();
        DataFrame {
            columns: self
                .columns
                .iter()
                .map(|(name, c)| (name.clone(), c.gather(&idx)))
                .collect(),
        }
    }

    /// Concatenates frames with identical schemas (row-wise).
    pub fn concat(frames: &[DataFrame]) -> Result<DataFrame, DfError> {
        let Some(first) = frames.first() else {
            return Ok(DataFrame::new());
        };
        let mut out = first.clone();
        for f in &frames[1..] {
            for (i, (name, col)) in out.columns.iter_mut().enumerate() {
                let (other_name, other_col) = &f.columns[i];
                if other_name != name {
                    return Err(DfError::NoSuchColumn(other_name.clone()));
                }
                match (col, other_col) {
                    (Column::F64(a), Column::F64(b)) => a.extend_from_slice(b),
                    (Column::I64(a), Column::I64(b)) => a.extend_from_slice(b),
                    (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
                    _ => {
                        return Err(DfError::TypeMismatch {
                            column: name.clone(),
                            expected: "matching types",
                        })
                    }
                }
            }
        }
        Ok(out)
    }

    /// Group-by over an i64 key column with f64 aggregations.
    ///
    /// Output: one row per distinct key (ascending), columns
    /// `key`, then `<col>_<agg>` per requested aggregation.
    pub fn groupby_i64(&self, key: &str, aggs: &[(&str, Agg)]) -> Result<DataFrame, DfError> {
        let keys = self.i64_column(key)?;
        // Validate value columns first.
        for (col, _) in aggs {
            self.f64_column(col)?;
        }
        let mut groups: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            groups.entry(k).or_default().push(i);
        }
        let mut distinct: Vec<i64> = groups.keys().copied().collect();
        distinct.sort_unstable();

        let mut out = DataFrame::new();
        out.add_column(key, Column::I64(distinct.clone()))?;
        for (col, agg) in aggs {
            let values = self.f64_column(col)?;
            let agged: Vec<f64> = distinct
                .iter()
                .map(|k| {
                    let rows = &groups[k];
                    match agg {
                        Agg::Count => rows.len() as f64,
                        Agg::Sum => rows.iter().map(|&i| values[i]).sum(),
                        Agg::Mean => {
                            rows.iter().map(|&i| values[i]).sum::<f64>() / rows.len() as f64
                        }
                        Agg::Min => rows
                            .iter()
                            .map(|&i| values[i])
                            .fold(f64::INFINITY, f64::min),
                        Agg::Max => rows
                            .iter()
                            .map(|&i| values[i])
                            .fold(f64::NEG_INFINITY, f64::max),
                    }
                })
                .collect();
            out.add_column(&format!("{col}_{}", agg.suffix()), Column::F64(agged))?;
        }
        Ok(out)
    }

    /// Ascending sort by an f64 column (stable).
    pub fn sort_by_f64(&self, column: &str) -> Result<DataFrame, DfError> {
        let values = self.f64_column(column)?;
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
        Ok(DataFrame {
            columns: self
                .columns
                .iter()
                .map(|(n, c)| (n.clone(), c.gather(&idx)))
                .collect(),
        })
    }

    /// Inner join on i64 key columns (hash join; left row order).
    pub fn join_i64(&self, other: &DataFrame, key: &str) -> Result<DataFrame, DfError> {
        let left_keys = self.i64_column(key)?;
        let right_keys = other.i64_column(key)?;
        let mut right_index: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, &k) in right_keys.iter().enumerate() {
            right_index.entry(k).or_default().push(i);
        }
        let mut left_rows = Vec::new();
        let mut right_rows = Vec::new();
        for (i, &k) in left_keys.iter().enumerate() {
            if let Some(matches) = right_index.get(&k) {
                for &j in matches {
                    left_rows.push(i);
                    right_rows.push(j);
                }
            }
        }
        let mut out = DataFrame::new();
        for (n, c) in &self.columns {
            out.add_column(n, c.gather(&left_rows))?;
        }
        for (n, c) in &other.columns {
            if n == key {
                continue;
            }
            let name = if self.columns.iter().any(|(ln, _)| ln == n) {
                format!("{n}_right")
            } else {
                n.clone()
            };
            out.add_column(&name, c.gather(&right_rows))?;
        }
        Ok(out)
    }

    /// The classic RAPIDS demo dataset: synthetic taxi trips with zone,
    /// distance, fare, and passenger count.
    pub fn taxi_trips(n: usize, seed: u64) -> DataFrame {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut zone = Vec::with_capacity(n);
        let mut distance = Vec::with_capacity(n);
        let mut fare = Vec::with_capacity(n);
        let mut passengers = Vec::with_capacity(n);
        for _ in 0..n {
            let z = rng.gen_range(0..8i64);
            let d: f64 = rng.gen_range(0.3..15.0);
            // Fare model: flagfall + per-mile rate + noise, pricier zones.
            let f = 2.5 + 1.8 * d + 0.4 * z as f64 + rng.gen_range(-0.5..0.5);
            zone.push(z);
            distance.push(d);
            fare.push(f.max(2.5));
            passengers.push(rng.gen_range(1..5i64));
        }
        DataFrame::from_columns(vec![
            ("zone", Column::I64(zone)),
            ("distance", Column::F64(distance)),
            ("fare", Column::F64(fare)),
            ("passengers", Column::I64(passengers)),
        ])
        .expect("static schema is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            ("k", Column::I64(vec![1, 2, 1, 2, 3])),
            ("v", Column::F64(vec![10.0, 20.0, 30.0, 40.0, 50.0])),
            (
                "tag",
                Column::Str(vec![
                    "a".into(),
                    "b".into(),
                    "c".into(),
                    "d".into(),
                    "e".into(),
                ]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let df = sample();
        assert_eq!(df.num_rows(), 5);
        assert_eq!(df.num_columns(), 3);
        assert_eq!(df.names(), vec!["k", "v", "tag"]);
        let mut bad = sample();
        assert!(matches!(
            bad.add_column("v", Column::F64(vec![1.0; 5])),
            Err(DfError::DuplicateColumn(_))
        ));
        assert!(matches!(
            bad.add_column("short", Column::F64(vec![1.0])),
            Err(DfError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn typed_accessors_enforce_types() {
        let df = sample();
        assert!(df.f64_column("v").is_ok());
        assert!(matches!(
            df.f64_column("k"),
            Err(DfError::TypeMismatch { .. })
        ));
        assert!(matches!(df.column("ghost"), Err(DfError::NoSuchColumn(_))));
        assert_eq!(df.str_column("tag").unwrap()[4], "e");
    }

    #[test]
    fn select_and_head() {
        let df = sample();
        let s = df.select(&["v", "k"]).unwrap();
        assert_eq!(s.names(), vec!["v", "k"]);
        let h = df.head(2);
        assert_eq!(h.num_rows(), 2);
        assert_eq!(h.f64_column("v").unwrap(), &[10.0, 20.0]);
        assert_eq!(df.head(100).num_rows(), 5);
    }

    #[test]
    fn filter_by_predicate() {
        let df = sample();
        let f = df.filter_f64("v", |v| v > 25.0).unwrap();
        assert_eq!(f.num_rows(), 3);
        assert_eq!(f.i64_column("k").unwrap(), &[1, 2, 3]);
        assert_eq!(f.str_column("tag").unwrap()[0], "c");
    }

    #[test]
    fn groupby_all_aggregations() {
        let df = sample();
        let g = df
            .groupby_i64(
                "k",
                &[
                    ("v", Agg::Sum),
                    ("v", Agg::Mean),
                    ("v", Agg::Count),
                    ("v", Agg::Min),
                    ("v", Agg::Max),
                ],
            )
            .unwrap();
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.i64_column("k").unwrap(), &[1, 2, 3]);
        assert_eq!(g.f64_column("v_sum").unwrap(), &[40.0, 60.0, 50.0]);
        assert_eq!(g.f64_column("v_mean").unwrap(), &[20.0, 30.0, 50.0]);
        assert_eq!(g.f64_column("v_count").unwrap(), &[2.0, 2.0, 1.0]);
        assert_eq!(g.f64_column("v_min").unwrap(), &[10.0, 20.0, 50.0]);
        assert_eq!(g.f64_column("v_max").unwrap(), &[30.0, 40.0, 50.0]);
    }

    #[test]
    fn sort_is_stable_ascending() {
        let df = sample();
        let s = df.sort_by_f64("v").unwrap();
        assert_eq!(s.f64_column("v").unwrap(), &[10.0, 20.0, 30.0, 40.0, 50.0]);
        // Already sorted: tag order preserved.
        assert_eq!(s.str_column("tag").unwrap()[0], "a");
    }

    #[test]
    fn inner_join_matches_keys() {
        let left = sample();
        let right = DataFrame::from_columns(vec![
            ("k", Column::I64(vec![1, 3])),
            ("name", Column::Str(vec!["one".into(), "three".into()])),
        ])
        .unwrap();
        let j = left.join_i64(&right, "k").unwrap();
        // Keys 1 (twice) and 3 (once) match; key 2 drops.
        assert_eq!(j.num_rows(), 3);
        assert_eq!(j.i64_column("k").unwrap(), &[1, 1, 3]);
        assert_eq!(j.str_column("name").unwrap()[2], "three");
    }

    #[test]
    fn join_renames_colliding_columns() {
        let left = sample();
        let right = DataFrame::from_columns(vec![
            ("k", Column::I64(vec![1])),
            ("v", Column::F64(vec![-1.0])),
        ])
        .unwrap();
        let j = left.join_i64(&right, "k").unwrap();
        assert!(j.names().contains(&"v_right"));
    }

    #[test]
    fn concat_appends_rows() {
        let a = sample();
        let b = sample();
        let c = DataFrame::concat(&[a, b]).unwrap();
        assert_eq!(c.num_rows(), 10);
        assert_eq!(DataFrame::concat(&[]).unwrap().num_rows(), 0);
    }

    #[test]
    fn taxi_dataset_shape_and_fares() {
        let t = DataFrame::taxi_trips(500, 1);
        assert_eq!(t.num_rows(), 500);
        let fares = t.f64_column("fare").unwrap();
        assert!(fares.iter().all(|&f| f >= 2.5));
        // Fares correlate with distance (the groupby lab's expected signal).
        let g = t.groupby_i64("zone", &[("fare", Agg::Mean)]).unwrap();
        assert_eq!(g.num_rows(), 8);
        // Deterministic per seed.
        assert_eq!(DataFrame::taxi_trips(500, 1), t);
    }
}
