//! GPU-charged dataframe operations (the cuDF role).
//!
//! Wraps a [`DataFrame`] with a simulated device: the arithmetic is the
//! same host implementation, but every operation charges a kernel with the
//! appropriate shape — filters are coalesced scans, hash aggregations are
//! gather-dominated — so the profiling labs can see where a dataframe
//! pipeline's time goes.

use crate::frame::{Agg, DataFrame};
use crate::DfError;
use gpu_sim::{AccessPattern, Gpu, KernelProfile, LaunchConfig, LaunchSpec};
use std::sync::Arc;

/// A dataframe bound to a simulated GPU.
#[derive(Clone)]
pub struct GpuFrame {
    pub df: DataFrame,
    gpu: Arc<Gpu>,
}

impl GpuFrame {
    /// Moves `df` "onto" `gpu`, charging the host→device transfer.
    pub fn upload(df: DataFrame, gpu: Arc<Gpu>) -> Self {
        let bytes: u64 = df
            .names()
            .iter()
            .filter_map(|n| df.column(n).ok())
            .map(|c| c.size_bytes())
            .sum();
        let _ = gpu.htod(&vec![0u8; bytes as usize]).map(drop);
        Self { df, gpu }
    }

    /// The device this frame is charged to.
    pub fn gpu(&self) -> &Arc<Gpu> {
        &self.gpu
    }

    fn row_bytes(&self) -> u64 {
        let n = self.df.num_rows().max(1) as u64;
        let total: u64 = self
            .df
            .names()
            .iter()
            .filter_map(|c| self.df.column(c).ok())
            .map(|c| c.size_bytes())
            .sum();
        total / n
    }

    /// GPU-charged filter on an f64 column.
    pub fn filter_f64(
        &self,
        column: &str,
        pred: impl Fn(f64) -> bool,
    ) -> Result<GpuFrame, DfError> {
        let n = self.df.num_rows() as u64;
        let profile = KernelProfile {
            flops: n,
            bytes: n * (8 + self.row_bytes()),
            access: AccessPattern::Coalesced,
            registers_per_thread: 24,
        };
        let cfg = LaunchConfig::for_elements(n.max(1), 256);
        let df = LaunchSpec::new("df_filter", cfg, profile)
            .run(&self.gpu, || self.df.filter_f64(column, pred))
            .expect("valid launch")?;
        Ok(GpuFrame {
            df,
            gpu: Arc::clone(&self.gpu),
        })
    }

    /// GPU-charged group-by (hash aggregation: gather-heavy).
    pub fn groupby_i64(&self, key: &str, aggs: &[(&str, Agg)]) -> Result<GpuFrame, DfError> {
        let n = self.df.num_rows() as u64;
        let profile = KernelProfile {
            flops: n * aggs.len().max(1) as u64,
            bytes: n * 8 * (1 + aggs.len() as u64) * 2,
            access: AccessPattern::Random, // hash-table probes
            registers_per_thread: 40,
        };
        let cfg = LaunchConfig::for_elements(n.max(1), 128);
        let df = LaunchSpec::new("df_groupby", cfg, profile)
            .run(&self.gpu, || self.df.groupby_i64(key, aggs))
            .expect("valid launch")?;
        Ok(GpuFrame {
            df,
            gpu: Arc::clone(&self.gpu),
        })
    }

    /// GPU-charged sort (bitonic-ish cost: n log² n compare-swaps).
    pub fn sort_by_f64(&self, column: &str) -> Result<GpuFrame, DfError> {
        let n = self.df.num_rows().max(2) as u64;
        let log2 = (64 - n.leading_zeros()) as u64;
        let profile = KernelProfile {
            flops: n * log2 * log2,
            bytes: 8 * n * log2,
            access: AccessPattern::Strided,
            registers_per_thread: 32,
        };
        let cfg = LaunchConfig::for_elements(n, 256);
        let df = LaunchSpec::new("df_sort", cfg, profile)
            .run(&self.gpu, || self.df.sort_by_f64(column))
            .expect("valid launch")?;
        Ok(GpuFrame {
            df,
            gpu: Arc::clone(&self.gpu),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn gpu_frame(n: usize) -> GpuFrame {
        GpuFrame::upload(
            DataFrame::taxi_trips(n, 3),
            Arc::new(Gpu::new(0, DeviceSpec::t4())),
        )
    }

    #[test]
    fn gpu_results_match_host() {
        let gf = gpu_frame(300);
        let host = gf.df.filter_f64("fare", |f| f > 10.0).unwrap();
        let dev = gf.filter_f64("fare", |f| f > 10.0).unwrap();
        assert_eq!(dev.df, host);

        let host_g = gf.df.groupby_i64("zone", &[("fare", Agg::Mean)]).unwrap();
        let dev_g = gf.groupby_i64("zone", &[("fare", Agg::Mean)]).unwrap();
        assert_eq!(dev_g.df, host_g);
    }

    #[test]
    fn operations_charge_kernels_with_expected_names() {
        let gf = gpu_frame(200);
        let t0 = gf.gpu().now_ns();
        let _ = gf.filter_f64("fare", |f| f > 5.0).unwrap();
        let _ = gf.groupby_i64("zone", &[("fare", Agg::Sum)]).unwrap();
        let _ = gf.sort_by_f64("distance").unwrap();
        assert!(gf.gpu().now_ns() > t0);
        let names: Vec<String> = gf
            .gpu()
            .recorder()
            .snapshot()
            .iter()
            .map(|e| e.name.clone())
            .collect();
        assert!(names.contains(&"df_filter".to_owned()));
        assert!(names.contains(&"df_groupby".to_owned()));
        assert!(names.contains(&"df_sort".to_owned()));
    }

    #[test]
    fn upload_charges_transfer() {
        let gf = gpu_frame(100);
        let evs = gf.gpu().recorder().snapshot();
        assert!(evs.iter().any(|e| e.kind == gpu_sim::EventKind::MemcpyH2D));
    }

    #[test]
    fn groupby_gather_costs_more_than_filter_scan_per_byte() {
        // Random-access aggregation achieves less effective bandwidth than
        // a coalesced scan: with comparable bytes, it must take longer.
        let gf = gpu_frame(5_000);
        let t0 = gf.gpu().now_ns();
        let _ = gf.filter_f64("fare", |f| f > 0.0).unwrap();
        let filter_dt = gf.gpu().now_ns() - t0;
        let t1 = gf.gpu().now_ns();
        let _ = gf
            .groupby_i64(
                "zone",
                &[
                    ("fare", Agg::Sum),
                    ("distance", Agg::Sum),
                    ("fare", Agg::Count),
                ],
            )
            .unwrap();
        let groupby_dt = gf.gpu().now_ns() - t1;
        assert!(
            groupby_dt > filter_dt / 4,
            "groupby {groupby_dt} vs filter {filter_dt}"
        );
    }
}
