//! # sagegpu-df — RAPIDS/Dask-style dataframes on simulated GPUs
//!
//! Week 6 of the reproduced course ("RAPIDS + Dask for Scalable Data
//! Pipelines", Lab 6: "Parallel data processing using Dask with RAPIDS
//! cuDF") and Assignment 2 ("Distributed GPU Data Processing") run
//! columnar analytics on GPU dataframes partitioned across Dask workers.
//! Neither cuDF nor Dask exists in Rust, so this crate provides the
//! equivalents:
//!
//! - [`column::Column`] — typed columnar storage (f64 / i64 / string).
//! - [`frame::DataFrame`] — a cuDF-like single-node frame: select,
//!   filter, derived columns, group-by aggregation, sort, inner join;
//!   plus the classic taxi-trips demo dataset generator.
//! - [`gpu`] — the same operations charged to a [`gpu_sim::Gpu`]
//!   (elementwise scans for filters, gather-heavy hash aggregation), so
//!   profiling labs can inspect dataframe pipelines.
//! - [`distributed`] — Dask's partitioned-dataframe model over
//!   [`taskflow::cluster::LocalCluster`]: `map_partitions`, filtering,
//!   and the two-phase (partial → combine) group-by aggregation that the
//!   lab teaches as "why distributed group-by needs no shuffle for
//!   algebraic aggregates".

pub mod column;
pub mod distributed;
pub mod frame;
pub mod gpu;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::column::Column;
    pub use crate::distributed::PartitionedFrame;
    pub use crate::frame::{Agg, DataFrame};
    pub use crate::gpu::GpuFrame;
    pub use crate::DfError;
}

/// Errors raised by dataframe operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DfError {
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// Column has the wrong type for the operation.
    TypeMismatch {
        column: String,
        expected: &'static str,
    },
    /// Columns of differing lengths in one frame.
    LengthMismatch { expected: usize, got: usize },
    /// A column name used twice.
    DuplicateColumn(String),
}

impl std::fmt::Display for DfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            DfError::TypeMismatch { column, expected } => {
                write!(f, "column {column} is not of type {expected}")
            }
            DfError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "column length {got} does not match frame length {expected}"
                )
            }
            DfError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
        }
    }
}

impl std::error::Error for DfError {}
