//! Typed columnar storage.

/// One column of a dataframe.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    F64(Vec<f64>),
    I64(Vec<i64>),
    Str(Vec<String>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Type label for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::F64(_) => "f64",
            Column::I64(_) => "i64",
            Column::Str(_) => "str",
        }
    }

    /// Borrow as f64 data, if that is the type.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as i64 data.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Column::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as string data.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// New column keeping only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        match self {
            Column::F64(v) => Column::F64(
                v.iter()
                    .zip(mask)
                    .filter(|(_, &m)| m)
                    .map(|(x, _)| *x)
                    .collect(),
            ),
            Column::I64(v) => Column::I64(
                v.iter()
                    .zip(mask)
                    .filter(|(_, &m)| m)
                    .map(|(x, _)| *x)
                    .collect(),
            ),
            Column::Str(v) => Column::Str(
                v.iter()
                    .zip(mask)
                    .filter(|(_, &m)| m)
                    .map(|(x, _)| x.clone())
                    .collect(),
            ),
        }
    }

    /// New column gathering rows by index (indices must be in range).
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::F64(v) => Column::F64(indices.iter().map(|&i| v[i]).collect()),
            Column::I64(v) => Column::I64(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Approximate bytes of this column (for GPU cost models).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Column::F64(v) => 8 * v.len() as u64,
            Column::I64(v) => 8 * v.len() as u64,
            Column::Str(v) => v.iter().map(|s| s.len() as u64 + 8).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_types() {
        let c = Column::F64(vec![1.0, 2.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.type_name(), "f64");
        assert!(c.as_f64().is_some());
        assert!(c.as_i64().is_none());
        assert!(!c.is_empty());
        assert!(Column::Str(vec![]).is_empty());
    }

    #[test]
    fn filter_by_mask() {
        let c = Column::I64(vec![10, 20, 30, 40]);
        let f = c.filter(&[true, false, false, true]);
        assert_eq!(f, Column::I64(vec![10, 40]));
        let s = Column::Str(vec!["a".into(), "b".into()]);
        assert_eq!(s.filter(&[false, true]), Column::Str(vec!["b".into()]));
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let c = Column::F64(vec![1.0, 2.0, 3.0]);
        assert_eq!(c.gather(&[2, 0, 2]), Column::F64(vec![3.0, 1.0, 3.0]));
    }

    #[test]
    fn size_bytes_counts_payload() {
        assert_eq!(Column::F64(vec![0.0; 4]).size_bytes(), 32);
        assert_eq!(Column::I64(vec![0; 2]).size_bytes(), 16);
        let s = Column::Str(vec!["ab".into()]);
        assert_eq!(s.size_bytes(), 10);
    }
}
