//! Dask's partitioned-dataframe model (Lab 6, Assignment 2).
//!
//! A [`PartitionedFrame`] is a dataframe split row-wise across the workers
//! of a [`LocalCluster`], each worker pinned to a simulated GPU. The two
//! operations the lab builds are here: embarrassingly parallel
//! `map_partitions`, and the two-phase distributed group-by — local
//! partial aggregates (sum/count per key on each partition) combined on
//! the client, which is exactly how Dask computes algebraic aggregates
//! without a shuffle.

use crate::column::Column;
use crate::frame::{Agg, DataFrame};
use crate::gpu::GpuFrame;
use crate::DfError;
use std::collections::BTreeMap;
use std::sync::Arc;
use taskflow::cluster::LocalCluster;

/// A row-partitioned dataframe whose partitions live on cluster workers.
pub struct PartitionedFrame {
    partitions: Vec<Arc<DataFrame>>,
    cluster: Arc<LocalCluster>,
}

impl PartitionedFrame {
    /// Splits `df` into one contiguous partition per cluster worker.
    pub fn from_frame(df: DataFrame, cluster: Arc<LocalCluster>) -> Self {
        let workers = cluster.len();
        let n = df.num_rows();
        let chunk = n.div_ceil(workers.max(1)).max(1);
        let mut partitions = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = (w * chunk).min(n);
            let hi = ((w + 1) * chunk).min(n);
            let idx: Vec<usize> = (lo..hi).collect();
            let mut part = DataFrame::new();
            for name in df.names() {
                let col = df.column(name).expect("name from df").gather(&idx);
                part.add_column(name, col).expect("consistent schema");
            }
            partitions.push(Arc::new(part));
        }
        Self {
            partitions,
            cluster,
        }
    }

    /// Number of partitions (= workers).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total rows across partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.num_rows()).sum()
    }

    /// Applies `f` to every partition on its worker (with the worker's GPU
    /// charged via a [`GpuFrame`]), returning the new partitioned frame.
    pub fn map_partitions<F>(&self, f: F) -> Result<PartitionedFrame, DfError>
    where
        F: Fn(&GpuFrame) -> Result<DataFrame, DfError> + Send + Sync + Clone + 'static,
    {
        let futures: Vec<_> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(w, part)| {
                let part = Arc::clone(part);
                let f = f.clone();
                self.cluster
                    .submit_to(w, move |ctx| {
                        let gf = GpuFrame::upload((*part).clone(), Arc::clone(ctx.gpu()));
                        f(&gf)
                    })
                    .expect("worker exists")
            })
            .collect();
        let mut partitions = Vec::with_capacity(self.partitions.len());
        for fut in futures {
            partitions.push(Arc::new(fut.wait().expect("partition task")?));
        }
        Ok(PartitionedFrame {
            partitions,
            cluster: Arc::clone(&self.cluster),
        })
    }

    /// Distributed filter on an f64 column.
    pub fn filter_f64(
        &self,
        column: &str,
        pred: impl Fn(f64) -> bool + Send + Sync + Clone + 'static,
    ) -> Result<PartitionedFrame, DfError> {
        let column = column.to_owned();
        self.map_partitions(move |gf| Ok(gf.filter_f64(&column, pred.clone())?.df))
    }

    /// Two-phase distributed group-by: mean of `value` per `key`.
    ///
    /// Phase 1 (on workers): per-partition (sum, count) per key.
    /// Phase 2 (client): combine partials; mean = Σsum / Σcount.
    pub fn groupby_mean(&self, key: &str, value: &str) -> Result<DataFrame, DfError> {
        let key_owned = key.to_owned();
        let value_owned = value.to_owned();
        let futures: Vec<_> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(w, part)| {
                let part = Arc::clone(part);
                let key = key_owned.clone();
                let value = value_owned.clone();
                self.cluster
                    .submit_to(w, move |ctx| {
                        let gf = GpuFrame::upload((*part).clone(), Arc::clone(ctx.gpu()));
                        gf.groupby_i64(&key, &[(&value, Agg::Sum), (&value, Agg::Count)])
                            .map(|g| g.df)
                    })
                    .expect("worker exists")
            })
            .collect();

        let mut sums: BTreeMap<i64, (f64, f64)> = BTreeMap::new();
        for fut in futures {
            let partial = fut.wait().expect("partial agg")?;
            let keys = partial.i64_column(key)?;
            let s = partial.f64_column(&format!("{value}_sum"))?;
            let c = partial.f64_column(&format!("{value}_count"))?;
            for i in 0..partial.num_rows() {
                let e = sums.entry(keys[i]).or_insert((0.0, 0.0));
                e.0 += s[i];
                e.1 += c[i];
            }
        }
        let keys: Vec<i64> = sums.keys().copied().collect();
        let means: Vec<f64> = sums.values().map(|(s, c)| s / c.max(1.0)).collect();
        DataFrame::from_columns(vec![
            (key, Column::I64(keys)),
            (&format!("{value}_mean"), Column::F64(means)),
        ])
    }

    /// Gathers all partitions back into one frame (client-side collect).
    pub fn collect(&self) -> Result<DataFrame, DfError> {
        let frames: Vec<DataFrame> = self.partitions.iter().map(|p| (**p).clone()).collect();
        DataFrame::concat(&frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::cluster::LinkKind;
    use gpu_sim::{DeviceSpec, GpuCluster};
    use taskflow::cluster::ClusterBuilder;

    fn setup(n: usize, workers: usize) -> (PartitionedFrame, Arc<GpuCluster>) {
        let gpus = Arc::new(GpuCluster::homogeneous(
            workers,
            DeviceSpec::t4(),
            LinkKind::Pcie,
        ));
        let cluster = Arc::new(ClusterBuilder::new().gpus(Arc::clone(&gpus)).build());
        let df = DataFrame::taxi_trips(n, 9);
        (PartitionedFrame::from_frame(df, cluster), gpus)
    }

    #[test]
    fn partitioning_preserves_rows() {
        let (pf, _) = setup(103, 4);
        assert_eq!(pf.num_partitions(), 4);
        assert_eq!(pf.num_rows(), 103);
        let collected = pf.collect().unwrap();
        assert_eq!(collected, DataFrame::taxi_trips(103, 9));
    }

    #[test]
    fn distributed_filter_matches_single_node() {
        let (pf, _) = setup(200, 3);
        let filtered = pf.filter_f64("fare", |f| f > 12.0).unwrap();
        let expected = DataFrame::taxi_trips(200, 9)
            .filter_f64("fare", |f| f > 12.0)
            .unwrap();
        assert_eq!(filtered.collect().unwrap(), expected);
    }

    #[test]
    fn two_phase_groupby_matches_single_node_exactly_on_counts() {
        let (pf, _) = setup(400, 4);
        let dist = pf.groupby_mean("zone", "fare").unwrap();
        let single = DataFrame::taxi_trips(400, 9)
            .groupby_i64("zone", &[("fare", Agg::Mean)])
            .unwrap();
        assert_eq!(
            dist.i64_column("zone").unwrap(),
            single.i64_column("zone").unwrap()
        );
        let d = dist.f64_column("fare_mean").unwrap();
        let s = single.f64_column("fare_mean").unwrap();
        for (a, b) in d.iter().zip(s) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn work_is_charged_across_all_gpus() {
        let (pf, gpus) = setup(300, 3);
        let _ = pf.groupby_mean("zone", "fare").unwrap();
        for d in gpus.devices() {
            assert!(d.kernels_launched() > 0, "device {} idle", d.ordinal());
            assert!(d.now_ns() > 0);
        }
    }

    #[test]
    fn map_partitions_propagates_errors() {
        let (pf, _) = setup(50, 2);
        let result = pf.map_partitions(|gf| gf.filter_f64("nonexistent", |_| true).map(|g| g.df));
        assert!(matches!(result, Err(DfError::NoSuchColumn(_))));
    }

    #[test]
    fn uneven_partition_sizes_handled() {
        let (pf, _) = setup(10, 4);
        // 10 rows over 4 workers: 3/3/3/1.
        assert_eq!(pf.num_rows(), 10);
        let sizes: Vec<usize> = pf.partitions.iter().map(|p| p.num_rows()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s >= 1));
    }
}
