//! Tests for the trace perf-regression gate library: the committed goldens
//! must exist and pass against freshly recorded traces, and doctored
//! metrics (slower schedule, extra submission, newly exposed comm) must
//! fail `check_gate` under the pinned tolerances.

use sagegpu_bench::gate::{
    check_gate, golden_path, metrics_for, record_gcn_epoch_trace, record_rag_batch_trace,
    record_rag_sharded_trace, record_rag_tiered_trace, GateMetrics, GateTolerances,
    GATED_WORKLOADS,
};
use sagegpu_core::gpu::trace::{replay, TraceV1, WhatIf};

fn golden_metrics(stem: &str) -> GateMetrics {
    let path = golden_path(stem);
    let trace = TraceV1::read_file(&path).unwrap_or_else(|e| {
        panic!(
            "golden {stem} unreadable at {} ({e}); run `trace_gate --bless`",
            path.display()
        )
    });
    metrics_for(&trace)
}

#[test]
fn committed_goldens_pass_against_fresh_recordings() {
    let tol = GateTolerances::default();
    for (name, stem) in GATED_WORKLOADS {
        let golden = golden_metrics(stem);
        let current = match name {
            "gcn-epoch" => metrics_for(&record_gcn_epoch_trace()),
            "rag-sharded" => metrics_for(&record_rag_sharded_trace()),
            "rag-tiered" => metrics_for(&record_rag_tiered_trace()),
            _ => metrics_for(&record_rag_batch_trace()),
        };
        let violations = check_gate(&golden, &current, &tol);
        assert!(
            violations.is_empty(),
            "{name} gate failed against its own golden: {violations:?}"
        );
        // The simulator is deterministic, so the match is exact, not
        // merely within tolerance.
        assert_eq!(golden, current, "{name} recording drifted from the golden");
    }
}

#[test]
fn golden_traces_identity_replay_exactly() {
    for (name, stem) in GATED_WORKLOADS {
        let trace =
            TraceV1::read_file(golden_path(stem)).unwrap_or_else(|e| panic!("golden {stem}: {e}"));
        let rep = replay(&trace, &WhatIf::default()).expect("identity replay");
        assert_eq!(
            rep.sim_time_ns, trace.sim_time_ns,
            "{name} sim-time drifted"
        );
        assert_eq!(
            rep.submissions,
            trace.submissions(),
            "{name} submissions drifted"
        );
        assert_eq!(
            rep.kernel_launches, trace.kernel_launches,
            "{name} launch count drifted"
        );
    }
}

#[test]
fn ten_percent_slower_schedule_fails_the_gate() {
    let golden = golden_metrics("gcn_epoch");
    let doctored = GateMetrics {
        sim_time_ns: golden.sim_time_ns + golden.sim_time_ns / 10,
        ..golden.clone()
    };
    let violations = check_gate(&golden, &doctored, &GateTolerances::default());
    assert_eq!(
        violations.len(),
        1,
        "expected exactly the sim-time violation"
    );
    assert!(
        violations[0].contains("sim-time regressed"),
        "{violations:?}"
    );
}

#[test]
fn unexplained_speedup_also_fails_the_gate() {
    let golden = golden_metrics("gcn_epoch");
    let doctored = GateMetrics {
        sim_time_ns: golden.sim_time_ns - golden.sim_time_ns / 10,
        ..golden.clone()
    };
    let violations = check_gate(&golden, &doctored, &GateTolerances::default());
    assert_eq!(violations.len(), 1);
    assert!(
        violations[0].contains("sim-time improved"),
        "{violations:?}"
    );
}

#[test]
fn one_extra_submission_fails_the_gate() {
    let golden = golden_metrics("gcn_epoch");
    let doctored = GateMetrics {
        submissions: golden.submissions + 1,
        ..golden.clone()
    };
    let violations = check_gate(&golden, &doctored, &GateTolerances::default());
    assert_eq!(
        violations.len(),
        1,
        "expected exactly the submission violation"
    );
    assert!(
        violations[0].contains("submission count changed"),
        "{violations:?}"
    );
}

#[test]
fn exposed_comm_growth_is_tolerated_up_to_the_pin() {
    let golden = golden_metrics("gcn_epoch");
    let tol = GateTolerances::default();
    let nudged = GateMetrics {
        exposed_comm_fraction: golden.exposed_comm_fraction + 0.01,
        ..golden.clone()
    };
    assert!(check_gate(&golden, &nudged, &tol).is_empty());
    let blown = GateMetrics {
        exposed_comm_fraction: golden.exposed_comm_fraction + 0.03,
        ..golden.clone()
    };
    let violations = check_gate(&golden, &blown, &tol);
    assert_eq!(violations.len(), 1);
    assert!(
        violations[0].contains("exposed-comm fraction grew"),
        "{violations:?}"
    );
    // One-sided: shrinking exposed comm never fails.
    let improved = GateMetrics {
        exposed_comm_fraction: 0.0,
        ..golden.clone()
    };
    assert!(check_gate(&golden, &improved, &tol).is_empty());
}

#[test]
fn tolerance_parsing_handles_defaults_and_unknown_fields() {
    let d = GateTolerances::default();
    assert_eq!(d.sim_time_rel, 0.01);
    assert_eq!(d.exposed_comm_abs, 0.02);
    // Missing fields fall back to defaults; unknown fields are ignored.
    let t = GateTolerances::from_json(r#"{"sim_time_rel_tol": 0.05, "future_knob": 7}"#)
        .expect("parses");
    assert_eq!(t.sim_time_rel, 0.05);
    assert_eq!(t.exposed_comm_abs, d.exposed_comm_abs);
    let empty = GateTolerances::from_json("{}").expect("parses");
    assert_eq!(empty, d);
    // The committed gate.json round-trips through the parser.
    let committed = GateTolerances::from_json(&d.to_json()).expect("round-trips");
    assert_eq!(committed, d);
    assert!(GateTolerances::from_json("not json").is_err());
}
