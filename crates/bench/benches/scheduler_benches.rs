//! Ablation — cluster dispatch mode on an imbalanced task bag.
//!
//! Round-robin placement pins every `workers`-th (long) task to worker 0,
//! so the long tasks run serially on one thread; work stealing lets the
//! idle workers drain worker 0's backlog. The acceptance criterion for the
//! scheduler redesign is that `dispatch/work-stealing` beats
//! `dispatch/round-robin` on this workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sagegpu_core::taskflow::cluster::ClusterBuilder;
use sagegpu_core::taskflow::policy::Dispatch;
use std::time::Duration;

const WORKERS: usize = 4;
const TASKS: usize = 48;

fn run_imbalanced(dispatch: Dispatch) -> usize {
    let cluster = ClusterBuilder::new()
        .workers(WORKERS)
        .dispatch(dispatch)
        .build();
    let futures: Vec<_> = (0..TASKS)
        .map(|i| {
            let long = i % WORKERS == 0;
            cluster.submit(move |_| {
                // Long tasks block (like a worker waiting on a simulated
                // device or the interconnect) rather than spin, so the
                // backlog effect survives single-core CI runners.
                if long {
                    std::thread::sleep(Duration::from_micros(500));
                }
                i
            })
        })
        .collect();
    cluster.gather(futures).unwrap().into_iter().sum()
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    for (name, dispatch) in [
        ("round-robin", Dispatch::RoundRobin),
        ("work-stealing", Dispatch::WorkStealing),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &dispatch, |b, &d| {
            b.iter(|| run_imbalanced(d));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
