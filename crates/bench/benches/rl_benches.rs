//! Supplementary — Lab 8/10: RL training cost (tabular vs DQN).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sagegpu_core::gpu::{DeviceSpec, Gpu};
use sagegpu_core::rl::dqn::{DqnAgent, DqnConfig};
use sagegpu_core::rl::env::{Environment, GridWorld};
use sagegpu_core::rl::tabular::QLearner;

fn bench_rl(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl");
    group.sample_size(10);
    group.bench_function("tabular-100-episodes", |b| {
        b.iter(|| {
            let mut env = GridWorld::lab4x4();
            let mut q = QLearner::new(env.num_states(), env.num_actions());
            let mut rng = SmallRng::seed_from_u64(1);
            q.train(&mut env, 100, &mut rng)
        });
    });
    group.bench_function("dqn-20-episodes", |b| {
        b.iter(|| {
            let mut env = GridWorld::lab4x4();
            let mut agent =
                DqnAgent::new(env.num_states(), env.num_actions(), DqnConfig::default(), 1);
            let gpu = Gpu::new(0, DeviceSpec::t4());
            let mut rng = SmallRng::seed_from_u64(1);
            agent.train(&mut env, 20, &gpu, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rl);
criterion_main!(benches);
