//! E10/E14 — the statistical procedures on Appendix-C-sized samples.

use criterion::{criterion_group, criterion_main, Criterion};
use sagegpu_core::edu::scores::appendix_c_scores;
use sagegpu_core::stats::levene::{levene_test, Center};
use sagegpu_core::stats::mannwhitney::mann_whitney_u;
use sagegpu_core::stats::shapiro::shapiro_wilk;

fn bench_tests(c: &mut Criterion) {
    let s = appendix_c_scores(2025);
    let mut group = c.benchmark_group("stats-n20");
    group.bench_function("shapiro_wilk", |b| {
        b.iter(|| shapiro_wilk(&s.graduate).unwrap())
    });
    group.bench_function("levene", |b| {
        b.iter(|| levene_test(&[&s.graduate, &s.undergraduate], Center::Mean).unwrap())
    });
    group.bench_function("mann_whitney", |b| {
        b.iter(|| mann_whitney_u(&s.graduate, &s.undergraduate).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tests);
criterion_main!(benches);
