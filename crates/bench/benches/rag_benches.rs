//! E20 — RAG retrieval (flat vs IVF) and batched serving — plus the A05
//! online server (micro-batching and retrieval cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sagegpu_core::gpu::{DeviceSpec, Gpu};
use sagegpu_core::rag::corpus::Corpus;
use sagegpu_core::rag::embed::Embedder;
use sagegpu_core::rag::index::{FlatIndex, IvfIndex, RetrievalIndex, VectorIndex};
use sagegpu_core::rag::pipeline::build_flat_pipeline;
use sagegpu_core::rag::serve::{RagServer, ServerConfig};
use sagegpu_core::taskflow::cluster::ClusterBuilder;
use sagegpu_core::tensor::gpu_exec::GpuExecutor;
use std::sync::Arc;
use std::time::Duration;

fn bench_retrieval(c: &mut Criterion) {
    let corpus = Corpus::synthetic(500, 80, 3);
    let embedder = Embedder::new(96, 3);
    let data: Vec<(usize, Vec<f32>)> = corpus
        .docs()
        .iter()
        .map(|d| (d.id, embedder.embed(&d.text)))
        .collect();
    let mut flat = FlatIndex::new(96);
    for (id, v) in &data {
        flat.add(*id, v.clone());
    }
    let mut ivf = IvfIndex::train(96, 25, 25, &data, 3).expect("ivf trains");
    ivf.set_nprobe(3);
    let q = embedder.embed(&Corpus::topic_query(0, 6, 9));

    let mut group = c.benchmark_group("retrieval-500-docs");
    group.bench_function("flat", |b| b.iter(|| flat.search(&q, 5)));
    group.bench_function("ivf-nprobe3", |b| b.iter(|| ivf.search(&q, 5)));
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    let queries: Vec<String> = (0..16)
        .map(|i| Corpus::topic_query(i % 5, 5, i as u64))
        .collect();
    let mut group = c.benchmark_group("rag-serving-16-queries");
    group.sample_size(10);
    for &batch in &[1usize, 8] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| {
                let exec = GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
                let p = build_flat_pipeline(60, 96, exec, 3);
                p.run_workload(&queries, batch, 0)
            });
        });
    }
    group.finish();
}

fn bench_online_server(c: &mut Criterion) {
    // End-to-end online serving of 16 requests (8 distinct queries x2):
    // submit everything, wait for every response, shut down. Compares
    // batch-1/no-cache against micro-batched + cached serving.
    let queries: Vec<String> = (0..16)
        .map(|i| Corpus::topic_query((i % 8) % 5, 5, (i % 8) as u64))
        .collect();
    let mut group = c.benchmark_group("rag-online-server-16-requests");
    group.sample_size(10);
    for &(label, max_batch, cache) in &[("batch1-cold", 1usize, 0usize), ("batch8-cached", 8, 64)] {
        group.bench_with_input(
            BenchmarkId::new("config", label),
            &(max_batch, cache),
            |b, &(max_batch, cache)| {
                b.iter(|| {
                    let exec = GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
                    let pipeline = Arc::new(build_flat_pipeline(60, 96, exec, 3));
                    let cluster = ClusterBuilder::new().workers(2).build();
                    let server = RagServer::start(
                        pipeline,
                        cluster,
                        ServerConfig::new()
                            .max_batch(max_batch)
                            .batch_window(Duration::from_micros(100))
                            .cache_capacity(cache),
                    );
                    let handles: Vec<_> = queries
                        .iter()
                        .map(|q| server.submit(q.clone()).expect("ample capacity"))
                        .collect();
                    for h in handles {
                        h.wait().expect("no faults injected");
                    }
                    server.shutdown()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_retrieval, bench_serving, bench_online_server);
criterion_main!(benches);
