//! E17 — Algorithm 1: per-epoch cost, sequential vs. distributed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sagegpu_core::gcn::distributed::{train_distributed, PartitionStrategy};
use sagegpu_core::gcn::sequential::train_sequential;
use sagegpu_core::gcn::TrainConfig;
use sagegpu_core::graph::generators::{sbm, SbmParams};

fn dataset() -> sagegpu_core::graph::generators::GraphDataset {
    sbm(
        &SbmParams {
            block_sizes: vec![60; 3],
            p_in: 0.12,
            p_out: 0.01,
            feature_dim: 16,
            feature_separation: 1.2,
            train_fraction: 0.5,
        },
        5,
    )
    .unwrap()
}

fn bench_training(c: &mut Criterion) {
    let ds = dataset();
    let cfg = TrainConfig {
        epochs: 5,
        ..Default::default()
    };
    let mut group = c.benchmark_group("gcn-train-5-epochs");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| train_sequential(&ds, &cfg));
    });
    for &k in &[2usize, 4] {
        group.bench_with_input(BenchmarkId::new("distributed-metis", k), &k, |b, &k| {
            b.iter(|| train_distributed(&ds, k, &cfg, PartitionStrategy::Metis).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
