//! Supplementary — Lab 6 / Assignment 2: dataframe pipeline cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sagegpu_core::df::distributed::PartitionedFrame;
use sagegpu_core::df::frame::{Agg, DataFrame};
use sagegpu_core::gpu::cluster::LinkKind;
use sagegpu_core::gpu::{DeviceSpec, GpuCluster};
use sagegpu_core::taskflow::cluster::ClusterBuilder;
use std::sync::Arc;

fn bench_df(c: &mut Criterion) {
    let trips = DataFrame::taxi_trips(20_000, 3);
    let mut group = c.benchmark_group("df");
    group.sample_size(10);
    group.bench_function("single-node-groupby", |b| {
        b.iter(|| trips.groupby_i64("zone", &[("fare", Agg::Mean)]).unwrap());
    });
    for &workers in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("distributed-groupby", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let gpus = Arc::new(GpuCluster::homogeneous(
                        workers,
                        DeviceSpec::t4(),
                        LinkKind::Pcie,
                    ));
                    let cluster = Arc::new(ClusterBuilder::new().gpus(gpus).build());
                    let pf = PartitionedFrame::from_frame(trips.clone(), cluster);
                    pf.groupby_mean("zone", "fare").unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_df);
criterion_main!(benches);
