//! E09/E21 — cloud control-plane operation cost (provisioning throughput).

use criterion::{criterion_group, criterion_main, Criterion};
use sagegpu_core::cloud::bootstrap::BootstrapPlan;
use sagegpu_core::cloud::provider::{CloudProvider, Region};

fn bench_provisioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("cloud");
    group.bench_function("bootstrap-single-gpu-lab", |b| {
        b.iter(|| {
            let cloud = CloudProvider::new(Region::UsEast1);
            let role = cloud.create_student_role("s", 100.0).unwrap();
            let out = BootstrapPlan::single_gpu_lab("lab-1")
                .execute(&cloud, &role)
                .unwrap();
            cloud.clock().advance_secs(3600);
            BootstrapPlan::teardown(&cloud, &role, &out);
            cloud.billing().cost_for(&role)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_provisioning);
criterion_main!(benches);
