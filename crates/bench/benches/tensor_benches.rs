//! E19 — matmul and elementwise kernels: host wall-time of the real
//! computation at each size (the simulated-time sweep lives in `repro
//! --exp matmul`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sagegpu_core::gpu::{DeviceSpec, Gpu};
use sagegpu_core::tensor::dense::Tensor;
use sagegpu_core::tensor::gpu_exec::GpuExecutor;
use std::sync::Arc;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Tensor::randn(n, n, &mut rng);
        let b = Tensor::randn(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("cpu", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap());
        });
        let exec = GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
        group.bench_with_input(BenchmarkId::new("gpu-sim", n), &n, |bench, _| {
            bench.iter(|| exec.matmul(&a, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise");
    let mut rng = SmallRng::seed_from_u64(2);
    let a = Tensor::randn(512, 512, &mut rng);
    group.bench_function("relu", |bench| bench.iter(|| a.relu()));
    group.bench_function("softmax_rows", |bench| bench.iter(|| a.softmax_rows()));
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_elementwise);
criterion_main!(benches);
