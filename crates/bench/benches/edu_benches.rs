//! E02/E09 — cohort simulation cost: grades and a full semester of usage.

use criterion::{criterion_group, criterion_main, Criterion};
use sagegpu_core::edu::cohort::{Cohort, Semester};
use sagegpu_core::edu::grades::simulate_grades;
use sagegpu_core::edu::usage::simulate_semester_usage;

fn bench_cohort(c: &mut Criterion) {
    let cohort = Cohort::generate(Semester::Spring2025, 1);
    let mut group = c.benchmark_group("edu");
    group.sample_size(10);
    group.bench_function("simulate-grades-30-students", |b| {
        b.iter(|| simulate_grades(&cohort, 1));
    });
    group.bench_function("semester-usage-30-students", |b| {
        b.iter(|| simulate_semester_usage(&cohort, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_cohort);
criterion_main!(benches);
