//! E18 — METIS-like multilevel partitioning vs. the random baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sagegpu_core::graph::generators::{sbm, SbmParams};
use sagegpu_core::graph::partition::{metis_partition, random_partition};

fn bench_partitioners(c: &mut Criterion) {
    let ds = sbm(
        &SbmParams {
            block_sizes: vec![150; 4],
            p_in: 0.08,
            p_out: 0.005,
            feature_dim: 4,
            feature_separation: 1.0,
            train_fraction: 0.5,
        },
        7,
    )
    .unwrap();
    let g = ds.graph;
    let mut group = c.benchmark_group("partition");
    for &k in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("metis", k), &k, |b, &k| {
            b.iter(|| metis_partition(&g, k).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("random", k), &k, |b, &k| {
            b.iter(|| random_partition(g.num_nodes(), k, 1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
