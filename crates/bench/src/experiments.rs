//! One function per reproduced experiment (DESIGN.md E01–E21).

use sagegpu_core::cloud::pricing::InstanceCatalog;
use sagegpu_core::edu::cohort::{Cohort, Level, Semester};
use sagegpu_core::edu::evaluation::{evaluation_profile, EVALUATION_QUESTIONS};
use sagegpu_core::edu::grades::{grade_distribution, simulate_grades};
use sagegpu_core::edu::satisfaction::{satisfaction_counts, satisfaction_percentages};
use sagegpu_core::edu::scores::appendix_c_scores;
use sagegpu_core::edu::surveys::{survey_summary, SurveyQuestion, SurveyWave};
use sagegpu_core::edu::usage::{simulate_semester_usage, UsageSummary};
use sagegpu_core::gcn::experiment::{scaling_experiment, ScalingRow};
use sagegpu_core::gcn::TrainConfig;
use sagegpu_core::gpu::{DeviceSpec, Gpu};
use sagegpu_core::graph::generators::{sbm, GraphDataset, SbmParams};
use sagegpu_core::graph::partition::{
    edge_cut, metis_partition, partition_balance, random_partition,
};
use sagegpu_core::rag::corpus::Corpus;
use sagegpu_core::rag::embed::Embedder;
use sagegpu_core::rag::index::{recall_at_k, FlatIndex, IvfIndex, RetrievalIndex, VectorIndex};
use sagegpu_core::rag::pipeline::build_flat_pipeline;
use sagegpu_core::stats::boxplot::{boxplot, BoxplotData};
use sagegpu_core::stats::describe::{describe, DescriptiveStats};
use sagegpu_core::stats::histogram::{histogram_range, Histogram};
use sagegpu_core::stats::levene::{levene_test, Center, LeveneResult};
use sagegpu_core::stats::likert::LikertSummary;
use sagegpu_core::stats::mannwhitney::{mann_whitney_u, MannWhitneyResult};
use sagegpu_core::stats::qq::{qq_correlation, qq_points};
use sagegpu_core::stats::shapiro::{shapiro_wilk, ShapiroResult};
use sagegpu_core::tensor::dense::Tensor;
use sagegpu_core::tensor::gpu_exec::GpuExecutor;
use std::sync::Arc;

/// The fixed seed every experiment uses (determinism is part of the
/// reproduction contract).
pub const SEED: u64 = 2025;

// ---------------------------------------------------------------------
// E01 — Fig. 1: enrollment
// ---------------------------------------------------------------------

/// (semester label, undergraduates, graduates).
pub fn fig1_enrollment() -> Vec<(&'static str, usize, usize)> {
    [
        Semester::Fall2024,
        Semester::Spring2025,
        Semester::Summer2025,
    ]
    .iter()
    .map(|&s| {
        let (ug, g) = sagegpu_core::edu::cohort::enrollment(s);
        (s.label(), ug, g)
    })
    .collect()
}

// ---------------------------------------------------------------------
// E02 — Fig. 2: grade distribution
// ---------------------------------------------------------------------

/// (semester label, [A, B, C, D, F] counts).
pub fn fig2_grades() -> Vec<(&'static str, [usize; 5])> {
    Semester::analyzed()
        .iter()
        .map(|&s| {
            let cohort = Cohort::generate(s, SEED);
            let outcomes = simulate_grades(&cohort, SEED);
            (s.label(), grade_distribution(&outcomes))
        })
        .collect()
}

// ---------------------------------------------------------------------
// E04 — Table II / Fig. 3: end-of-semester evaluations
// ---------------------------------------------------------------------

/// (question text, level, percentages [Never..Always]).
pub fn fig3_evaluations() -> Vec<(&'static str, Level, [f64; 5])> {
    let mut out = Vec::new();
    for (i, q) in EVALUATION_QUESTIONS.iter().enumerate() {
        for level in [Level::Undergraduate, Level::Graduate] {
            out.push((*q, level, evaluation_profile(i, level).percentages()));
        }
    }
    out
}

// ---------------------------------------------------------------------
// E05–E08 — Fig. 4: confidence surveys
// ---------------------------------------------------------------------

/// (question, semester label, wave, counts [SD..SA]).
pub fn fig4_surveys() -> Vec<(SurveyQuestion, &'static str, SurveyWave, LikertSummary)> {
    let mut out = Vec::new();
    for sem in Semester::analyzed() {
        let cohort = Cohort::generate(sem, SEED);
        for q in SurveyQuestion::ALL {
            for wave in [SurveyWave::Mid, SurveyWave::Final] {
                if let Some(s) = survey_summary(&cohort, q, wave, SEED) {
                    out.push((q, sem.label(), wave, s));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// E09 — Fig. 5 / Appendix A: AWS usage and cost
// ---------------------------------------------------------------------

/// Per-semester usage summaries from the cloud-sim replay.
pub fn fig5_usage() -> Vec<UsageSummary> {
    Semester::analyzed()
        .iter()
        .map(|&s| simulate_semester_usage(&Cohort::generate(s, SEED), SEED))
        .collect()
}

// ---------------------------------------------------------------------
// E10 — Table III: assumption tests
// ---------------------------------------------------------------------

/// Shapiro–Wilk per group plus Levene across groups.
pub struct TableIii {
    pub grad: ShapiroResult,
    pub undergrad: ShapiroResult,
    pub levene: LeveneResult,
}

/// Runs the Table III assumption tests on the simulated cohort scores.
pub fn table3_assumptions() -> TableIii {
    let s = appendix_c_scores(SEED);
    TableIii {
        grad: shapiro_wilk(&s.graduate).expect("valid sample"),
        undergrad: shapiro_wilk(&s.undergraduate).expect("valid sample"),
        levene: levene_test(&[&s.graduate, &s.undergraduate], Center::Mean).expect("two groups"),
    }
}

// ---------------------------------------------------------------------
// E11 — Table IV: descriptive statistics
// ---------------------------------------------------------------------

/// (group name, statistics).
pub fn table4_descriptives() -> Vec<(&'static str, DescriptiveStats)> {
    let s = appendix_c_scores(SEED);
    vec![
        ("Graduate", describe(&s.graduate).expect("n=20")),
        ("Undergraduate", describe(&s.undergraduate).expect("n=20")),
    ]
}

// ---------------------------------------------------------------------
// E12 — Fig. 6: histograms
// ---------------------------------------------------------------------

/// (group, histogram over [50, 100] with 10 bins).
pub fn fig6_histograms() -> Vec<(&'static str, Histogram)> {
    let s = appendix_c_scores(SEED);
    vec![
        (
            "Graduate",
            histogram_range(&s.graduate, 10, 50.0, 100.0).expect("valid"),
        ),
        (
            "Undergraduate",
            histogram_range(&s.undergraduate, 10, 50.0, 100.0).expect("valid"),
        ),
    ]
}

// ---------------------------------------------------------------------
// E13 — Figs. 7–8: Q–Q plots
// ---------------------------------------------------------------------

/// (group, straightness correlation, number of points).
pub fn fig7_8_qq() -> Vec<(&'static str, f64, usize)> {
    let s = appendix_c_scores(SEED);
    [
        ("Graduate", &s.graduate),
        ("Undergraduate", &s.undergraduate),
    ]
    .iter()
    .map(|(name, xs)| {
        let pts = qq_points(xs).expect("n=20");
        let r = qq_correlation(&pts).expect("non-degenerate");
        (*name, r, pts.len())
    })
    .collect()
}

// ---------------------------------------------------------------------
// E14 — Appendix C: Mann–Whitney U
// ---------------------------------------------------------------------

/// The group-difference test (paper: U = 332, p = .0004).
pub fn mwu_test() -> MannWhitneyResult {
    let s = appendix_c_scores(SEED);
    mann_whitney_u(&s.graduate, &s.undergraduate).expect("valid samples")
}

// ---------------------------------------------------------------------
// E15 — Fig. 9: boxplots
// ---------------------------------------------------------------------

/// (group, boxplot data).
pub fn fig9_boxplots() -> Vec<(&'static str, BoxplotData)> {
    let s = appendix_c_scores(SEED);
    vec![
        ("Graduate", boxplot(&s.graduate).expect("n=20")),
        ("Undergraduate", boxplot(&s.undergraduate).expect("n=20")),
    ]
}

// ---------------------------------------------------------------------
// E16 — Figs. 10–11: satisfaction
// ---------------------------------------------------------------------

/// (semester, counts, percentages), ascending satisfaction order.
pub fn fig10_11_satisfaction() -> Vec<(&'static str, [usize; 5], [f64; 5])> {
    Semester::analyzed()
        .iter()
        .map(|&s| {
            (
                s.label(),
                satisfaction_counts(s),
                satisfaction_percentages(s),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// E17 — §III-B: GCN scaling (speedup + accuracy)
// ---------------------------------------------------------------------

/// The standard experiment dataset: a PubMed-shaped SBM small enough to
/// sweep quickly. Deliberately *hard*: weak feature signal and a real
/// share of cross-community "noise" edges, so (a) sequential accuracy
/// stays below the ceiling and (b) METIS partitioning — which cuts mostly
/// the noise edges — can genuinely improve accuracy, the paper's §III-B
/// observation.
pub fn gcn_dataset() -> GraphDataset {
    sbm(
        &SbmParams {
            block_sizes: vec![120, 120, 120],
            p_in: 0.12,
            p_out: 0.03,
            feature_dim: 64,
            feature_separation: 0.22,
            train_fraction: 0.3,
        },
        SEED,
    )
    .expect("valid SBM parameters")
}

/// Sequential vs. distributed (METIS and random) across k.
pub fn gcn_scaling(ks: &[usize], epochs: usize) -> Vec<ScalingRow> {
    let ds = gcn_dataset();
    scaling_experiment(
        &ds,
        ks,
        &TrainConfig {
            epochs,
            ..Default::default()
        },
    )
    .expect("experiment runs")
}

// ---------------------------------------------------------------------
// E18 — partition quality sweep
// ---------------------------------------------------------------------

/// One row of the partition-quality table.
pub struct PartitionRow {
    pub k: usize,
    pub metis_cut: f64,
    pub random_cut: f64,
    pub metis_balance: f64,
    pub cut_ratio: f64,
}

/// Edge-cut and balance, METIS vs. random, across k.
pub fn partition_sweep(ks: &[usize]) -> Vec<PartitionRow> {
    let ds = gcn_dataset();
    let g = &ds.graph;
    ks.iter()
        .map(|&k| {
            let metis = metis_partition(g, k).expect("k <= n");
            let random = random_partition(g.num_nodes(), k, 1).expect("k <= n");
            let metis_cut = edge_cut(g, &metis);
            let random_cut = edge_cut(g, &random);
            PartitionRow {
                k,
                metis_cut,
                random_cut,
                metis_balance: partition_balance(g, &metis, k),
                cut_ratio: metis_cut / random_cut.max(1.0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E19 — matmul / memory-bottleneck sweep (Labs 2–3, Assignment 1)
// ---------------------------------------------------------------------

/// One row of the matmul sweep.
pub struct MatmulRow {
    pub n: usize,
    pub kernel_us: f64,
    pub transfer_us: f64,
    pub achieved_gflops: f64,
    pub transfer_fraction: f64,
}

/// Uploads, multiplies, downloads for each size; reports the split.
pub fn matmul_sweep(sizes: &[usize]) -> Vec<MatmulRow> {
    sizes
        .iter()
        .map(|&n| {
            let gpu = Arc::new(Gpu::new(0, DeviceSpec::t4()));
            let exec = GpuExecutor::new(Arc::clone(&gpu));
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(SEED);
            let a = Tensor::randn(n, n, &mut rng);
            let b = Tensor::randn(n, n, &mut rng);
            exec.upload(&a).expect("fits");
            exec.upload(&b).expect("fits");
            let c = exec.matmul(&a, &b).expect("valid shapes");
            exec.download(&c).expect("fits");
            let stats = sagegpu_core::profiler::opstats::OpStatsTable::from_events(
                &gpu.recorder().snapshot(),
            );
            let kernel = stats.get("sgemm").expect("kernel ran");
            let transfer_ns: u64 = stats
                .rows
                .iter()
                .filter(|r| r.kind.is_transfer())
                .map(|r| r.total_ns)
                .sum();
            MatmulRow {
                n,
                kernel_us: kernel.total_ns as f64 / 1e3,
                transfer_us: transfer_ns as f64 / 1e3,
                achieved_gflops: kernel.achieved_gflops(),
                transfer_fraction: transfer_ns as f64 / (transfer_ns + kernel.total_ns) as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E20 — RAG latency/throughput (Labs 11–13, Assignment 4)
// ---------------------------------------------------------------------

/// Flat-vs-IVF retrieval quality/latency row.
pub struct RetrievalRow {
    pub index: String,
    pub nprobe: usize,
    pub scan_fraction: f64,
    pub mean_recall_at_5: f64,
}

/// Retrieval sweep: exact flat scan vs. IVF at several probe counts.
pub fn rag_retrieval_sweep(corpus_size: usize, nprobes: &[usize]) -> Vec<RetrievalRow> {
    let corpus = Corpus::synthetic(corpus_size, 80, SEED);
    let embedder = Embedder::new(96, SEED);
    let data: Vec<(usize, Vec<f32>)> = corpus
        .docs()
        .iter()
        .map(|d| (d.id, embedder.embed(&d.text)))
        .collect();
    let mut flat = FlatIndex::new(96);
    for (id, v) in &data {
        flat.add(*id, v.clone());
    }
    let queries: Vec<Vec<f32>> = (0..20)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();
    let mut rows = vec![RetrievalRow {
        index: "flat (exact)".into(),
        nprobe: 0,
        scan_fraction: 1.0,
        mean_recall_at_5: 1.0,
    }];
    let nlist = (corpus_size / 20).max(4);
    for &nprobe in nprobes {
        let mut ivf = IvfIndex::train(96, nlist, nlist, &data, SEED).expect("ivf trains");
        ivf.set_nprobe(nprobe);
        let mut recall = 0.0;
        for q in &queries {
            let exact = flat.search(q, 5);
            let approx = ivf.search(q, 5);
            recall += recall_at_k(&exact, &approx);
        }
        rows.push(RetrievalRow {
            index: format!("ivf nlist={nlist}"),
            nprobe,
            scan_fraction: ivf.scan_fraction(),
            mean_recall_at_5: recall / queries.len() as f64,
        });
    }
    rows
}

/// Batch-size throughput row for end-to-end serving.
pub struct ServingRow {
    pub batch: usize,
    pub p50_us: f64,
    pub p99_us: f64,
    pub throughput_qps: f64,
}

/// End-to-end serving sweep over batch sizes.
pub fn rag_serving_sweep(batches: &[usize]) -> Vec<ServingRow> {
    let queries: Vec<String> = (0..32)
        .map(|i| Corpus::topic_query(i % 5, 5, i as u64))
        .collect();
    batches
        .iter()
        .map(|&batch| {
            let exec = GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
            let pipeline = build_flat_pipeline(60, 96, exec, SEED);
            let rep = pipeline.run_workload(&queries, batch, SEED);
            ServingRow {
                batch,
                p50_us: rep.p50_us,
                p99_us: rep.p99_us,
                throughput_qps: rep.throughput_qps,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A05 — ablation: online serving (batch window x cache, under faults)
// ---------------------------------------------------------------------

/// One row of the online-serving ablation.
pub struct ServeAblationRow {
    pub max_batch: usize,
    pub window_us: u64,
    pub cache: bool,
    /// Simulated service time (retrieve + generate) percentiles.
    pub p50_us: f64,
    pub p99_us: f64,
    /// Served requests per second of simulated device time.
    pub sim_qps: f64,
    /// Mean wall-clock admission-queue wait.
    pub mean_queue_wait_us: f64,
    pub cache_hit_rate: f64,
    pub mean_batch: f64,
    pub retries: u64,
    pub failed: u64,
    pub shed: u64,
}

/// Drives 64 requests (16 distinct queries, each repeated 4x) through the
/// online [`RagServer`](sagegpu_core::rag::serve::RagServer) under an
/// injected fault plan, sweeping micro-batch size / batch window / cache.
/// The batch-1 cold-cache row is the naive baseline; micro-batching
/// amortizes decode weight streaming and the warm cache removes repeat
/// retrievals, so p99 service time drops and simulated throughput rises.
pub fn serving_ablation() -> Vec<ServeAblationRow> {
    use sagegpu_core::rag::serve::{RagServer, ServerConfig};
    use sagegpu_core::taskflow::cluster::ClusterBuilder;
    use sagegpu_core::taskflow::policy::{FaultPlan, RetryPolicy};
    use std::time::Duration;

    let queries: Vec<String> = (0..64)
        .map(|i| {
            let distinct = i % 16;
            Corpus::topic_query(distinct % 5, 5, distinct as u64)
        })
        .collect();
    let faults = FaultPlan {
        seed: SEED,
        crash_rate: 0.10,
        slow_rate: 0.05,
        drop_rate: 0.05,
        slow_delay: Duration::from_micros(200),
    };

    let run = |max_batch: usize, window_us: u64, cache: bool| -> ServeAblationRow {
        let exec = GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
        let pipeline = Arc::new(build_flat_pipeline(60, 96, exec, SEED));
        let cluster = ClusterBuilder::new()
            .workers(4)
            .fault_plan(faults.clone())
            .build();
        let server = RagServer::start(
            Arc::clone(&pipeline),
            cluster,
            ServerConfig::new()
                .max_batch(max_batch)
                .batch_window(Duration::from_micros(window_us))
                .queue_capacity(256)
                .cache_capacity(if cache { 64 } else { 0 })
                .retry(RetryPolicy::fixed(6, Duration::ZERO))
                .seed(SEED),
        );
        let handles: Vec<_> = queries
            .iter()
            .map(|q| server.submit(q.clone()).expect("capacity 256 is ample"))
            .collect();
        for h in handles {
            h.wait().expect("retries absorb the injected faults");
        }
        let report = server.shutdown();
        let sim_span_s = pipeline.gpu().gpu().now_ns() as f64 * 1e-9;
        ServeAblationRow {
            max_batch,
            window_us,
            cache,
            p50_us: report.service.percentile_ns(0.50) as f64 / 1e3,
            p99_us: report.service.percentile_ns(0.99) as f64 / 1e3,
            sim_qps: if sim_span_s > 0.0 {
                report.served as f64 / sim_span_s
            } else {
                0.0
            },
            mean_queue_wait_us: report.queue_wait.mean_ns() / 1e3,
            cache_hit_rate: report.cache.hit_rate(),
            mean_batch: report.mean_batch_size,
            retries: report.retries,
            failed: report.failed,
            shed: report.shed,
        }
    };

    vec![
        run(1, 0, false),
        run(1, 0, true),
        run(8, 0, false),
        run(8, 0, true),
        run(8, 200, false),
        run(8, 200, true),
    ]
}

// ---------------------------------------------------------------------
// S01 — supplementary: Labs 8/10 + Assignment 3 (RL agents)
// ---------------------------------------------------------------------

/// One row of the RL comparison.
pub struct RlRow {
    pub agent: String,
    pub early_return: f64,
    pub late_return: f64,
    pub greedy_return: f64,
    pub greedy_steps: usize,
    pub sim_ms: f64,
}

/// Tabular Q vs DQN vs 3-GPU data-parallel DQN on the lab gridworld.
pub fn rl_comparison() -> Vec<RlRow> {
    use sagegpu_core::rl::dqn::{DqnAgent, DqnConfig};
    use sagegpu_core::rl::env::{Environment, GridWorld};
    use sagegpu_core::rl::parallel::train_parallel_dqn;
    use sagegpu_core::rl::tabular::QLearner;
    let mut rows = Vec::new();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;

    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(SEED);
    let mut env = GridWorld::lab4x4();
    let mut q = QLearner::new(env.num_states(), env.num_actions());
    let returns = q.train(&mut env, 300, &mut rng);
    let (g_ret, g_steps) = q.evaluate(&mut env, &mut rng);
    rows.push(RlRow {
        agent: "tabular-Q (Lab 10)".into(),
        early_return: mean(&returns[..30]),
        late_return: mean(&returns[returns.len() - 30..]),
        greedy_return: g_ret,
        greedy_steps: g_steps,
        sim_ms: 0.0, // CPU-side agent
    });

    let gpu = Gpu::new(0, DeviceSpec::t4());
    let mut env = GridWorld::lab4x4();
    let mut agent = DqnAgent::new(
        env.num_states(),
        env.num_actions(),
        DqnConfig {
            epsilon_decay_episodes: 80,
            ..Default::default()
        },
        SEED,
    );
    let returns = agent.train(&mut env, 120, &gpu, &mut rng);
    let (g_ret, g_steps) = agent.evaluate(&mut env, &mut rng);
    rows.push(RlRow {
        agent: "DQN 1 GPU (Lab 8)".into(),
        early_return: mean(&returns[..20]),
        late_return: mean(&returns[returns.len() - 20..]),
        greedy_return: g_ret,
        greedy_steps: g_steps,
        sim_ms: gpu.now_ns() as f64 / 1e6,
    });

    let r = train_parallel_dqn(3, 12, 6, DqnConfig::default(), SEED);
    rows.push(RlRow {
        agent: "DQN 3 GPUs (Asgn 3)".into(),
        early_return: r.round_returns[0],
        late_return: *r.round_returns.last().expect("rounds ran"),
        greedy_return: r.final_return,
        greedy_steps: r.final_steps,
        sim_ms: r.sim_time_ns as f64 / 1e6,
    });
    rows
}

// ---------------------------------------------------------------------
// S02 — supplementary: Lab 6 / Assignment 2 (distributed dataframes)
// ---------------------------------------------------------------------

/// One row of the distributed-groupby scaling table.
pub struct DfRow {
    pub workers: usize,
    pub sim_ms: f64,
    pub max_abs_error: f64,
}

/// Two-phase distributed group-by vs the single-node reference.
pub fn df_scaling(rows_in: usize, worker_counts: &[usize]) -> Vec<DfRow> {
    use sagegpu_core::df::distributed::PartitionedFrame;
    use sagegpu_core::df::frame::{Agg, DataFrame};
    use sagegpu_core::gpu::cluster::LinkKind;
    use sagegpu_core::gpu::GpuCluster;
    use sagegpu_core::taskflow::cluster::ClusterBuilder;

    let trips = DataFrame::taxi_trips(rows_in, SEED);
    let reference = trips
        .groupby_i64("zone", &[("fare", Agg::Mean)])
        .expect("reference");
    let ref_means = reference.f64_column("fare_mean").expect("column").to_vec();
    worker_counts
        .iter()
        .map(|&workers| {
            let gpus = Arc::new(GpuCluster::homogeneous(
                workers,
                DeviceSpec::t4(),
                LinkKind::Pcie,
            ));
            let cluster = Arc::new(ClusterBuilder::new().gpus(Arc::clone(&gpus)).build());
            let pf = PartitionedFrame::from_frame(trips.clone(), cluster);
            let result = pf
                .groupby_mean("zone", "fare")
                .expect("distributed groupby");
            let means = result.f64_column("fare_mean").expect("column");
            let max_abs_error = means
                .iter()
                .zip(&ref_means)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            DfRow {
                workers,
                sim_ms: gpus.makespan_ns() as f64 / 1e6,
                max_abs_error,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A01 — ablation: interconnect class for Algorithm 1
// ---------------------------------------------------------------------

/// One row of the interconnect ablation.
pub struct InterconnectRow {
    pub link: &'static str,
    pub sim_time_ms: f64,
    pub speedup_vs_sequential: f64,
}

/// Re-runs the k=3 METIS configuration over each interconnect class.
/// Answers "would the paper's minimal speedup persist with better links?"
pub fn interconnect_ablation(epochs: usize) -> Vec<InterconnectRow> {
    use sagegpu_core::gcn::distributed::{train_distributed_with_link, PartitionStrategy};
    use sagegpu_core::gcn::sequential::train_sequential;
    use sagegpu_core::gpu::cluster::LinkKind;
    let ds = gcn_dataset();
    let cfg = TrainConfig {
        epochs,
        ..Default::default()
    };
    let seq = train_sequential(&ds, &cfg).sim_time_ns as f64;
    [
        ("ethernet (course)", LinkKind::Ethernet),
        ("pcie", LinkKind::Pcie),
        ("nvlink", LinkKind::NvLink),
    ]
    .into_iter()
    .map(|(name, link)| {
        let r = train_distributed_with_link(&ds, 3, &cfg, PartitionStrategy::Metis, link)
            .expect("trains");
        InterconnectRow {
            link: name,
            sim_time_ms: r.sim_time_ns as f64 / 1e6,
            speedup_vs_sequential: seq / r.sim_time_ns as f64,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------
// A02 — ablation: taskflow scheduling policy
// ---------------------------------------------------------------------

/// One row of the scheduler-policy ablation.
pub struct SchedulerRow {
    pub workers: usize,
    pub fifo_makespan: f64,
    pub critical_path_makespan: f64,
    pub lower_bound: f64,
}

/// List-scheduling makespans of a skewed fork-join graph (one long chain
/// plus many short independent tasks) under both policies.
pub fn scheduler_ablation(worker_counts: &[usize]) -> Vec<SchedulerRow> {
    use sagegpu_core::taskflow::graph::{SchedulePolicy, TaskGraph, TaskValue};
    use std::sync::Arc as StdArc;
    fn unit() -> TaskValue {
        StdArc::new(())
    }
    let mut g = TaskGraph::new();
    // Many short independent tasks first (FIFO's trap) …
    for i in 0..12 {
        g.add_task(&format!("short-{i}"), &[], 2.0, |_| unit())
            .expect("fresh name");
    }
    // … then a long dependent chain that dominates the critical path.
    g.add_task("chain-0", &[], 8.0, |_| unit())
        .expect("fresh name");
    for i in 1..4 {
        g.add_task(
            &format!("chain-{i}"),
            &[&format!("chain-{}", i - 1)],
            8.0,
            |_| unit(),
        )
        .expect("fresh name");
    }
    worker_counts
        .iter()
        .map(|&workers| SchedulerRow {
            workers,
            fifo_makespan: g.estimate_makespan(workers, SchedulePolicy::Fifo),
            critical_path_makespan: g.estimate_makespan(workers, SchedulePolicy::CriticalPath),
            lower_bound: g.critical_path().max(g.total_work() / workers as f64),
        })
        .collect()
}

// ---------------------------------------------------------------------
// A04 — ablation: cluster dispatch mode on an imbalanced task bag
// ---------------------------------------------------------------------

/// One row of the dispatch-mode ablation.
pub struct DispatchRow {
    pub dispatch: &'static str,
    pub wall_ms: f64,
    pub steals: u64,
    pub busy_imbalance: f64,
}

/// Runs an imbalanced task bag — every `workers`-th task is ~1 ms, the
/// rest are trivial, so round-robin placement piles all the long tasks on
/// worker 0 — under both dispatch modes of the real cluster. Work stealing
/// lets idle workers drain worker 0's queue; the round-robin baseline
/// serializes the long tasks on one thread.
pub fn dispatch_ablation(workers: usize, tasks: usize) -> Vec<DispatchRow> {
    use sagegpu_core::taskflow::cluster::ClusterBuilder;
    use sagegpu_core::taskflow::policy::Dispatch;

    let run = |name: &'static str, dispatch: Dispatch| {
        let cluster = ClusterBuilder::new()
            .workers(workers)
            .dispatch(dispatch)
            .build();
        let start = std::time::Instant::now();
        let futures: Vec<_> = (0..tasks)
            .map(|i| {
                let long = i % workers == 0;
                cluster.submit(move |_| {
                    if long {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    i
                })
            })
            .collect();
        let got = cluster.gather(futures).expect("tasks succeed");
        assert_eq!(got.len(), tasks);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let m = cluster.metrics();
        DispatchRow {
            dispatch: name,
            wall_ms,
            steals: m.total_steals(),
            busy_imbalance: m.busy_imbalance(),
        }
    };
    vec![
        run("round-robin", Dispatch::RoundRobin),
        run("work-stealing", Dispatch::WorkStealing),
    ]
}

// ---------------------------------------------------------------------
// A03 — ablation: access patterns and shared-memory tiling (week 3/5)
// ---------------------------------------------------------------------

/// One row of the access-pattern ablation.
pub struct AccessRow {
    pub kernel: String,
    pub sim_us: f64,
    pub slowdown_vs_best: f64,
}

/// Cost-model sweep: coalesced vs strided vs random elementwise traffic,
/// and tiled vs naive matmul — the week-3/5 optimization lessons.
pub fn access_ablation() -> Vec<AccessRow> {
    use sagegpu_core::gpu::{AccessPattern, Gpu, KernelProfile, LaunchConfig};
    let gpu = Gpu::new(0, DeviceSpec::t4());
    let n = 1u64 << 22;
    let cfg = LaunchConfig::for_elements(n, 256);
    let base = KernelProfile::elementwise(n, 1, 12);
    let mut rows: Vec<(String, u64)> = Vec::new();
    for (name, access) in [
        ("elementwise coalesced", AccessPattern::Coalesced),
        ("elementwise strided", AccessPattern::Strided),
        ("elementwise random", AccessPattern::Random),
    ] {
        let (dur, _) = gpu
            .kernel_duration_ns(&cfg, &base.with_access(access))
            .expect("valid");
        rows.push((name.to_owned(), dur));
    }
    let m = 1024u64;
    let mm_cfg = LaunchConfig::for_matrix(m, m, 16);
    let (tiled, _) = gpu
        .kernel_duration_ns(&mm_cfg, &KernelProfile::matmul(m, m, m))
        .expect("valid");
    let (naive, _) = gpu
        .kernel_duration_ns(&mm_cfg, &KernelProfile::matmul_naive(m, m, m))
        .expect("valid");
    rows.push(("matmul 1024 tiled (shared mem)".to_owned(), tiled));
    rows.push(("matmul 1024 naive".to_owned(), naive));

    // Normalize per group: the first three against coalesced, the matmuls
    // against tiled.
    let elem_best = rows[0].1 as f64;
    let mm_best = tiled as f64;
    rows.into_iter()
        .enumerate()
        .map(|(i, (kernel, dur))| AccessRow {
            kernel,
            sim_us: dur as f64 / 1e3,
            slowdown_vs_best: dur as f64 / if i < 3 { elem_best } else { mm_best },
        })
        .collect()
}

// ---------------------------------------------------------------------
// A06 — ablation: device residency (resident vs naive data movement)
// ---------------------------------------------------------------------

/// One GCN training run under a residency mode.
pub struct ResidencyGcnRow {
    pub mode: &'static str,
    pub h2d_kb: f64,
    pub d2h_kb: f64,
    pub p2p_kb: f64,
    pub host_link_bytes: u64,
    pub sim_time_ms: f64,
    pub final_loss: f32,
    pub test_accuracy: f64,
    /// Device 0's residency-aware bottleneck class.
    pub bottleneck: String,
    pub residency_hit_ratio: f64,
}

/// One batched RAG retrieval run under a residency mode.
pub struct ResidencyRagRow {
    pub mode: &'static str,
    pub h2d_kb: f64,
    pub d2h_kb: f64,
    pub host_link_bytes: u64,
    pub residency_hit_ratio: f64,
}

/// The full residency ablation: multi-epoch distributed GCN training and
/// a batched RAG retrieval workload, each naive vs resident.
pub struct ResidencyAblation {
    pub gcn: Vec<ResidencyGcnRow>,
    /// Naive ÷ resident host-link bytes for the GCN runs.
    pub gcn_reduction: f64,
    /// True when both GCN runs produced bit-identical losses and accuracy.
    pub gcn_identical: bool,
    pub rag: Vec<ResidencyRagRow>,
    /// Naive ÷ resident host-link bytes for the RAG runs.
    pub rag_reduction: f64,
    /// True when both RAG runs returned identical scores for every query.
    pub rag_identical: bool,
}

/// A06 — the tentpole acceptance experiment. Trains the E17 GCN dataset
/// for 60 epochs on 2 NVLink-connected GPUs with θ/optimizer state naive
/// (re-staged through host RAM every epoch) vs device-resident (uploaded
/// once, synced back once), then scores 32 RAG queries against a 60-doc
/// index with the document matrix re-staged per query vs resident. Both
/// comparisons must be value-identical — residency only changes where the
/// bytes flow.
pub fn residency_ablation() -> ResidencyAblation {
    use sagegpu_core::gcn::distributed::{
        train_distributed_with_opts, DistOptions, PartitionStrategy, ResidencyMode,
    };
    use sagegpu_core::gpu::cluster::{LinkKind, Topology};

    let ds = gcn_dataset();
    let cfg = TrainConfig {
        epochs: 60,
        hidden: 32,
        ..Default::default()
    };
    let run_gcn = |mode: ResidencyMode| {
        train_distributed_with_opts(
            &ds,
            2,
            &cfg,
            PartitionStrategy::Metis,
            DistOptions {
                topology: Topology::Flat(LinkKind::NvLink),
                residency: mode,
                ..DistOptions::default()
            },
        )
        .expect("trains")
    };
    let naive = run_gcn(ResidencyMode::Naive);
    let resident = run_gcn(ResidencyMode::Resident);
    let gcn_identical = naive.epoch_stats == resident.epoch_stats
        && naive.test_accuracy == resident.test_accuracy
        && naive.model.get_parameters() == resident.model.get_parameters();
    let gcn_reduction = naive.host_link_bytes() as f64 / resident.host_link_bytes().max(1) as f64;
    let gcn_rows = [naive, resident]
        .into_iter()
        .map(|r| ResidencyGcnRow {
            mode: r.residency,
            h2d_kb: r.h2d_bytes as f64 / 1e3,
            d2h_kb: r.d2h_bytes as f64 / 1e3,
            p2p_kb: r.p2p_bytes as f64 / 1e3,
            host_link_bytes: r.host_link_bytes(),
            sim_time_ms: r.sim_time_ns as f64 / 1e6,
            final_loss: r.epoch_stats.last().expect("epochs ran").loss,
            test_accuracy: r.test_accuracy,
            bottleneck: format!("{:?}", r.bottleneck.class),
            residency_hit_ratio: r.residency_lookups.hit_ratio(),
        })
        .collect();

    // RAG: 32 queries against a 60-doc, 96-dim document matrix.
    let embedder = Embedder::new(96, SEED);
    let corpus = Corpus::synthetic(60, 80, SEED);
    let rows: Vec<Vec<f32>> = corpus
        .docs()
        .iter()
        .map(|d| embedder.embed(&d.text))
        .collect();
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    let mat = Tensor::from_vec(60, 96, flat).expect("dims");
    let queries: Vec<Vec<f32>> = (0..32)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();

    let run_rag = |resident: bool| -> (ResidencyRagRow, Vec<Vec<f32>>) {
        let exec = GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
        let device_mat = if resident {
            Some(exec.upload(&mat).expect("index fits"))
        } else {
            None
        };
        let scores: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| match &device_mat {
                Some(dm) => exec.score_rows(dm, q).expect("scores"),
                None => exec.score_rows(&mat, q).expect("scores"),
            })
            .collect();
        let snap = exec.residency_snapshot();
        (
            ResidencyRagRow {
                mode: if resident { "resident" } else { "naive" },
                h2d_kb: snap.h2d_bytes as f64 / 1e3,
                d2h_kb: snap.d2h_bytes as f64 / 1e3,
                host_link_bytes: snap.host_link_bytes(),
                residency_hit_ratio: snap.hit_ratio(),
            },
            scores,
        )
    };
    let (rag_naive, naive_scores) = run_rag(false);
    let (rag_resident, resident_scores) = run_rag(true);
    let rag_identical = naive_scores == resident_scores;
    let rag_reduction =
        rag_naive.host_link_bytes as f64 / rag_resident.host_link_bytes.max(1) as f64;

    ResidencyAblation {
        gcn: gcn_rows,
        gcn_reduction,
        gcn_identical,
        rag: vec![rag_naive, rag_resident],
        rag_reduction,
        rag_identical,
    }
}

// ---------------------------------------------------------------------
// A07 — fused kernels + stream pipelining ablation
// ---------------------------------------------------------------------

/// One distributed GCN training run under an execution mode.
pub struct FusionGcnRow {
    pub mode: &'static str,
    /// Total kernel launches charged across both workers.
    pub kernel_launches: u64,
    pub sim_time_ms: f64,
    /// Device 0's share of kernel time lost to fixed launch overhead.
    pub launch_overhead_fraction: f64,
    pub final_loss: f32,
    pub test_accuracy: f64,
}

/// One 32-query RAG scoring run under an execution mode.
pub struct FusionRagRow {
    pub mode: &'static str,
    pub kernel_launches: u64,
    pub sim_time_us: f64,
    /// Engine-busy ÷ makespan: above the serial run's value means the
    /// two-stream pipeline genuinely overlapped copies with compute.
    pub overlap_efficiency: f64,
}

/// The full fusion ablation: distributed GCN training charged per-op vs
/// with fused epilogues, and RAG scoring per-query vs double-buffered.
pub struct FusionAblation {
    pub gcn: Vec<FusionGcnRow>,
    /// Serial ÷ fused kernel launches for the GCN runs.
    pub gcn_launch_reduction: f64,
    /// Serial ÷ fused simulated makespan for the GCN runs.
    pub gcn_speedup: f64,
    /// True when both GCN runs produced bit-identical losses, accuracy,
    /// and trained parameters.
    pub gcn_identical: bool,
    pub rag: Vec<FusionRagRow>,
    /// Serial ÷ fused kernel launches for the RAG runs.
    pub rag_launch_reduction: f64,
    /// Serial ÷ fused simulated makespan for the RAG runs.
    pub rag_speedup: f64,
    /// True when both RAG runs returned identical scores for every query.
    pub rag_identical: bool,
}

/// A07 — the perf-optimization acceptance experiment. Trains the E17 GCN
/// dataset for 40 epochs on 2 NVLink-connected resident workers with every
/// logical op its own launch vs fused epilogues + overlapped feature
/// upload, then scores 32 RAG queries per-query vs through the two-stream
/// double-buffered batch path. Fusion and overlap only change the cost
/// model: both comparisons must be value-identical while the fused side
/// launches strictly fewer kernels in strictly less simulated time.
pub fn fusion_ablation() -> FusionAblation {
    use sagegpu_core::gcn::distributed::{
        train_distributed_with_opts, DistOptions, PartitionStrategy, ResidencyMode,
    };
    use sagegpu_core::gcn::exec::ExecMode;
    use sagegpu_core::gpu::cluster::{LinkKind, Topology};
    use sagegpu_core::profiler::bottleneck::analyze;
    use sagegpu_core::profiler::timeline::Timeline;

    let ds = gcn_dataset();
    let cfg = TrainConfig {
        epochs: 40,
        hidden: 32,
        ..Default::default()
    };
    let run_gcn = |mode: ExecMode| {
        train_distributed_with_opts(
            &ds,
            2,
            &cfg,
            PartitionStrategy::Metis,
            DistOptions {
                topology: Topology::Flat(LinkKind::NvLink),
                residency: ResidencyMode::Resident,
                exec: mode,
                ..DistOptions::default()
            },
        )
        .expect("trains")
    };
    let serial = run_gcn(ExecMode::PerOpSerial);
    let fused = run_gcn(ExecMode::FusedOverlapped);
    let gcn_identical = serial.epoch_stats == fused.epoch_stats
        && serial.test_accuracy == fused.test_accuracy
        && serial.model.get_parameters() == fused.model.get_parameters();
    let gcn_launch_reduction = serial.kernel_launches as f64 / fused.kernel_launches.max(1) as f64;
    let gcn_speedup = serial.sim_time_ns as f64 / fused.sim_time_ns.max(1) as f64;
    let gcn_rows = [serial, fused]
        .into_iter()
        .map(|r| FusionGcnRow {
            mode: r.exec,
            kernel_launches: r.kernel_launches,
            sim_time_ms: r.sim_time_ns as f64 / 1e6,
            launch_overhead_fraction: r.bottleneck.launch_overhead_fraction,
            final_loss: r.epoch_stats.last().expect("epochs ran").loss,
            test_accuracy: r.test_accuracy,
        })
        .collect();

    // RAG: the A06 workload — 32 queries against a 60-doc, 96-dim resident
    // index — scored one launch per query vs chunked across two streams.
    let embedder = Embedder::new(96, SEED);
    let corpus = Corpus::synthetic(60, 80, SEED);
    let rows: Vec<Vec<f32>> = corpus
        .docs()
        .iter()
        .map(|d| embedder.embed(&d.text))
        .collect();
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    let mat = Tensor::from_vec(60, 96, flat).expect("dims");
    let queries: Vec<Vec<f32>> = (0..32)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();

    let run_rag = |batch: bool| -> (FusionRagRow, Vec<Vec<f32>>) {
        let gpu = Arc::new(Gpu::new(0, DeviceSpec::t4()));
        let exec = GpuExecutor::new(Arc::clone(&gpu));
        let device_mat = exec.upload(&mat).expect("index fits");
        let scores: Vec<Vec<f32>> = if batch {
            exec.score_rows_batch(&device_mat, &queries)
                .expect("scores")
        } else {
            queries
                .iter()
                .map(|q| exec.score_rows(&device_mat, q).expect("scores"))
                .collect()
        };
        let timeline = Timeline::from_recorder(gpu.recorder());
        let report = analyze(&timeline, 0, &DeviceSpec::t4());
        (
            FusionRagRow {
                mode: if batch { "fused" } else { "serial" },
                kernel_launches: gpu.kernels_launched(),
                sim_time_us: gpu.now_ns() as f64 / 1e3,
                overlap_efficiency: report.overlap_efficiency,
            },
            scores,
        )
    };
    let (rag_serial, serial_scores) = run_rag(false);
    let (rag_fused, fused_scores) = run_rag(true);
    let rag_identical = serial_scores == fused_scores;
    let rag_launch_reduction =
        rag_serial.kernel_launches as f64 / rag_fused.kernel_launches.max(1) as f64;
    let rag_speedup = rag_serial.sim_time_us / rag_fused.sim_time_us.max(1e-9);

    FusionAblation {
        gcn: gcn_rows,
        gcn_launch_reduction,
        gcn_speedup,
        gcn_identical,
        rag: vec![rag_serial, rag_fused],
        rag_launch_reduction,
        rag_speedup,
        rag_identical,
    }
}

/// Machine-readable A07 summary — the content of `BENCH_A07.json`. The
/// document is emitted by hand because the offline `serde_json` stand-in
/// only parses.
pub fn fusion_ablation_json(a: &FusionAblation) -> String {
    let gcn_rows: Vec<String> = a
        .gcn
        .iter()
        .map(|r| {
            format!(
                "{{\"mode\":\"{}\",\"kernel_launches\":{},\"sim_time_ms\":{},\
                 \"launch_overhead_fraction\":{},\"final_loss\":{},\"test_accuracy\":{}}}",
                r.mode,
                r.kernel_launches,
                r.sim_time_ms,
                r.launch_overhead_fraction,
                r.final_loss,
                r.test_accuracy
            )
        })
        .collect();
    let rag_rows: Vec<String> = a
        .rag
        .iter()
        .map(|r| {
            format!(
                "{{\"mode\":\"{}\",\"kernel_launches\":{},\"sim_time_us\":{},\
                 \"overlap_efficiency\":{}}}",
                r.mode, r.kernel_launches, r.sim_time_us, r.overlap_efficiency
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"A07\",\n  \"title\": \"fused kernels + stream pipelining\",\n  \
         \"gcn\": {{\"rows\": [{}], \"launch_reduction\": {}, \"speedup\": {}, \"identical\": {}}},\n  \
         \"rag\": {{\"rows\": [{}], \"launch_reduction\": {}, \"speedup\": {}, \"identical\": {}}}\n}}\n",
        gcn_rows.join(", "),
        a.gcn_launch_reduction,
        a.gcn_speedup,
        a.gcn_identical,
        rag_rows.join(", "),
        a.rag_launch_reduction,
        a.rag_speedup,
        a.rag_identical
    )
}

// ---------------------------------------------------------------------
// A08 — overlapped bucketed all-reduce + worker-scaling ablation
// ---------------------------------------------------------------------

/// Worker counts the A08 sweep covers.
pub const COMM_SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Bucket size cap used by the bucketed arms of A08/A10. Sized to the
/// model's layer boundary: the A08/A10 GCN carries W2+b2 (2 064 B, retired
/// first by backward) and W1+b1 (131 584 B, retired last), so any cap in
/// [2 064, 2 575] forms exactly two buckets — the small output-layer bucket
/// launches mid-backward while the input-layer gradients are still being
/// computed. The old 1 MiB cap exceeded the whole 133 648 B payload and
/// silently degenerated the "bucketed" arm to one monolithic-shaped bucket
/// at every k (`buckets_per_epoch: 1`); the per-bucket latency this cap
/// adds is absorbed by the cluster's round-robin comm channels, which let
/// the two buckets' collectives overlap each other as well as backward.
pub const COMM_SCALING_BUCKET_BYTES: u64 = 2560;

/// The A08 workload: a four-community SBM large enough that the per-epoch
/// Ethernet gradient exchange (W1 is 256x128) is commensurate with the
/// per-worker compute — the regime where the paper's course clusters saw
/// "minimal performance improvement" from splitting the graph.
pub fn comm_scaling_dataset() -> GraphDataset {
    sbm(
        &SbmParams {
            block_sizes: vec![200, 200, 200, 200],
            p_in: 0.10,
            p_out: 0.02,
            feature_dim: 256,
            feature_separation: 0.5,
            train_fraction: 0.3,
        },
        SEED,
    )
    .expect("valid SBM parameters")
}

/// One distributed GCN run at a worker count under a comm schedule.
pub struct CommScalingRow {
    pub workers: usize,
    /// "monolithic" or "bucketed".
    pub comm: &'static str,
    pub sim_time_ms: f64,
    /// Same-schedule 1-worker sim time ÷ this run's sim time.
    pub speedup: f64,
    /// Gradient-exchange time left on the critical path, summed over epochs.
    pub exposed_comm_ms: f64,
    /// Gradient-exchange time hidden behind backward compute.
    pub overlapped_comm_ms: f64,
    /// Device 0's profiler verdict: fraction of comm-lane time not covered
    /// by concurrent kernels.
    pub comm_exposed_fraction: f64,
    pub buckets_per_epoch: u64,
    pub final_loss: f32,
    pub test_accuracy: f64,
}

/// The full A08 sweep: workers × {monolithic, bucketed-overlap}.
pub struct CommScalingAblation {
    pub rows: Vec<CommScalingRow>,
    /// True when, at every worker count, both schedules produced
    /// bit-identical losses, accuracy, and trained parameters.
    pub identical_all_k: bool,
    pub monolithic_speedup_at_4: f64,
    pub bucketed_speedup_at_4: f64,
    /// Monolithic ÷ bucketed sim time at 4 workers — the headline win.
    pub overlap_win_at_4: f64,
}

/// A08 — the comm-overlap acceptance experiment. Sweeps 1/2/4/8 resident
/// fused workers over Ethernet with the gradient exchange charged as one
/// exposed monolithic all-reduce vs a bucketed chunked ring launched from
/// inside backward. Both schedules average gradients identically; only the
/// timeline changes, so every pairwise comparison must be bit-identical
/// while the bucketed arm strictly shrinks exposed communication at k ≥ 2.
pub fn comm_scaling_ablation() -> CommScalingAblation {
    use sagegpu_core::gcn::distributed::{
        train_distributed_with_opts, CommMode, DistOptions, PartitionStrategy, ResidencyMode,
    };
    use sagegpu_core::gcn::exec::ExecMode;
    use sagegpu_core::gpu::cluster::{LinkKind, Topology};

    let ds = comm_scaling_dataset();
    let cfg = TrainConfig {
        epochs: 25,
        hidden: 128,
        ..Default::default()
    };
    let run = |k: usize, comm: CommMode| {
        train_distributed_with_opts(
            &ds,
            k,
            &cfg,
            PartitionStrategy::Metis,
            DistOptions {
                topology: Topology::Flat(LinkKind::Ethernet),
                residency: ResidencyMode::Resident,
                exec: ExecMode::FusedOverlapped,
                comm,
                ..DistOptions::default()
            },
        )
        .expect("trains")
    };

    let mut rows: Vec<CommScalingRow> = Vec::new();
    let mut identical_all_k = true;
    let (mut mono_base_ns, mut buck_base_ns) = (0f64, 0f64);
    for &k in &COMM_SCALING_WORKERS {
        let mono = run(k, CommMode::Monolithic);
        let buck = run(
            k,
            CommMode::BucketedOverlap {
                bucket_bytes: COMM_SCALING_BUCKET_BYTES,
            },
        );
        identical_all_k &= mono.epoch_stats == buck.epoch_stats
            && mono.test_accuracy == buck.test_accuracy
            && mono.model.get_parameters() == buck.model.get_parameters();
        for r in [mono, buck] {
            let base_ns = if r.comm == "monolithic" {
                &mut mono_base_ns
            } else {
                &mut buck_base_ns
            };
            if k == 1 {
                *base_ns = r.sim_time_ns as f64;
            }
            rows.push(CommScalingRow {
                workers: k,
                comm: r.comm,
                sim_time_ms: r.sim_time_ns as f64 / 1e6,
                speedup: *base_ns / r.sim_time_ns.max(1) as f64,
                exposed_comm_ms: r.exposed_comm_ns as f64 / 1e6,
                overlapped_comm_ms: r.overlapped_comm_ns as f64 / 1e6,
                comm_exposed_fraction: r.bottleneck.comm_exposed_fraction,
                buckets_per_epoch: r.comm_buckets_per_epoch,
                final_loss: r.epoch_stats.last().expect("epochs ran").loss,
                test_accuracy: r.test_accuracy,
            });
        }
    }

    let at = |k: usize, comm: &str| {
        rows.iter()
            .find(|r| r.workers == k && r.comm == comm)
            .expect("swept row")
    };
    let monolithic_speedup_at_4 = at(4, "monolithic").speedup;
    let bucketed_speedup_at_4 = at(4, "bucketed").speedup;
    let overlap_win_at_4 = at(4, "monolithic").sim_time_ms / at(4, "bucketed").sim_time_ms;
    CommScalingAblation {
        rows,
        identical_all_k,
        monolithic_speedup_at_4,
        bucketed_speedup_at_4,
        overlap_win_at_4,
    }
}

/// Machine-readable A08 summary — the content of `BENCH_A08.json`. Emitted
/// by hand because the offline `serde_json` stand-in only parses.
pub fn comm_scaling_json(a: &CommScalingAblation) -> String {
    let rows: Vec<String> = a
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"comm\":\"{}\",\"sim_time_ms\":{},\"speedup\":{},\
                 \"exposed_comm_ms\":{},\"overlapped_comm_ms\":{},\
                 \"comm_exposed_fraction\":{},\"buckets_per_epoch\":{},\
                 \"final_loss\":{},\"test_accuracy\":{}}}",
                r.workers,
                r.comm,
                r.sim_time_ms,
                r.speedup,
                r.exposed_comm_ms,
                r.overlapped_comm_ms,
                r.comm_exposed_fraction,
                r.buckets_per_epoch,
                r.final_loss,
                r.test_accuracy
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"A08\",\n  \"title\": \"overlapped bucketed all-reduce worker scaling\",\n  \
         \"rows\": [{}],\n  \"identical_all_k\": {},\n  \"monolithic_speedup_at_4\": {},\n  \
         \"bucketed_speedup_at_4\": {},\n  \"overlap_win_at_4\": {}\n}}\n",
        rows.join(", "),
        a.identical_all_k,
        a.monolithic_speedup_at_4,
        a.bucketed_speedup_at_4,
        a.overlap_win_at_4
    )
}

// ---------------------------------------------------------------------
// A09 — graph capture/replay ablation
// ---------------------------------------------------------------------

/// One distributed GCN training run under a submission mode.
pub struct GraphGcnRow {
    /// "eager" or "captured".
    pub submit: &'static str,
    /// Real command submissions charged across both workers — a replayed
    /// graph counts as one launch regardless of how many nodes it holds.
    pub kernel_launches: u64,
    pub sim_time_ms: f64,
    /// Device 0's share of kernel time lost to fixed launch overhead.
    pub launch_overhead_fraction: f64,
    pub final_loss: f32,
    pub test_accuracy: f64,
}

/// One batched RAG scoring loop under a submission mode.
pub struct GraphRagRow {
    /// "eager" or "captured".
    pub submit: &'static str,
    pub kernel_launches: u64,
    pub sim_time_us: f64,
}

/// The full A09 ablation: distributed GCN training and a repeated RAG
/// batch-scoring loop, each submitted eagerly vs replayed from a captured
/// command graph.
pub struct GraphAblation {
    pub gcn: Vec<GraphGcnRow>,
    /// Eager ÷ captured kernel launches for the GCN runs.
    pub gcn_launch_reduction: f64,
    /// True when both GCN runs produced bit-identical losses, accuracy,
    /// and trained parameters.
    pub gcn_identical: bool,
    pub rag: Vec<GraphRagRow>,
    /// Eager ÷ captured kernel launches for the RAG runs.
    pub rag_launch_reduction: f64,
    /// True when both RAG loops returned identical scores for every query.
    pub rag_identical: bool,
}

/// A09 — the command-stream acceptance experiment. Trains the E17 GCN
/// dataset for 40 epochs on 2 NVLink-connected resident fused workers with
/// every epoch submitted kernel-by-kernel vs captured once and replayed,
/// then drives 288 RAG queries through the two-stream batch scorer in six
/// 48-query rounds (six 8-query chunks each), per-chunk submission vs one
/// captured graph replayed per round. Capture only changes how commands
/// reach the device: outputs must be bit-identical while the captured side
/// amortizes per-kernel launch overhead into one submission per replay.
pub fn graph_ablation() -> GraphAblation {
    use sagegpu_core::gcn::distributed::{
        train_distributed_with_opts, DistOptions, PartitionStrategy, ResidencyMode,
    };
    use sagegpu_core::gcn::exec::{ExecMode, SubmitMode};
    use sagegpu_core::gpu::cluster::{LinkKind, Topology};

    let ds = gcn_dataset();
    let cfg = TrainConfig {
        epochs: 40,
        hidden: 32,
        ..Default::default()
    };
    let run_gcn = |submit: SubmitMode| {
        train_distributed_with_opts(
            &ds,
            2,
            &cfg,
            PartitionStrategy::Metis,
            DistOptions {
                topology: Topology::Flat(LinkKind::NvLink),
                residency: ResidencyMode::Resident,
                exec: ExecMode::FusedOverlapped,
                submit,
                ..DistOptions::default()
            },
        )
        .expect("trains")
    };
    let eager = run_gcn(SubmitMode::Eager);
    let captured = run_gcn(SubmitMode::Captured);
    let gcn_identical = eager.epoch_stats == captured.epoch_stats
        && eager.test_accuracy == captured.test_accuracy
        && eager.model.get_parameters() == captured.model.get_parameters();
    let gcn_launch_reduction =
        eager.kernel_launches as f64 / captured.kernel_launches.max(1) as f64;
    let gcn_rows = [eager, captured]
        .into_iter()
        .map(|r| GraphGcnRow {
            submit: r.submit,
            kernel_launches: r.kernel_launches,
            sim_time_ms: r.sim_time_ns as f64 / 1e6,
            launch_overhead_fraction: r.bottleneck.launch_overhead_fraction,
            final_loss: r.epoch_stats.last().expect("epochs ran").loss,
            test_accuracy: r.test_accuracy,
        })
        .collect();

    // RAG: the A06/A07 index — a 60-doc, 96-dim resident matrix — hit by
    // a serving loop of six fixed-shape 48-query rounds. Each round spans
    // six 8-query chunks, so the eager scorer pays six submissions per
    // round where the captured scorer replays one graph.
    let embedder = Embedder::new(96, SEED);
    let corpus = Corpus::synthetic(60, 80, SEED);
    let rows: Vec<Vec<f32>> = corpus
        .docs()
        .iter()
        .map(|d| embedder.embed(&d.text))
        .collect();
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    let mat = Tensor::from_vec(60, 96, flat).expect("dims");
    let queries: Vec<Vec<f32>> = (0..288)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();

    let run_rag = |captured: bool| -> (GraphRagRow, Vec<Vec<f32>>) {
        let gpu = Arc::new(Gpu::new(0, DeviceSpec::t4()));
        let exec = GpuExecutor::new(Arc::clone(&gpu));
        let device_mat = exec.upload(&mat).expect("index fits");
        let mut scores: Vec<Vec<f32>> = Vec::new();
        for round in queries.chunks(48) {
            let batch = if captured {
                exec.score_rows_batch_captured(&device_mat, round)
                    .expect("scores")
            } else {
                exec.score_rows_batch(&device_mat, round).expect("scores")
            };
            scores.extend(batch);
        }
        (
            GraphRagRow {
                submit: if captured { "captured" } else { "eager" },
                kernel_launches: gpu.kernels_launched(),
                sim_time_us: gpu.now_ns() as f64 / 1e3,
            },
            scores,
        )
    };
    let (rag_eager, eager_scores) = run_rag(false);
    let (rag_captured, captured_scores) = run_rag(true);
    let rag_identical = eager_scores == captured_scores;
    let rag_launch_reduction =
        rag_eager.kernel_launches as f64 / rag_captured.kernel_launches.max(1) as f64;

    GraphAblation {
        gcn: gcn_rows,
        gcn_launch_reduction,
        gcn_identical,
        rag: vec![rag_eager, rag_captured],
        rag_launch_reduction,
        rag_identical,
    }
}

/// Machine-readable A09 summary — the content of `BENCH_A09.json`. Emitted
/// by hand because the offline `serde_json` stand-in only parses.
pub fn graph_ablation_json(a: &GraphAblation) -> String {
    let gcn_rows: Vec<String> = a
        .gcn
        .iter()
        .map(|r| {
            format!(
                "{{\"submit\":\"{}\",\"kernel_launches\":{},\"sim_time_ms\":{},\
                 \"launch_overhead_fraction\":{},\"final_loss\":{},\"test_accuracy\":{}}}",
                r.submit,
                r.kernel_launches,
                r.sim_time_ms,
                r.launch_overhead_fraction,
                r.final_loss,
                r.test_accuracy
            )
        })
        .collect();
    let rag_rows: Vec<String> = a
        .rag
        .iter()
        .map(|r| {
            format!(
                "{{\"submit\":\"{}\",\"kernel_launches\":{},\"sim_time_us\":{}}}",
                r.submit, r.kernel_launches, r.sim_time_us
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"A09\",\n  \"title\": \"graph capture/replay\",\n  \
         \"gcn\": {{\"rows\": [{}], \"launch_reduction\": {}, \"identical\": {}}},\n  \
         \"rag\": {{\"rows\": [{}], \"launch_reduction\": {}, \"identical\": {}}}\n}}\n",
        gcn_rows.join(", "),
        a.gcn_launch_reduction,
        a.gcn_identical,
        rag_rows.join(", "),
        a.rag_launch_reduction,
        a.rag_identical
    )
}

// ---------------------------------------------------------------------
// A10 — two-tier topology x hierarchical collectives ablation
// ---------------------------------------------------------------------

/// Worker counts the A10 sweep covers — extending A08's sweep past the
/// k=8 collapse to k=16.
pub const TOPOLOGY_SCALING_WORKERS: [usize; 4] = [1, 4, 8, 16];

/// Devices per NVLink island in the hierarchical arms — the common cloud
/// shape (a g4dn.12xlarge holds 4 T4s on a fast intra-node fabric).
pub const TOPOLOGY_ISLAND: usize = 4;

/// The A10 workload: the A08 SBM scaled 4× to 3 200 nodes so each worker
/// still holds a substantial partition at k=16 and the backward window the
/// bucketed collectives hide inside stays wide. The gradient payload is
/// unchanged (same 256→128→4 model), so the comm cost per epoch is
/// identical to A08's — only the compute-to-comm ratio moves.
pub fn topology_scaling_dataset() -> GraphDataset {
    sbm(
        &SbmParams {
            block_sizes: vec![800, 800, 800, 800],
            p_in: 0.10,
            p_out: 0.02,
            feature_dim: 256,
            feature_separation: 0.5,
            train_fraction: 0.3,
        },
        SEED,
    )
    .expect("valid SBM parameters")
}

/// One distributed GCN run at a worker count under a topology, comm
/// schedule, and gradient wire format.
pub struct TopologyScalingRow {
    pub workers: usize,
    /// "flat" or "hierarchical".
    pub topology: &'static str,
    /// "monolithic" or "bucketed".
    pub comm: &'static str,
    /// "f32" or "fp16".
    pub compression: &'static str,
    pub sim_time_ms: f64,
    /// Same-arm 1-worker sim time ÷ this run's sim time.
    pub speedup: f64,
    pub exposed_comm_ms: f64,
    pub overlapped_comm_ms: f64,
    /// Device 0's profiler verdict: fraction of comm-lane time not covered
    /// by concurrent kernels.
    pub comm_exposed_fraction: f64,
    /// The same verdict, restricted to intra-island (or flat-ring) steps.
    pub comm_exposed_fraction_intra: f64,
    /// The same verdict, restricted to bridge-tier steps.
    pub comm_exposed_fraction_inter: f64,
    pub buckets_per_epoch: u64,
    pub p2p_gb: f64,
    pub final_loss: f32,
    pub test_accuracy: f64,
}

/// The full A10 sweep: workers × {flat, hierarchical} × {monolithic,
/// bucketed}, plus an fp16-compressed hierarchical+bucketed arm.
pub struct TopologyScalingAblation {
    pub rows: Vec<TopologyScalingRow>,
    /// True when, at every worker count, all four uncompressed arms
    /// produced bit-identical losses, accuracy, and trained parameters.
    pub identical_all_k: bool,
    /// Profiler comm-exposed fraction of the hierarchical+bucketed arm at
    /// k=8 — the number the A08 collapse was about.
    pub hier_bucketed_exposed_fraction_at_8: f64,
    /// Flat-monolithic sim time ÷ hierarchical+bucketed sim time at k=8.
    pub speedup_vs_mono_at_8: f64,
    /// The same ratio at k=16 — must strictly exceed the k=8 ratio: the
    /// flat exchange keeps collapsing while the hierarchy keeps it hidden.
    pub speedup_vs_mono_at_16: f64,
    /// Largest |f32 − fp16| final-loss gap across worker counts on the
    /// hierarchical+bucketed arm — the error-feedback bound, empirically.
    pub fp16_max_final_loss_drift: f64,
    /// f32 ÷ fp16 peer-link bytes at k=8 (≈2 by construction).
    pub fp16_wire_reduction_at_8: f64,
}

/// A10 — the topology acceptance experiment. Re-runs the A08 sweep to
/// k=16 with the interconnect either flat VPC Ethernet (the course's
/// shape, and why its scaling collapsed) or NVLink islands of
/// [`TOPOLOGY_ISLAND`] bridged by that same Ethernet, crossed with the
/// monolithic vs bucketed exchange. Collectives are charge-only, so every
/// uncompressed cell must train bit-identically; the fp16 arm instead
/// pins the error-feedback drift bound and the halved wire payload.
pub fn topology_scaling_ablation() -> TopologyScalingAblation {
    use sagegpu_core::gcn::distributed::{
        train_distributed_with_opts, CommMode, DistOptions, PartitionStrategy, ResidencyMode,
    };
    use sagegpu_core::gcn::exec::ExecMode;
    use sagegpu_core::gpu::cluster::{LinkKind, Topology};
    use sagegpu_core::nn::parallel::Compression;

    let ds = topology_scaling_dataset();
    let cfg = TrainConfig {
        epochs: 25,
        hidden: 128,
        ..Default::default()
    };
    let run = |k: usize, topology: Topology, comm: CommMode, compression: Compression| {
        train_distributed_with_opts(
            &ds,
            k,
            &cfg,
            PartitionStrategy::Metis,
            DistOptions {
                topology,
                compression,
                residency: ResidencyMode::Resident,
                exec: ExecMode::FusedOverlapped,
                comm,
                ..DistOptions::default()
            },
        )
        .expect("trains")
    };

    let flat = Topology::Flat(LinkKind::Ethernet);
    let hier = Topology::nvlink_islands(TOPOLOGY_ISLAND);
    let buck = CommMode::BucketedOverlap {
        bucket_bytes: COMM_SCALING_BUCKET_BYTES,
    };
    let arms: [(Topology, CommMode, Compression); 5] = [
        (flat, CommMode::Monolithic, Compression::None),
        (flat, buck, Compression::None),
        (hier, CommMode::Monolithic, Compression::None),
        (hier, buck, Compression::None),
        (hier, buck, Compression::Fp16ErrorFeedback),
    ];

    let mut rows: Vec<TopologyScalingRow> = Vec::new();
    let mut identical_all_k = true;
    let mut fp16_max_final_loss_drift = 0f64;
    let mut base_ns = [0f64; 5];
    let mut fp16_wire_reduction_at_8 = 0f64;
    for &k in &TOPOLOGY_SCALING_WORKERS {
        let mut reference: Option<(Vec<sagegpu_core::gcn::EpochStats>, f64, Vec<Tensor>)> = None;
        let mut f32_final_loss = 0f32;
        let mut f32_p2p_bytes = 0u64;
        for (arm, &(topology, comm, compression)) in arms.iter().enumerate() {
            let r = run(k, topology, comm, compression);
            match compression {
                Compression::None => {
                    // Every uncompressed cell must match the first one
                    // bit-for-bit: topology and schedule only reprice.
                    let params = r.model.get_parameters();
                    match &reference {
                        None => reference = Some((r.epoch_stats.clone(), r.test_accuracy, params)),
                        Some((stats, acc, p)) => {
                            identical_all_k &=
                                r.epoch_stats == *stats && r.test_accuracy == *acc && params == *p;
                        }
                    }
                    if topology == hier && comm == buck {
                        f32_final_loss = r.epoch_stats.last().expect("epochs ran").loss;
                        f32_p2p_bytes = r.p2p_bytes;
                    }
                }
                Compression::Fp16ErrorFeedback => {
                    let drift = (r.epoch_stats.last().expect("epochs ran").loss - f32_final_loss)
                        .abs() as f64;
                    fp16_max_final_loss_drift = fp16_max_final_loss_drift.max(drift);
                    if k == 8 {
                        fp16_wire_reduction_at_8 = f32_p2p_bytes as f64 / r.p2p_bytes.max(1) as f64;
                    }
                }
            }
            if k == 1 {
                base_ns[arm] = r.sim_time_ns as f64;
            }
            rows.push(TopologyScalingRow {
                workers: k,
                topology: r.topology,
                comm: r.comm,
                compression: r.compression,
                sim_time_ms: r.sim_time_ns as f64 / 1e6,
                speedup: base_ns[arm] / r.sim_time_ns.max(1) as f64,
                exposed_comm_ms: r.exposed_comm_ns as f64 / 1e6,
                overlapped_comm_ms: r.overlapped_comm_ns as f64 / 1e6,
                comm_exposed_fraction: r.bottleneck.comm_exposed_fraction,
                comm_exposed_fraction_intra: r.bottleneck.comm_exposed_fraction_intra,
                comm_exposed_fraction_inter: r.bottleneck.comm_exposed_fraction_inter,
                buckets_per_epoch: r.comm_buckets_per_epoch,
                p2p_gb: r.p2p_bytes as f64 / 1e9,
                final_loss: r.epoch_stats.last().expect("epochs ran").loss,
                test_accuracy: r.test_accuracy,
            });
        }
    }

    let at = |k: usize, topology: &str, comm: &str, compression: &str| {
        rows.iter()
            .find(|r| {
                r.workers == k
                    && r.topology == topology
                    && r.comm == comm
                    && r.compression == compression
            })
            .expect("swept row")
    };
    let hier_bucketed_exposed_fraction_at_8 =
        at(8, "hierarchical", "bucketed", "f32").comm_exposed_fraction;
    let speedup_vs_mono = |k: usize| {
        at(k, "flat", "monolithic", "f32").sim_time_ms
            / at(k, "hierarchical", "bucketed", "f32").sim_time_ms
    };
    TopologyScalingAblation {
        identical_all_k,
        hier_bucketed_exposed_fraction_at_8,
        speedup_vs_mono_at_8: speedup_vs_mono(8),
        speedup_vs_mono_at_16: speedup_vs_mono(16),
        fp16_max_final_loss_drift,
        fp16_wire_reduction_at_8,
        rows,
    }
}

/// Machine-readable A10 summary — the content of `BENCH_A10.json`. Emitted
/// by hand because the offline `serde_json` stand-in only parses.
pub fn topology_scaling_json(a: &TopologyScalingAblation) -> String {
    let rows: Vec<String> = a
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"topology\":\"{}\",\"comm\":\"{}\",\
                 \"compression\":\"{}\",\"sim_time_ms\":{},\"speedup\":{},\
                 \"exposed_comm_ms\":{},\"overlapped_comm_ms\":{},\
                 \"comm_exposed_fraction\":{},\"comm_exposed_fraction_intra\":{},\
                 \"comm_exposed_fraction_inter\":{},\"buckets_per_epoch\":{},\
                 \"p2p_gb\":{},\"final_loss\":{},\"test_accuracy\":{}}}",
                r.workers,
                r.topology,
                r.comm,
                r.compression,
                r.sim_time_ms,
                r.speedup,
                r.exposed_comm_ms,
                r.overlapped_comm_ms,
                r.comm_exposed_fraction,
                r.comm_exposed_fraction_intra,
                r.comm_exposed_fraction_inter,
                r.buckets_per_epoch,
                r.p2p_gb,
                r.final_loss,
                r.test_accuracy
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"A10\",\n  \"title\": \"two-tier topology x hierarchical collectives\",\n  \
         \"rows\": [{}],\n  \"identical_all_k\": {},\n  \
         \"hier_bucketed_exposed_fraction_at_8\": {},\n  \
         \"speedup_vs_mono_at_8\": {},\n  \"speedup_vs_mono_at_16\": {},\n  \
         \"fp16_max_final_loss_drift\": {},\n  \"fp16_wire_reduction_at_8\": {}\n}}\n",
        rows.join(", "),
        a.identical_all_k,
        a.hier_bucketed_exposed_fraction_at_8,
        a.speedup_vs_mono_at_8,
        a.speedup_vs_mono_at_16,
        a.fp16_max_final_loss_drift,
        a.fp16_wire_reduction_at_8
    )
}

// ---------------------------------------------------------------------
// A11 — trace what-if replay
// ---------------------------------------------------------------------

/// One replay arm of the A11 what-if study.
pub struct WhatIfArm {
    /// "identity", "flat-ethernet", "nvlink-everywhere", "comm-streams-1".
    pub arm: &'static str,
    /// Replay-predicted makespan under the override.
    pub predicted_ms: f64,
    /// Ground truth from a fresh run with the same configuration — `None`
    /// for predicted-only arms (no fresh run exists to compare against).
    pub fresh_ms: Option<f64>,
    /// |predicted − fresh| / fresh × 100, when ground truth exists.
    pub err_pct: Option<f64>,
    /// (predicted − recorded) / recorded × 100 — what the override buys
    /// or costs relative to the recorded schedule.
    pub delta_vs_recorded_pct: f64,
}

/// The A11 study: the k=8 hierarchical+bucketed A10 arm recorded through
/// the `gpu_sim::trace` interposer, then re-priced under interconnect and
/// comm-stream overrides *without re-running the workload*.
pub struct WhatIfAblation {
    pub workers: usize,
    /// Recorded (hierarchical, bucketed) makespan.
    pub recorded_ms: f64,
    pub recorded_submissions: u64,
    pub recorded_kernel_launches: u64,
    /// True when the no-override replay reproduced sim-time, submission
    /// count, and kernel-launch count exactly.
    pub identity_exact: bool,
    pub arms: Vec<WhatIfArm>,
    /// Headline: NVLink-everywhere prediction error vs its fresh run (%).
    pub nvlink_err_pct: f64,
}

/// A11 — record the k=8 hierarchical trace once, then answer "what if the
/// interconnect were flat Ethernet / NVLink everywhere / collectives had
/// one comm stream instead of two" from the artifact alone, checking the
/// interconnect predictions against fresh ground-truth runs.
pub fn whatif_ablation() -> WhatIfAblation {
    use sagegpu_core::gcn::distributed::{
        train_distributed_with_opts, CommMode, DistOptions, PartitionStrategy, ResidencyMode,
    };
    use sagegpu_core::gcn::exec::ExecMode;
    use sagegpu_core::gpu::cluster::{LinkKind, Topology};
    use sagegpu_core::gpu::trace::{replay, WhatIf};

    let ds = topology_scaling_dataset();
    let cfg = TrainConfig {
        epochs: 25,
        hidden: 128,
        ..Default::default()
    };
    let k = 8;
    let run = |topology: Topology, record: bool| {
        train_distributed_with_opts(
            &ds,
            k,
            &cfg,
            PartitionStrategy::Metis,
            DistOptions {
                topology,
                residency: ResidencyMode::Resident,
                exec: ExecMode::FusedOverlapped,
                comm: CommMode::BucketedOverlap {
                    bucket_bytes: COMM_SCALING_BUCKET_BYTES,
                },
                record_trace: record,
                ..DistOptions::default()
            },
        )
        .expect("trains")
    };

    let recorded = run(Topology::nvlink_islands(TOPOLOGY_ISLAND), true);
    let trace = recorded.trace.expect("record_trace captures the run");
    let recorded_ms = trace.sim_time_ns as f64 / 1e6;
    let ms = |ns: u64| ns as f64 / 1e6;
    let delta = |pred: f64| (pred - recorded_ms) / recorded_ms * 100.0;
    let err = |pred: f64, fresh: f64| (pred - fresh).abs() / fresh * 100.0;

    let identity = replay(&trace, &WhatIf::default()).expect("identity replay");
    let identity_exact = identity.sim_time_ns == trace.sim_time_ns
        && identity.submissions == trace.submissions()
        && identity.kernel_launches == trace.kernel_launches;

    let mut arms = Vec::new();
    let identity_ms = ms(identity.sim_time_ns);
    arms.push(WhatIfArm {
        arm: "identity",
        predicted_ms: identity_ms,
        fresh_ms: Some(recorded_ms),
        err_pct: Some(err(identity_ms, recorded_ms)),
        delta_vs_recorded_pct: delta(identity_ms),
    });

    let whatif_topo = |t: Topology| WhatIf {
        topology: Some(t),
        ..WhatIf::default()
    };
    let eth_pred = ms(
        replay(&trace, &whatif_topo(Topology::Flat(LinkKind::Ethernet)))
            .expect("ethernet replay")
            .sim_time_ns,
    );
    let eth_fresh = ms(run(Topology::Flat(LinkKind::Ethernet), false).sim_time_ns);
    arms.push(WhatIfArm {
        arm: "flat-ethernet",
        predicted_ms: eth_pred,
        fresh_ms: Some(eth_fresh),
        err_pct: Some(err(eth_pred, eth_fresh)),
        delta_vs_recorded_pct: delta(eth_pred),
    });

    let nv_pred = ms(
        replay(&trace, &whatif_topo(Topology::Flat(LinkKind::NvLink)))
            .expect("nvlink replay")
            .sim_time_ns,
    );
    let nv_fresh = ms(run(Topology::Flat(LinkKind::NvLink), false).sim_time_ns);
    let nvlink_err_pct = err(nv_pred, nv_fresh);
    arms.push(WhatIfArm {
        arm: "nvlink-everywhere",
        predicted_ms: nv_pred,
        fresh_ms: Some(nv_fresh),
        err_pct: Some(nvlink_err_pct),
        delta_vs_recorded_pct: delta(nv_pred),
    });

    let s1_pred = ms(replay(
        &trace,
        &WhatIf {
            streams: Some(1),
            ..WhatIf::default()
        },
    )
    .expect("single-stream replay")
    .sim_time_ns);
    arms.push(WhatIfArm {
        arm: "comm-streams-1",
        predicted_ms: s1_pred,
        fresh_ms: None,
        err_pct: None,
        delta_vs_recorded_pct: delta(s1_pred),
    });

    WhatIfAblation {
        workers: k,
        recorded_ms,
        recorded_submissions: trace.submissions(),
        recorded_kernel_launches: trace.kernel_launches,
        identity_exact,
        arms,
        nvlink_err_pct,
    }
}

/// Machine-readable A11 summary — the content of `BENCH_A11.json`.
pub fn whatif_json(a: &WhatIfAblation) -> String {
    let arms: Vec<String> = a
        .arms
        .iter()
        .map(|r| {
            let opt = |v: Option<f64>| v.map_or("null".to_owned(), |x| format!("{x}"));
            format!(
                "{{\"arm\":\"{}\",\"predicted_ms\":{},\"fresh_ms\":{},\
                 \"err_pct\":{},\"delta_vs_recorded_pct\":{}}}",
                r.arm,
                r.predicted_ms,
                opt(r.fresh_ms),
                opt(r.err_pct),
                r.delta_vs_recorded_pct
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"A11\",\n  \"title\": \"trace record + what-if replay\",\n  \
         \"workers\": {},\n  \"recorded_ms\": {},\n  \"recorded_submissions\": {},\n  \
         \"recorded_kernel_launches\": {},\n  \"identity_exact\": {},\n  \
         \"nvlink_err_pct\": {},\n  \"arms\": [{}]\n}}\n",
        a.workers,
        a.recorded_ms,
        a.recorded_submissions,
        a.recorded_kernel_launches,
        a.identity_exact,
        a.nvlink_err_pct,
        arms.join(", ")
    )
}

// ---------------------------------------------------------------------
// E21 — Appendix A pricing reconciliation
// ---------------------------------------------------------------------

/// (label, modeled $/h, paper $/h).
pub fn pricing_reconciliation() -> Vec<(&'static str, f64, f64)> {
    let cat = InstanceCatalog::us_east_1();
    vec![
        (
            "single-GPU hourly average",
            cat.course_single_gpu_avg(),
            1.262,
        ),
        (
            "multi-GPU hourly average",
            cat.course_multi_gpu_avg(),
            2.314,
        ),
    ]
}

// ---------------------------------------------------------------------
// A12 — retrieval at scale: sharded IVF-PQ
// ---------------------------------------------------------------------

/// One arm of the A12 retrieval-scale study.
pub struct RetrievalArm {
    /// "flat", "ivf", "ivfpq", or "sharded".
    pub arm: &'static str,
    /// Lists probed (0 for the exhaustive flat scan).
    pub nprobe: usize,
    /// Shard count (1 for single-device arms).
    pub shards: usize,
    /// Mean recall@10 against the exact flat baseline.
    pub recall_at_10: f64,
    /// Index bytes resident on device (summed across shards).
    pub device_bytes: u64,
    /// Simulated time to search the whole query batch (per-device max).
    pub search_ms: f64,
}

/// The A12 study: Flat vs IVF vs IVF-PQ accuracy/latency/memory on one
/// device, then the same IVF-PQ index scattered across 1/2/4 shards.
pub struct RetrievalScaleAblation {
    pub corpus: usize,
    pub dim: usize,
    pub queries: usize,
    pub nlist: usize,
    pub pq_m: usize,
    pub pq_nbits: u32,
    pub arms: Vec<RetrievalArm>,
    /// Flat index bytes — the uncompressed baseline.
    pub flat_bytes: u64,
    /// Single-shard IVF-PQ bytes (centroids + codebook + codes).
    pub pq_bytes: u64,
    /// Exact re-rank depth applied to the PQ/sharded arms.
    pub refine: usize,
    /// `flat_bytes / pq_bytes` — the compression headline.
    pub memory_reduction: f64,
    /// Best IVF-PQ recall@10 over the swept nprobe values.
    pub best_pq_recall: f64,
    /// Sharded search speedup from 1 to 4 shards at fixed nprobe.
    pub sharded_speedup_4x: f64,
    /// True when 4-shard scatter-gather hits equal 1-shard hits bitwise.
    pub sharded_identical: bool,
}

/// Batch-search an index on its own device and return (per-query hits,
/// simulated milliseconds the search took on that device).
fn timed_search<I: RetrievalIndex>(
    idx: &I,
    gpu: &Arc<Gpu>,
    queries: &[Vec<f32>],
    k: usize,
) -> (Vec<Vec<sagegpu_core::rag::index::SearchHit>>, f64) {
    let t0 = gpu.now_ns();
    let hits = idx.search_batch(queries, k);
    (hits, (gpu.now_ns() - t0) as f64 / 1e6)
}

/// A12 — the retrieval-at-scale ablation behind `BENCH_A12.json`.
pub fn retrieval_scale_ablation() -> RetrievalScaleAblation {
    use sagegpu_core::gpu::cluster::{GpuCluster, LinkKind};
    use sagegpu_core::rag::pq::{IvfPqIndex, PqConfig};
    use sagegpu_core::rag::shard::{Placement, ShardPlan, ShardedIndex};

    const CORPUS: usize = 20_000;
    const DIM: usize = 96;
    const NLIST: usize = 64;
    const PQ: PqConfig = PqConfig { m: 32, nbits: 8 };
    const NPROBES: [usize; 5] = [1, 4, 8, 16, 32];
    const SHARD_NPROBE: usize = 16;
    const QUERIES: usize = 32;
    const K: usize = 10;
    const SAMPLE: usize = 2_048;
    const REFINE: usize = 40;

    let corpus = Corpus::synthetic(CORPUS, 80, SEED);
    let embedder = Embedder::new(DIM, SEED.wrapping_add(1));
    let data: Vec<(usize, Vec<f32>)> = corpus
        .docs()
        .iter()
        .map(|d| (d.id, embedder.embed(&d.text)))
        .collect();
    let queries: Vec<Vec<f32>> = (0..QUERIES)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();

    let device = || Arc::new(Gpu::new(0, DeviceSpec::t4()));
    let cluster = |n: usize| Arc::new(GpuCluster::homogeneous(n, DeviceSpec::t4(), LinkKind::Pcie));

    // Exact baseline: flat GPU scan — ground truth for every recall figure.
    let gpu = device();
    let mut flat = FlatIndex::with_gpu(DIM, GpuExecutor::new(gpu.clone()));
    for (id, v) in &data {
        flat.add(*id, v.clone());
    }
    let (exact, flat_ms) = timed_search(&flat, &gpu, &queries, K);
    let flat_bytes = flat.device_bytes();
    let mean_recall = |hits: &[Vec<sagegpu_core::rag::index::SearchHit>]| -> f64 {
        exact
            .iter()
            .zip(hits)
            .map(|(e, h)| recall_at_k(e, h))
            .sum::<f64>()
            / exact.len() as f64
    };

    let mut arms = vec![RetrievalArm {
        arm: "flat",
        nprobe: 0,
        shards: 1,
        recall_at_10: 1.0,
        device_bytes: flat_bytes,
        search_ms: flat_ms,
    }];

    // IVF: same coarse quantizer, full-precision lists.
    let gpu = device();
    let mut ivf = IvfIndex::train(DIM, NLIST, 1, &data, SEED)
        .expect("ivf trains")
        .with_gpu(GpuExecutor::new(gpu.clone()));
    for &nprobe in &NPROBES {
        ivf.set_nprobe(nprobe);
        let (hits, ms) = timed_search(&ivf, &gpu, &queries, K);
        arms.push(RetrievalArm {
            arm: "ivf",
            nprobe,
            shards: 1,
            recall_at_10: mean_recall(&hits),
            device_bytes: ivf.device_bytes(),
            search_ms: ms,
        });
    }

    // IVF-PQ: coded lists, ADC scans.
    let gpu = device();
    let mut ivfpq = IvfPqIndex::train(DIM, NLIST, 1, PQ, &data, SEED)
        .expect("ivfpq trains")
        .with_gpu(GpuExecutor::new(gpu.clone()))
        .expect("uploads")
        .with_refine(REFINE);
    let pq_bytes = ivfpq.device_bytes();
    let mut best_pq_recall = 0.0f64;
    for &nprobe in &NPROBES {
        ivfpq.set_nprobe(nprobe);
        let (hits, ms) = timed_search(&ivfpq, &gpu, &queries, K);
        let recall = mean_recall(&hits);
        best_pq_recall = best_pq_recall.max(recall);
        arms.push(RetrievalArm {
            arm: "ivfpq",
            nprobe,
            shards: 1,
            recall_at_10: recall,
            device_bytes: pq_bytes,
            search_ms: ms,
        });
    }

    // Sharded IVF-PQ at fixed nprobe: the same search scattered over
    // 1/2/4 devices, timed as cluster makespan.
    let plan = |shards: usize| ShardPlan {
        nlist: NLIST,
        nprobe: SHARD_NPROBE,
        pq: PQ,
        sample: SAMPLE,
        shards,
        refine: REFINE,
        placement: Placement::SizeBalanced,
        budget_bytes: None,
    };
    let mut sharded_ms = Vec::new();
    let mut sharded_hits = Vec::new();
    for shards in [1usize, 2, 4] {
        let gpus = cluster(shards);
        let idx = ShardedIndex::build(DIM, plan(shards), &data, gpus.clone(), SEED)
            .expect("sharded index builds");
        let t0 = idx.makespan_ns();
        let hits = idx.search_batch(&queries, K);
        let ms = (idx.makespan_ns() - t0) as f64 / 1e6;
        sharded_ms.push(ms);
        arms.push(RetrievalArm {
            arm: "sharded",
            nprobe: SHARD_NPROBE,
            shards,
            recall_at_10: mean_recall(&hits),
            device_bytes: idx.device_bytes(),
            search_ms: ms,
        });
        sharded_hits.push(hits);
    }
    let sharded_speedup_4x = sharded_ms[0] / sharded_ms[2];
    let sharded_identical =
        sharded_hits[0] == sharded_hits[1] && sharded_hits[0] == sharded_hits[2];

    RetrievalScaleAblation {
        corpus: CORPUS,
        dim: DIM,
        queries: QUERIES,
        nlist: NLIST,
        pq_m: PQ.m,
        pq_nbits: PQ.nbits,
        arms,
        flat_bytes,
        pq_bytes,
        refine: REFINE,
        memory_reduction: flat_bytes as f64 / pq_bytes as f64,
        best_pq_recall,
        sharded_speedup_4x,
        sharded_identical,
    }
}

/// Machine-readable A12 summary — the content of `BENCH_A12.json`.
pub fn retrieval_json(a: &RetrievalScaleAblation) -> String {
    let arms: Vec<String> = a
        .arms
        .iter()
        .map(|r| {
            format!(
                "{{\"arm\":\"{}\",\"nprobe\":{},\"shards\":{},\"recall_at_10\":{},\
                 \"device_bytes\":{},\"search_ms\":{}}}",
                r.arm, r.nprobe, r.shards, r.recall_at_10, r.device_bytes, r.search_ms
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"A12\",\n  \"title\": \"sharded IVF-PQ retrieval at scale\",\n  \
         \"corpus\": {},\n  \"dim\": {},\n  \"queries\": {},\n  \"nlist\": {},\n  \
         \"pq_m\": {},\n  \"pq_nbits\": {},\n  \"flat_bytes\": {},\n  \"pq_bytes\": {},\n  \
         \"refine\": {},\n  \"memory_reduction\": {},\n  \"best_pq_recall\": {},\n  \
         \"sharded_speedup_4x\": {},\n  \"sharded_identical\": {},\n  \"arms\": [{}]\n}}\n",
        a.corpus,
        a.dim,
        a.queries,
        a.nlist,
        a.pq_m,
        a.pq_nbits,
        a.flat_bytes,
        a.pq_bytes,
        a.refine,
        a.memory_reduction,
        a.best_pq_recall,
        a.sharded_speedup_4x,
        a.sharded_identical,
        arms.join(", ")
    )
}

// ---------------------------------------------------------------------
// A13 — tiered residency: sharded serving under a device budget
// ---------------------------------------------------------------------

/// One arm of the A13 residency-serving study: a live
/// [`RagServer`](sagegpu_core::rag::serve::RagServer) over
/// a 4-shard IVF-PQ index whose inverted lists live under a device byte
/// budget, driven by one query-skew pattern.
pub struct ResidencyServingArm {
    /// "uniform" or "zipf".
    pub skew: &'static str,
    /// Device budget as a percent of the packed list-code bytes.
    pub budget_pct: u64,
    /// Absolute budget handed to the server (bytes, summed over shards).
    pub budget_bytes: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Served queries per second of simulated cluster time (makespan
    /// delta over the serving window).
    pub sim_qps: f64,
    /// p99 simulated retrieval latency (ms, ceil nearest-rank).
    pub p99_retrieve_ms: f64,
    /// Tier hit ratio over the serving window (build prewarm excluded).
    pub hit_ratio: f64,
    /// Host-link bytes moved by charge-on-miss promotions while serving.
    pub host_link_bytes: u64,
    /// Peak resident bytes under the budget in force (summed over shards).
    pub high_water_bytes: u64,
    /// True when the high-water never exceeded the budget.
    pub budget_ok: bool,
    /// True when every served hit equals the fully-resident ground truth.
    pub hits_identical: bool,
    /// Allocator reuse ratio across the shard pools at shutdown.
    pub pool_reuse_ratio: f64,
    /// `trim()` calls that released spilled reservations to the device.
    pub pool_trims: u64,
}

/// The A13 study: budget {100, 50, 25, 10}% of index code bytes × query
/// skew {uniform, Zipfian} on a live server, plus the profiler's offline
/// promotion-copy attribution of the tightest interesting arm (25% +
/// zipf).
pub struct ResidencyServingAblation {
    pub corpus: usize,
    pub dim: usize,
    pub shards: usize,
    pub nlist: usize,
    pub nprobe: usize,
    /// Requests served per arm.
    pub requests: usize,
    /// Distinct queries in the pool the streams draw from.
    pub distinct_queries: usize,
    /// Total packed list-code bytes — the spillable set budgets scale.
    pub code_bytes: u64,
    pub arms: Vec<ResidencyServingArm>,
    /// sim-QPS(25% budget, zipf) / sim-QPS(100% budget, zipf) — the
    /// serving-throughput price of a 4x smaller device footprint.
    pub qps_ratio_25_zipf: f64,
    /// Max promotion-copy exposed fraction across devices, from the
    /// profiler's offline ingestion of the 25%-zipf arm's trace.
    pub promotion_exposed_fraction: f64,
    /// Promotion H2D bytes the profiler attributed in that trace.
    pub promotion_h2d_bytes: u64,
    /// True when the grow-budget/shrink-nprobe advice fired on any device.
    pub advice_fired: bool,
}

/// Deterministic 64-bit mix (splitmix64) — the experiment's only source
/// of "randomness", fully seeded.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Zipf(s=1) rank over `n` items: inverse-CDF over the harmonic weights,
/// driven by one splitmix64 draw. Rank 0 is the hottest item.
fn zipf_rank(n: usize, state: &mut u64) -> usize {
    let total: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
    let u = splitmix64(state) as f64 / u64::MAX as f64 * total;
    let mut cum = 0.0;
    for r in 0..n {
        cum += 1.0 / (r + 1) as f64;
        if u <= cum {
            return r;
        }
    }
    n - 1
}

/// A13 — the residency-serving ablation behind `BENCH_A13.json`.
pub fn residency_serving_ablation() -> ResidencyServingAblation {
    use sagegpu_core::gpu::cluster::{GpuCluster, LinkKind};
    use sagegpu_core::gpu::trace::TraceV1;
    use sagegpu_core::profiler::bottleneck::analyze_serving;
    use sagegpu_core::profiler::ingest::ingest_trace;
    use sagegpu_core::rag::pipeline::build_sharded_pipeline;
    use sagegpu_core::rag::pq::PqConfig;
    use sagegpu_core::rag::serve::{RagServer, ServerConfig};
    use sagegpu_core::rag::shard::{Placement, ShardPlan};
    use sagegpu_core::taskflow::cluster::ClusterBuilder;

    const CORPUS: usize = 4_000;
    const DIM: usize = 96;
    const NLIST: usize = 32;
    const NPROBE: usize = 8;
    const SHARDS: usize = 4;
    const REQUESTS: usize = 160;
    const POOL: usize = 40;
    const BUDGETS: [u64; 4] = [100, 50, 25, 10];

    let plan = || ShardPlan {
        nlist: NLIST,
        nprobe: NPROBE,
        pq: PqConfig::new(16, 6),
        sample: 512,
        shards: SHARDS,
        refine: 16,
        placement: Placement::SizeBalanced,
        budget_bytes: None,
    };
    let cluster = || {
        Arc::new(GpuCluster::homogeneous(
            SHARDS,
            DeviceSpec::t4(),
            LinkKind::Pcie,
        ))
    };

    // Fully-resident ground truth: every arm's served hits must equal
    // these bitwise, whatever its budget did to the resident set.
    let reference_pipeline =
        build_sharded_pipeline(CORPUS, DIM, plan(), cluster(), SEED).expect("reference builds");
    let code_bytes = reference_pipeline
        .index
        .residency_stats()
        .expect("GPU-attached index has a tier")
        .list_bytes;
    let pool_queries: Vec<String> = (0..POOL)
        .map(|j| Corpus::topic_query(j % 5, 6, j as u64))
        .collect();
    let reference: Vec<_> = pool_queries
        .iter()
        .map(|q| reference_pipeline.retrieve(q).0)
        .collect();

    // Request streams: index into the pool per request, fixed up front so
    // every arm of one skew serves the identical sequence.
    let uniform: Vec<usize> = (0..REQUESTS).map(|i| i % POOL).collect();
    let mut rng = SEED;
    let zipf: Vec<usize> = (0..REQUESTS).map(|_| zipf_rank(POOL, &mut rng)).collect();

    let run_arm = |skew: &'static str,
                   stream: &[usize],
                   budget_pct: u64,
                   record: bool|
     -> (ResidencyServingArm, Option<TraceV1>) {
        let gpus = cluster();
        let pipeline = Arc::new(
            build_sharded_pipeline(CORPUS, DIM, plan(), gpus.clone(), SEED).expect("builds"),
        );
        // Attach the recorder after the build so the trace covers only
        // the serving window — the promotions the budget forces.
        let sink = record.then(|| gpus.record_trace());
        let budget = code_bytes * budget_pct / 100;
        let workers = ClusterBuilder::new().workers(1).build();
        let server = RagServer::start(
            Arc::clone(&pipeline),
            workers,
            ServerConfig::new()
                .cache_capacity(0)
                .residency_budget(budget),
        );
        // `start` applied the budget synchronously: snapshot the tier so
        // the arm's counters cover the serving window alone (the build's
        // prewarm misses are excluded).
        let tier0 = pipeline
            .index
            .residency_stats()
            .expect("tiered index reports stats");
        let t0 = gpus.makespan_ns();
        let mut identical = true;
        let mut retrieve_ns: Vec<u64> = Vec::with_capacity(stream.len());
        for &qi in stream {
            let served = server
                .submit(pool_queries[qi].clone())
                .expect("ample capacity")
                .wait()
                .expect("fault-free cluster serves");
            identical &= served.response.hits == reference[qi];
            retrieve_ns.push(served.response.retrieve_ns);
        }
        let span_ns = gpus.makespan_ns() - t0;
        let report = server.shutdown();
        let trace = sink.map(|_| gpus.finish_trace("a13-tiered-serving").expect("recording"));

        let tier = report
            .residency
            .as_ref()
            .expect("tiered index reports stats")
            .since(&tier0);
        retrieve_ns.sort_unstable();
        let p99 = retrieve_ns[((retrieve_ns.len() as f64 * 0.99).ceil() as usize).max(1) - 1];
        let (allocs, reuse) = report
            .pools
            .iter()
            .fold((0u64, 0u64), |(a, r), p| (a + p.allocs, r + p.reuse_hits));
        let arm = ResidencyServingArm {
            skew,
            budget_pct,
            budget_bytes: tier.budget_bytes,
            served: report.served,
            sim_qps: report.served as f64 / (span_ns.max(1) as f64 * 1e-9),
            p99_retrieve_ms: p99 as f64 / 1e6,
            hit_ratio: tier.hit_ratio(),
            host_link_bytes: tier.promoted_bytes,
            high_water_bytes: tier.high_water_bytes,
            budget_ok: tier.high_water_bytes <= tier.budget_bytes,
            hits_identical: identical,
            pool_reuse_ratio: if allocs == 0 {
                0.0
            } else {
                reuse as f64 / allocs as f64
            },
            pool_trims: report.pools.iter().map(|p| p.trims).sum(),
        };
        (arm, trace)
    };

    let mut arms = Vec::new();
    let mut attribution_trace = None;
    for (skew, stream) in [("uniform", &uniform), ("zipf", &zipf)] {
        for &pct in &BUDGETS {
            let record = skew == "zipf" && pct == 25;
            let (arm, trace) = run_arm(skew, stream, pct, record);
            arms.push(arm);
            if let Some(t) = trace {
                attribution_trace = Some(t);
            }
        }
    }

    let qps_of = |skew: &str, pct: u64| -> f64 {
        arms.iter()
            .find(|a| a.skew == skew && a.budget_pct == pct)
            .map(|a| a.sim_qps)
            .unwrap_or(0.0)
    };
    let qps_ratio_25_zipf = qps_of("zipf", 25) / qps_of("zipf", 100).max(f64::MIN_POSITIVE);

    // Offline promotion attribution: identity-replay the 25%-zipf trace
    // and re-analyze each lane with the serving-aware entrypoint.
    let trace = attribution_trace.expect("the 25%-zipf arm records");
    let analysis = ingest_trace(&trace).expect("trace ingests");
    let mut promotion_exposed_fraction = 0.0f64;
    let mut promotion_h2d_bytes = 0u64;
    let mut advice_fired = false;
    for d in &trace.devices {
        let report = analyze_serving(&analysis.timeline, d.ordinal, &d.spec, None, None);
        promotion_exposed_fraction =
            promotion_exposed_fraction.max(report.promotion_exposed_fraction);
        promotion_h2d_bytes += report.promotion_h2d_bytes;
        advice_fired |= report
            .recommendations
            .iter()
            .any(|r| r.contains("grow the residency budget"));
    }

    ResidencyServingAblation {
        corpus: CORPUS,
        dim: DIM,
        shards: SHARDS,
        nlist: NLIST,
        nprobe: NPROBE,
        requests: REQUESTS,
        distinct_queries: POOL,
        code_bytes,
        arms,
        qps_ratio_25_zipf,
        promotion_exposed_fraction,
        promotion_h2d_bytes,
        advice_fired,
    }
}

/// Machine-readable A13 summary — the content of `BENCH_A13.json`.
pub fn residency_serving_json(a: &ResidencyServingAblation) -> String {
    let arms: Vec<String> = a
        .arms
        .iter()
        .map(|r| {
            format!(
                "{{\"skew\":\"{}\",\"budget_pct\":{},\"budget_bytes\":{},\"served\":{},\
                 \"sim_qps\":{},\"p99_retrieve_ms\":{},\"hit_ratio\":{},\
                 \"host_link_bytes\":{},\"high_water_bytes\":{},\"budget_ok\":{},\
                 \"hits_identical\":{},\"pool_reuse_ratio\":{},\"pool_trims\":{}}}",
                r.skew,
                r.budget_pct,
                r.budget_bytes,
                r.served,
                r.sim_qps,
                r.p99_retrieve_ms,
                r.hit_ratio,
                r.host_link_bytes,
                r.high_water_bytes,
                r.budget_ok,
                r.hits_identical,
                r.pool_reuse_ratio,
                r.pool_trims
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"A13\",\n  \
         \"title\": \"tiered-residency serving under device budgets\",\n  \
         \"corpus\": {},\n  \"dim\": {},\n  \"shards\": {},\n  \"nlist\": {},\n  \
         \"nprobe\": {},\n  \"requests\": {},\n  \"distinct_queries\": {},\n  \
         \"code_bytes\": {},\n  \"qps_ratio_25_zipf\": {},\n  \
         \"promotion_exposed_fraction\": {},\n  \"promotion_h2d_bytes\": {},\n  \
         \"advice_fired\": {},\n  \"arms\": [{}]\n}}\n",
        a.corpus,
        a.dim,
        a.shards,
        a.nlist,
        a.nprobe,
        a.requests,
        a.distinct_queries,
        a.code_bytes,
        a.qps_ratio_25_zipf,
        a.promotion_exposed_fraction,
        a.promotion_h2d_bytes,
        a.advice_fired,
        arms.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_totals_are_paper_shaped() {
        let rows = fig1_enrollment();
        assert_eq!(rows.len(), 3);
        let spring = rows.iter().find(|r| r.0.contains("Spring")).unwrap();
        assert_eq!(spring.2, 15, "fifteen graduate students in Spring 2025");
    }

    #[test]
    fn table3_reproduces_paper_conclusions() {
        let t = table3_assumptions();
        assert!(t.grad.p_value < 0.01);
        assert!(t.grad.w < t.undergrad.w);
        assert!(t.levene.p_value > 0.05);
    }

    #[test]
    fn mwu_is_significant() {
        let r = mwu_test();
        assert!(r.p_value < 0.01);
        assert!(r.u1 > 290.0);
    }

    #[test]
    fn partition_sweep_shows_metis_advantage() {
        // The experiment dataset is deliberately noisy (weak communities),
        // so the METIS advantage is smaller than on clean SBM graphs --
        // but it must still be decisively below the random baseline.
        for row in partition_sweep(&[2, 4]) {
            assert!(row.cut_ratio < 0.85, "k={}: ratio {}", row.k, row.cut_ratio);
            assert!(row.metis_balance < 1.15);
        }
    }

    #[test]
    fn matmul_sweep_is_monotone_in_time() {
        let rows = matmul_sweep(&[64, 128, 256]);
        assert!(rows[2].kernel_us > rows[0].kernel_us);
        assert!(rows[2].achieved_gflops > rows[0].achieved_gflops);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.transfer_fraction));
        }
    }

    #[test]
    fn rag_sweeps_have_expected_shape() {
        let retrieval = rag_retrieval_sweep(100, &[1, 4]);
        assert_eq!(retrieval[0].mean_recall_at_5, 1.0);
        // More probes → recall does not decrease.
        assert!(retrieval[2].mean_recall_at_5 >= retrieval[1].mean_recall_at_5 - 1e-9);
        let serving = rag_serving_sweep(&[1, 8]);
        assert!(serving[1].throughput_qps > serving[0].throughput_qps);
    }

    #[test]
    fn serving_ablation_shows_batching_and_cache_wins() {
        let rows = serving_ablation();
        assert_eq!(rows.len(), 6);
        // Every fault-injected run completes: nothing panics, nothing is
        // shed (capacity is ample), and retries absorb every fault.
        for r in &rows {
            assert_eq!(r.failed, 0, "batch={} cache={}", r.max_batch, r.cache);
            assert_eq!(r.shed, 0);
        }
        assert!(
            rows.iter().any(|r| r.retries > 0),
            "the fault plan must force at least one retry somewhere"
        );
        let cold = rows
            .iter()
            .find(|r| r.max_batch == 1 && !r.cache)
            .expect("baseline row");
        let warm = rows
            .iter()
            .find(|r| r.max_batch == 8 && r.window_us == 200 && r.cache)
            .expect("batched+cached row");
        assert!(
            warm.p99_us < cold.p99_us,
            "micro-batching + warm cache must cut p99: {} vs {}",
            warm.p99_us,
            cold.p99_us
        );
        assert!(
            warm.sim_qps > cold.sim_qps,
            "and raise throughput: {} vs {}",
            warm.sim_qps,
            cold.sim_qps
        );
        assert!(warm.cache_hit_rate > 0.4, "{}", warm.cache_hit_rate);
        assert!(warm.mean_batch > cold.mean_batch);
    }

    #[test]
    fn work_stealing_beats_round_robin_on_imbalanced_bag() {
        let rows = dispatch_ablation(4, 48);
        let rr = &rows[0];
        let ws = &rows[1];
        assert_eq!(rr.dispatch, "round-robin");
        assert_eq!(rr.steals, 0, "round-robin must never steal");
        assert!(ws.steals > 0, "stealing must actually occur");
        // 12 one-millisecond tasks all land on worker 0 under round-robin
        // (>= 12 ms serialized); four stealing workers split them.
        assert!(
            ws.wall_ms < rr.wall_ms,
            "work stealing ({:.2} ms) should beat round-robin ({:.2} ms)",
            ws.wall_ms,
            rr.wall_ms
        );
        assert!(
            ws.busy_imbalance < rr.busy_imbalance,
            "stealing should even out busy time ({:.2} vs {:.2})",
            ws.busy_imbalance,
            rr.busy_imbalance
        );
    }

    #[test]
    fn residency_ablation_meets_acceptance() {
        let a = residency_ablation();
        // Bit-identical outputs in both domains.
        assert!(a.gcn_identical, "GCN training trajectories diverged");
        assert!(a.rag_identical, "RAG scores diverged");
        // ≥5× fewer host-link bytes for resident execution.
        assert!(
            a.gcn_reduction >= 5.0,
            "GCN host-link reduction {:.1}× below 5×",
            a.gcn_reduction
        );
        assert!(
            a.rag_reduction >= 5.0,
            "RAG host-link reduction {:.1}× below 5×",
            a.rag_reduction
        );
        // The resident GCN run is classified compute-bound by the
        // residency-aware profiler; residency hit ratios split 0 vs 1.
        assert_eq!(a.gcn[1].mode, "resident");
        assert_eq!(a.gcn[1].bottleneck, "ComputeBound", "resident run verdict");
        assert_eq!(a.gcn[1].residency_hit_ratio, 1.0);
        assert_eq!(a.gcn[0].residency_hit_ratio, 0.0);
        assert_eq!(a.rag[1].residency_hit_ratio, 1.0);
    }

    #[test]
    fn fusion_ablation_meets_acceptance() {
        let a = fusion_ablation();
        // Bit-identical outputs in both domains — fusion and pipelining
        // only reprice the schedule, never the arithmetic.
        assert!(a.gcn_identical, "GCN training trajectories diverged");
        assert!(a.rag_identical, "RAG scores diverged");
        // Strictly fewer launches AND strictly lower makespan, both domains.
        assert_eq!(a.gcn[0].mode, "serial");
        assert_eq!(a.gcn[1].mode, "fused");
        assert!(
            a.gcn[1].kernel_launches < a.gcn[0].kernel_launches,
            "fused GCN launches {} not below serial {}",
            a.gcn[1].kernel_launches,
            a.gcn[0].kernel_launches
        );
        assert!(
            a.gcn_speedup > 1.0,
            "fused GCN makespan not lower (speedup {:.3})",
            a.gcn_speedup
        );
        assert_eq!(a.rag[0].mode, "serial");
        assert_eq!(a.rag[1].mode, "fused");
        assert!(
            a.rag[1].kernel_launches < a.rag[0].kernel_launches,
            "batched RAG launches {} not below serial {}",
            a.rag[1].kernel_launches,
            a.rag[0].kernel_launches
        );
        assert!(
            a.rag_speedup > 1.0,
            "batched RAG makespan not lower (speedup {:.3})",
            a.rag_speedup
        );
        // Fusing shrinks the launch-overhead share of kernel time; the
        // two-stream pipeline pushes overlap efficiency above the
        // back-to-back serial schedule.
        assert!(
            a.gcn[1].launch_overhead_fraction < a.gcn[0].launch_overhead_fraction,
            "fused launch-overhead share {:.3} not below serial {:.3}",
            a.gcn[1].launch_overhead_fraction,
            a.gcn[0].launch_overhead_fraction
        );
        assert!(
            a.rag[1].overlap_efficiency > a.rag[0].overlap_efficiency,
            "pipelined overlap {:.3} not above serial {:.3}",
            a.rag[1].overlap_efficiency,
            a.rag[0].overlap_efficiency
        );
        // The JSON artifact parses and carries the headline fields.
        let json = fusion_ablation_json(&a);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["experiment"], "A07");
        assert_eq!(v["gcn"]["rows"].as_array().expect("rows").len(), 2);
        assert_eq!(v["rag"]["rows"].as_array().expect("rows").len(), 2);
        assert_eq!(v["gcn"]["identical"].as_bool(), Some(true));
        assert_eq!(v["rag"]["identical"].as_bool(), Some(true));
        assert!(v["gcn"]["speedup"].as_f64().expect("speedup") > 1.0);
        assert!(v["rag"]["speedup"].as_f64().expect("speedup") > 1.0);
    }

    #[test]
    fn comm_scaling_ablation_meets_acceptance() {
        let a = comm_scaling_ablation();
        // Both schedules compute bit-identical averaged gradients, so the
        // training trajectories must agree at every worker count.
        assert!(a.identical_all_k, "comm schedules diverged");
        assert_eq!(a.rows.len(), 2 * COMM_SCALING_WORKERS.len());
        let at = |k: usize, comm: &str| {
            a.rows
                .iter()
                .find(|r| r.workers == k && r.comm == comm)
                .expect("swept row")
        };
        for &k in &COMM_SCALING_WORKERS {
            let mono = at(k, "monolithic");
            let buck = at(k, "bucketed");
            assert_eq!(mono.final_loss, buck.final_loss, "loss at k={k}");
            assert_eq!(mono.test_accuracy, buck.test_accuracy, "accuracy at k={k}");
            assert_eq!(mono.overlapped_comm_ms, 0.0, "monolithic never overlaps");
            // Regression pin: the cap must actually split the payload at
            // the layer boundary — a degenerate single bucket is the
            // monolithic schedule wearing a different name.
            assert!(
                buck.buckets_per_epoch >= 2,
                "k={k}: bucketed arm degenerated to {} bucket(s) per epoch",
                buck.buckets_per_epoch
            );
            if k >= 2 {
                // The bucketed collective launches from inside backward, so
                // part of the comm lane is always covered and the end-to-end
                // schedule is strictly faster. (The absolute exposed tail can
                // exceed monolithic's at k=8 where per-bucket ring latency
                // dominates the flat Ethernet exchange — that collapse is
                // what the A10 topology ablation addresses.)
                assert!(buck.overlapped_comm_ms > 0.0, "k={k}: nothing overlapped");
                assert!(
                    buck.comm_exposed_fraction < 1.0,
                    "k={k}: no part of the comm lane was covered"
                );
                assert!(
                    buck.sim_time_ms < mono.sim_time_ms,
                    "k={k}: bucketed wall-time {} not below monolithic {}",
                    buck.sim_time_ms,
                    mono.sim_time_ms
                );
            }
            if (2..=4).contains(&k) {
                // With a wide backward window relative to the ring, overlap
                // also strictly shrinks the absolute exposed tail.
                assert!(
                    buck.exposed_comm_ms < mono.exposed_comm_ms,
                    "k={k}: bucketed exposed {} not below monolithic {}",
                    buck.exposed_comm_ms,
                    mono.exposed_comm_ms
                );
            }
        }
        // The headline: overlap recovers scaling the monolithic exchange
        // squandered, and the profiler sees the comm lane get covered.
        assert!(a.overlap_win_at_4 > 1.0, "no win at 4 workers");
        assert!(
            a.bucketed_speedup_at_4 > a.monolithic_speedup_at_4,
            "bucketed speedup {:.3} not above monolithic {:.3} at 4 workers",
            a.bucketed_speedup_at_4,
            a.monolithic_speedup_at_4
        );
        assert!(
            at(4, "bucketed").comm_exposed_fraction < at(4, "monolithic").comm_exposed_fraction,
            "profiler did not see the comm lane overlap"
        );
        // The JSON artifact parses and carries the headline fields.
        let json = comm_scaling_json(&a);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["experiment"], "A08");
        assert_eq!(
            v["rows"].as_array().expect("rows").len(),
            2 * COMM_SCALING_WORKERS.len()
        );
        assert_eq!(v["identical_all_k"].as_bool(), Some(true));
        assert!(v["overlap_win_at_4"].as_f64().expect("win") > 1.0);
    }

    #[test]
    fn graph_ablation_meets_acceptance() {
        let a = graph_ablation();
        // Bit-identical outputs in both domains — replaying a captured
        // graph re-issues the same commands, never new arithmetic.
        assert!(a.gcn_identical, "GCN training trajectories diverged");
        assert!(a.rag_identical, "RAG scores diverged");
        assert_eq!(a.gcn[0].submit, "eager");
        assert_eq!(a.gcn[1].submit, "captured");
        assert_eq!(a.rag[0].submit, "eager");
        assert_eq!(a.rag[1].submit, "captured");
        // One graph launch per replay collapses per-kernel submissions.
        assert!(
            a.gcn_launch_reduction >= 4.0,
            "GCN launch reduction {:.1}x below 4x",
            a.gcn_launch_reduction
        );
        assert!(
            a.rag_launch_reduction >= 4.0,
            "RAG launch reduction {:.1}x below 4x",
            a.rag_launch_reduction
        );
        // The headline: replay amortizes fixed launch overhead, so the
        // captured runs finish sooner and the profiler's overhead share
        // collapses on the GCN side (~0.26 eager for the fused epoch).
        assert!(
            a.gcn[1].sim_time_ms < a.gcn[0].sim_time_ms,
            "captured GCN sim time {} not below eager {}",
            a.gcn[1].sim_time_ms,
            a.gcn[0].sim_time_ms
        );
        assert!(
            a.rag[1].sim_time_us < a.rag[0].sim_time_us,
            "captured RAG sim time {} not below eager {}",
            a.rag[1].sim_time_us,
            a.rag[0].sim_time_us
        );
        assert!(
            a.gcn[0].launch_overhead_fraction > 0.15,
            "eager fused epoch should be launch-bound, got {:.3}",
            a.gcn[0].launch_overhead_fraction
        );
        assert!(
            a.gcn[1].launch_overhead_fraction < a.gcn[0].launch_overhead_fraction / 2.0,
            "captured overhead share {:.3} not well below eager {:.3}",
            a.gcn[1].launch_overhead_fraction,
            a.gcn[0].launch_overhead_fraction
        );
        // The JSON artifact parses and carries the headline fields.
        let json = graph_ablation_json(&a);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["experiment"], "A09");
        assert_eq!(v["gcn"]["rows"].as_array().expect("rows").len(), 2);
        assert_eq!(v["rag"]["rows"].as_array().expect("rows").len(), 2);
        assert_eq!(v["gcn"]["identical"].as_bool(), Some(true));
        assert_eq!(v["rag"]["identical"].as_bool(), Some(true));
        assert!(v["gcn"]["launch_reduction"].as_f64().expect("red") >= 4.0);
        assert!(v["rag"]["launch_reduction"].as_f64().expect("red") >= 4.0);
    }

    #[test]
    fn pricing_within_tolerance_of_paper() {
        for (label, modeled, paper) in pricing_reconciliation() {
            assert!(
                (modeled - paper).abs() / paper < 0.10,
                "{label}: modeled {modeled} vs paper {paper}"
            );
        }
    }
}
