//! Deterministic perf-regression gate over recorded command traces.
//!
//! `scripts/check.sh` records four fixed workloads — a fused-GCN
//! training run, a RAG batch-scoring pass, a sharded IVF-PQ
//! scatter-gather search, and the same sharded search under a 25%
//! tiered-residency budget — through the `gpu_sim::trace`
//! interposer and diffs the scheduling metrics against golden trace
//! artifacts committed under `tests/golden/`. Because the simulator is
//! deterministic, any drift is a real behavior change: a slower schedule,
//! an extra submission, or communication newly exposed on the critical
//! path. Tolerances live next to the goldens in `tests/golden/gate.json`
//! so tightening or loosening the gate is a reviewed data change, not a
//! code change. `trace_gate --bless` re-records the goldens.

use sagegpu_core::gcn::distributed::{
    train_distributed_with_opts, CommMode, DistOptions, PartitionStrategy, ResidencyMode,
};
use sagegpu_core::gcn::exec::ExecMode;
use sagegpu_core::gcn::TrainConfig;
use sagegpu_core::gpu::cluster::Topology;
use sagegpu_core::gpu::trace::TraceV1;
use sagegpu_core::gpu::{DeviceSpec, Gpu};
use sagegpu_core::graph::generators::{sbm, SbmParams};
use sagegpu_core::profiler::ingest::ingest_trace;
use sagegpu_core::rag::corpus::Corpus;
use sagegpu_core::rag::embed::Embedder;
use sagegpu_core::tensor::dense::Tensor;
use sagegpu_core::tensor::gpu_exec::GpuExecutor;
use std::sync::Arc;

/// Directory holding the golden traces and the gate tolerances.
pub const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");

/// The gated workloads: `(short name, golden file stem)`.
pub const GATED_WORKLOADS: [(&str, &str); 4] = [
    ("gcn-epoch", "gcn_epoch"),
    ("rag-batch", "rag_batch"),
    ("rag-sharded", "rag_sharded"),
    ("rag-tiered", "rag_tiered"),
];

/// Path of a golden trace artifact by file stem.
pub fn golden_path(stem: &str) -> std::path::PathBuf {
    std::path::Path::new(GOLDEN_DIR).join(format!("{stem}.trace.json"))
}

/// Path of the tolerance file next to the goldens.
pub fn gate_config_path() -> std::path::PathBuf {
    std::path::Path::new(GOLDEN_DIR).join("gate.json")
}

/// The scalars the gate diffs between a golden and a current trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GateMetrics {
    /// Recorded makespan across devices.
    pub sim_time_ns: u64,
    /// Commands that crossed the submit interposer.
    pub submissions: u64,
    /// Mean exposed-communication fraction across comm-carrying devices
    /// (0.0 for single-device traces), from the profiler's offline
    /// ingestion of the trace.
    pub exposed_comm_fraction: f64,
}

/// Extracts the gated metrics from a trace artifact. Submission count and
/// sim-time come from the trace itself; the exposed-comm fraction comes
/// from identity-replaying it through `sagegpu_profiler::ingest`.
pub fn metrics_for(trace: &TraceV1) -> GateMetrics {
    let exposed = ingest_trace(trace)
        .map(|a| a.exposed_comm_fraction())
        .unwrap_or(0.0);
    GateMetrics {
        sim_time_ns: trace.sim_time_ns,
        submissions: trace.submissions(),
        exposed_comm_fraction: exposed,
    }
}

/// Pinned tolerances, loaded from `tests/golden/gate.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTolerances {
    /// Relative sim-time drift allowed in either direction.
    pub sim_time_rel: f64,
    /// Absolute exposed-comm-fraction growth allowed (one-sided: getting
    /// better never fails the gate).
    pub exposed_comm_abs: f64,
}

impl Default for GateTolerances {
    /// The pinned defaults: sim-time ±1%, submissions exact, exposed-comm
    /// fraction +0.02 absolute.
    fn default() -> Self {
        GateTolerances {
            sim_time_rel: 0.01,
            exposed_comm_abs: 0.02,
        }
    }
}

impl GateTolerances {
    /// Parses the `gate.json` format. Unknown fields are ignored; missing
    /// fields fall back to the pinned defaults.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("gate.json: {e}"))?;
        let d = GateTolerances::default();
        let num = |key: &str, fallback: f64| -> f64 {
            v.get(key).and_then(|x| x.as_f64()).unwrap_or(fallback)
        };
        Ok(GateTolerances {
            sim_time_rel: num("sim_time_rel_tol", d.sim_time_rel),
            exposed_comm_abs: num("exposed_comm_abs_tol", d.exposed_comm_abs),
        })
    }

    /// Loads tolerances from [`gate_config_path`], falling back to the
    /// pinned defaults when the file is absent.
    pub fn load() -> Self {
        std::fs::read_to_string(gate_config_path())
            .ok()
            .and_then(|t| Self::from_json(&t).ok())
            .unwrap_or_default()
    }

    /// The `gate.json` serialization of these tolerances.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"sim_time_rel_tol\": {},\n  \"submissions_exact\": true,\n  \
             \"exposed_comm_abs_tol\": {}\n}}\n",
            self.sim_time_rel, self.exposed_comm_abs
        )
    }
}

/// Diffs `current` against `golden` under the pinned tolerances. Returns
/// the (possibly empty) list of human-readable violations — empty means
/// the gate passes. Sim-time drift fails in *both* directions (a genuine
/// improvement should be blessed into the golden, not slip past review);
/// submission count is exact; exposed-comm only fails when it grows.
pub fn check_gate(
    golden: &GateMetrics,
    current: &GateMetrics,
    tol: &GateTolerances,
) -> Vec<String> {
    let mut violations = Vec::new();
    let drift = (current.sim_time_ns as f64 - golden.sim_time_ns as f64)
        / (golden.sim_time_ns.max(1) as f64);
    if drift.abs() > tol.sim_time_rel {
        violations.push(format!(
            "sim-time {} by {:+.2}% (golden {} ns, current {} ns, tolerance \u{b1}{}%)",
            if drift > 0.0 { "regressed" } else { "improved" },
            drift * 100.0,
            golden.sim_time_ns,
            current.sim_time_ns,
            tol.sim_time_rel * 100.0
        ));
    }
    if current.submissions != golden.submissions {
        violations.push(format!(
            "submission count changed: golden {}, current {} (must match exactly)",
            golden.submissions, current.submissions
        ));
    }
    if current.exposed_comm_fraction > golden.exposed_comm_fraction + tol.exposed_comm_abs {
        violations.push(format!(
            "exposed-comm fraction grew: golden {:.4}, current {:.4} (tolerance +{})",
            golden.exposed_comm_fraction, current.exposed_comm_fraction, tol.exposed_comm_abs
        ));
    }
    violations
}

/// Records the gated fused-GCN workload: 4 workers on NVLink islands of 2,
/// resident parameters, fused kernels, bucketed-overlap gradient exchange,
/// 4 epochs on a small seeded SBM. Everything is seeded, so re-recording
/// yields a byte-identical schedule.
pub fn record_gcn_epoch_trace() -> TraceV1 {
    let ds = sbm(
        &SbmParams {
            block_sizes: vec![50, 50, 50, 50],
            p_in: 0.18,
            p_out: 0.015,
            feature_dim: 16,
            feature_separation: 1.2,
            train_fraction: 0.5,
        },
        21,
    )
    .expect("valid SBM parameters");
    let cfg = TrainConfig {
        epochs: 4,
        ..Default::default()
    };
    train_distributed_with_opts(
        &ds,
        4,
        &cfg,
        PartitionStrategy::Metis,
        DistOptions {
            topology: Topology::nvlink_islands(2),
            residency: ResidencyMode::Resident,
            exec: ExecMode::FusedOverlapped,
            comm: CommMode::BucketedOverlap { bucket_bytes: 2560 },
            record_trace: true,
            ..DistOptions::default()
        },
    )
    .expect("gate workload trains")
    .trace
    .expect("record_trace captures the run")
}

/// Records the gated RAG batch-scoring workload: 32 embedded queries
/// against a 60-doc resident index, chunked over the executor's two-stream
/// pipeline — the A07 RAG arm, traced.
pub fn record_rag_batch_trace() -> TraceV1 {
    let embedder = Embedder::new(96, 2025);
    let corpus = Corpus::synthetic(60, 80, 2025);
    let rows: Vec<Vec<f32>> = corpus
        .docs()
        .iter()
        .map(|d| embedder.embed(&d.text))
        .collect();
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    let mat = Tensor::from_vec(60, 96, flat).expect("dims");
    let queries: Vec<Vec<f32>> = (0..32)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();
    let exec = GpuExecutor::new(Arc::new(Gpu::new(0, DeviceSpec::t4())));
    let _sink = exec.record_trace();
    let device_mat = exec.upload(&mat).expect("index fits");
    exec.score_rows_batch(&device_mat, &queries)
        .expect("scores");
    exec.finish_trace("rag-batch-scoring")
        .expect("recording was on")
}

/// Records the gated sharded-retrieval workload: a seeded 2,000-doc
/// IVF-PQ index scattered over 4 simulated T4s on PCIe, searched with a
/// 16-query batch (nprobe 8, gather-side refine 16). The sink attaches
/// to the fresh cluster before the build, so the trace covers the
/// parallel encode/upload phase plus the scatter-gather search from
/// zeroed device clocks (identity replay is exact), and the gated
/// metrics (per-device-max sim-time, submission count, exposed comm)
/// are independent of worker interleaving, so the recording is
/// reproducible.
pub fn record_rag_sharded_trace() -> TraceV1 {
    use sagegpu_core::gpu::cluster::{GpuCluster, LinkKind};
    use sagegpu_core::rag::pq::PqConfig;
    use sagegpu_core::rag::shard::{Placement, ShardPlan, ShardedIndex};

    let embedder = Embedder::new(96, 2025);
    let corpus = Corpus::synthetic(2_000, 80, 2025);
    let data: Vec<(usize, Vec<f32>)> = corpus
        .docs()
        .iter()
        .map(|d| (d.id, embedder.embed(&d.text)))
        .collect();
    let gpus = Arc::new(GpuCluster::homogeneous(4, DeviceSpec::t4(), LinkKind::Pcie));
    let _sink = gpus.record_trace();
    let plan = ShardPlan {
        nlist: 32,
        nprobe: 8,
        pq: PqConfig::new(16, 6),
        sample: 512,
        shards: 4,
        refine: 16,
        placement: Placement::SizeBalanced,
        budget_bytes: None,
    };
    let idx = ShardedIndex::build(96, plan, &data, gpus.clone(), 2025).expect("sharded build");
    let queries: Vec<Vec<f32>> = (0..16)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();
    use sagegpu_core::rag::index::RetrievalIndex;
    idx.search_batch(&queries, 10);
    gpus.finish_trace("rag-sharded-search")
        .expect("recording was on")
}

/// Records the gated tiered-residency workload: the same seeded 2,000-doc
/// sharded index as [`record_rag_sharded_trace`], but built cold under a
/// 25% device budget for the packed list codes (2,000 codes × 16 bytes =
/// 32,000 total, budget 8,000 split proportionally across the 4 shards).
/// Two sequential 16-query batches run so the trace pins both the
/// charge-on-miss promotion schedule of the cold pass and the hit/evict
/// churn of the warm one — any change to victim selection, promotion
/// charging, or list placement shifts the submission count or sim-time
/// and trips the gate.
pub fn record_rag_tiered_trace() -> TraceV1 {
    use sagegpu_core::gpu::cluster::{GpuCluster, LinkKind};
    use sagegpu_core::rag::pq::PqConfig;
    use sagegpu_core::rag::shard::{Placement, ShardPlan, ShardedIndex};

    let embedder = Embedder::new(96, 2025);
    let corpus = Corpus::synthetic(2_000, 80, 2025);
    let data: Vec<(usize, Vec<f32>)> = corpus
        .docs()
        .iter()
        .map(|d| (d.id, embedder.embed(&d.text)))
        .collect();
    let gpus = Arc::new(GpuCluster::homogeneous(4, DeviceSpec::t4(), LinkKind::Pcie));
    let _sink = gpus.record_trace();
    let plan = ShardPlan {
        nlist: 32,
        nprobe: 8,
        pq: PqConfig::new(16, 6),
        sample: 512,
        shards: 4,
        refine: 16,
        placement: Placement::SizeBalanced,
        budget_bytes: Some(8_000),
    };
    let idx = ShardedIndex::build(96, plan, &data, gpus.clone(), 2025).expect("tiered build");
    let queries: Vec<Vec<f32>> = (0..16)
        .map(|i| embedder.embed(&Corpus::topic_query(i % 5, 6, i as u64)))
        .collect();
    use sagegpu_core::rag::index::RetrievalIndex;
    idx.search_batch(&queries, 10);
    idx.search_batch(&queries, 10);
    gpus.finish_trace("rag-tiered-search")
        .expect("recording was on")
}

/// Outcome of gating one workload.
#[derive(Debug)]
pub struct GateOutcome {
    pub workload: &'static str,
    pub golden: GateMetrics,
    pub current: GateMetrics,
    pub violations: Vec<String>,
}

/// Records each gated workload and diffs it against the committed
/// goldens. With `bless`, (re-)writes the goldens and the tolerance file
/// instead and returns outcomes that trivially pass.
pub fn run_gate(bless: bool) -> Result<Vec<GateOutcome>, String> {
    let tol = GateTolerances::load();
    let mut outcomes = Vec::new();
    for (name, stem) in GATED_WORKLOADS {
        let current_trace = match name {
            "gcn-epoch" => record_gcn_epoch_trace(),
            "rag-sharded" => record_rag_sharded_trace(),
            "rag-tiered" => record_rag_tiered_trace(),
            _ => record_rag_batch_trace(),
        };
        let path = golden_path(stem);
        if bless {
            std::fs::create_dir_all(GOLDEN_DIR).map_err(|e| format!("{GOLDEN_DIR}: {e}"))?;
            current_trace
                .write_file(&path)
                .map_err(|e| format!("blessing {stem}: {e}"))?;
        }
        let golden_trace = TraceV1::read_file(&path)
            .map_err(|e| format!("golden {stem}: {e} (run `trace_gate --bless`)"))?;
        let golden = metrics_for(&golden_trace);
        let current = metrics_for(&current_trace);
        let violations = check_gate(&golden, &current, &tol);
        outcomes.push(GateOutcome {
            workload: name,
            golden,
            current,
            violations,
        });
    }
    if bless {
        std::fs::write(gate_config_path(), tol.to_json())
            .map_err(|e| format!("writing gate.json: {e}"))?;
    }
    Ok(outcomes)
}
