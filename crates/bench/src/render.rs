//! Text rendering of experiment results, paper values alongside measured.

use crate::experiments::*;
use sagegpu_core::edu::modules::render_modules_table;
use sagegpu_core::gcn::experiment::render_scaling_table;

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// E01 — Fig. 1.
pub fn render_fig1() -> String {
    let mut out = header("Fig. 1 — Enrollment per Term (UG / Grad)");
    for (sem, ug, grad) in fig1_enrollment() {
        out.push_str(&format!("{sem:<12} UG {ug:>3}   Grad {grad:>3}\n"));
    }
    out.push_str("paper: Spring 2025 had 15 graduate students; ~39-40 total across F24+S25\n");
    out
}

/// E02 — Fig. 2.
pub fn render_fig2() -> String {
    let mut out = header("Fig. 2 — Grade Distribution");
    out.push_str(&format!(
        "{:<12} {:>4} {:>4} {:>4} {:>4} {:>4}\n",
        "semester", "A", "B", "C", "D", "F"
    ));
    for (sem, counts) in fig2_grades() {
        out.push_str(&format!(
            "{:<12} {:>4} {:>4} {:>4} {:>4} {:>4}\n",
            sem, counts[0], counts[1], counts[2], counts[3], counts[4]
        ));
    }
    out.push_str("paper: F24 majority B; S25 over 60% A; exams 75-80% both semesters\n");
    out
}

/// E03 — Table I.
pub fn render_table1() -> String {
    let mut out = header("Table I — Course Modules");
    out.push_str(&render_modules_table());
    out
}

/// E04 — Fig. 3.
pub fn render_fig3() -> String {
    let mut out = header("Fig. 3 — Evaluation responses (% Never/Seldom/Sometimes/Often/Always)");
    for (q, level, pct) in fig3_evaluations() {
        out.push_str(&format!(
            "{:<13} [{:>4.0} {:>4.0} {:>4.0} {:>4.0} {:>4.0}]  {}\n",
            format!("{level:?}"),
            pct[0],
            pct[1],
            pct[2],
            pct[3],
            pct[4],
            &q[..q.len().min(60)]
        ));
    }
    out.push_str("paper: UG highest on content Qs, grads on skill Qs; lab Qs lowest 'Always'\n");
    out
}

/// E05–E08 — Fig. 4.
pub fn render_fig4() -> String {
    let mut out = header("Fig. 4 — Confidence surveys (counts SD/D/N/A/SA)");
    for (q, sem, wave, s) in fig4_surveys() {
        out.push_str(&format!(
            "{:<11} {:<12} {:<6} {:?}  mean {:.2}\n",
            format!("{q:?}"),
            sem,
            format!("{wave:?}"),
            s.counts,
            s.mean_score()
        ));
    }
    out.push_str("paper anchors: 4a F24 final 2/2/1/2/2; 4a S25 final 0/0/9/7/5;\n");
    out.push_str(
        "4b improves mid->final; 4c dips (smaller dip in S25); 4d S25 has 10 disagreements\n",
    );
    out
}

/// E09 — Fig. 5.
pub fn render_fig5() -> String {
    let mut out = header("Fig. 5 / Appendix A — AWS usage per student");
    out.push_str(&format!(
        "{:<12} {:>9} {:>11} {:>12} {:>8} {:>9}\n",
        "semester", "GPU h", "cost $", "total $", "reaped", "proj h"
    ));
    for u in fig5_usage() {
        out.push_str(&format!(
            "{:<12} {:>9.1} {:>11.2} {:>12.2} {:>8} {:>9.2}\n",
            u.semester,
            u.mean_gpu_hours,
            u.mean_cost_usd,
            u.total_cost_usd,
            u.reaped_instances,
            u.mean_project_hours
        ));
    }
    out.push_str(
        "paper: 40-45 h and $50-60 per student; S25 hours higher (2 extra labs); project < 2 h\n",
    );
    out
}

/// E10 — Table III.
pub fn render_table3() -> String {
    let t = table3_assumptions();
    let mut out = header("Table III — Assumption tests (measured vs paper)");
    out.push_str(&format!(
        "Shapiro-Wilk (Graduate)      W = {:.3}  p = {:.4}   (paper: W = 0.722, p < .001)\n",
        t.grad.w, t.grad.p_value
    ));
    out.push_str(&format!(
        "Shapiro-Wilk (Undergraduate) W = {:.3}  p = {:.4}   (paper: W = 0.898, p = .037)\n",
        t.undergrad.w, t.undergrad.p_value
    ));
    out.push_str(&format!(
        "Levene                       F = {:.3}  p = {:.4}   (paper: F = 2.437, p = .127)\n",
        t.levene.f_statistic, t.levene.p_value
    ));
    out
}

/// E11 — Table IV.
pub fn render_table4() -> String {
    let mut out = header("Table IV — Descriptive statistics (measured vs paper)");
    out.push_str(&format!(
        "{:<14} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}\n",
        "group", "mean", "std", "min", "Q1", "median", "Q3", "max", "n"
    ));
    for (name, d) in table4_descriptives() {
        out.push_str(&format!(
            "{:<14} {:>7.2} {:>8.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>6}\n",
            name, d.mean, d.std_dev, d.min, d.q1, d.median, d.q3, d.max, d.count
        ));
    }
    out.push_str("paper:  Graduate     94.36    6.91   74.38  90.06   97.92  98.80  99.17    20\n");
    out.push_str("paper:  Undergrad    83.51   11.33   53.75  80.79   85.94  91.05  98.54    20\n");
    out
}

/// E12 — Fig. 6.
pub fn render_fig6() -> String {
    let mut out = header("Fig. 6 — Score histograms (bins of 5 over [50, 100])");
    for (name, h) in fig6_histograms() {
        out.push_str(&format!("{name:<14}"));
        for (c, count) in h.centers().iter().zip(&h.counts) {
            out.push_str(&format!(" {:.0}:{:<2}", c, count));
        }
        out.push('\n');
    }
    out.push_str("paper: graduate mass piled at the ceiling; undergrad spread with a low tail\n");
    out
}

/// E13 — Figs. 7–8.
pub fn render_fig7_8() -> String {
    let mut out = header("Figs. 7-8 — Normal Q-Q straightness (correlation)");
    for (name, r, n) in fig7_8_qq() {
        out.push_str(&format!("{name:<14} r = {r:.4}  ({n} points)\n"));
    }
    out.push_str("paper: clear departures from the Q-Q line, stronger for graduates\n");
    out
}

/// E14 — Mann–Whitney.
pub fn render_mwu() -> String {
    let r = mwu_test();
    let mut out = header("Appendix C — Mann-Whitney U (measured vs paper)");
    out.push_str(&format!(
        "U(graduate) = {:.1}  U(undergrad) = {:.1}  p = {:.5}  [{:?}]\n",
        r.u1, r.u2, r.p_value, r.method
    ));
    out.push_str("paper: U = 332.00, p = .0004 — graduates significantly higher\n");
    out
}

/// E15 — Fig. 9.
pub fn render_fig9() -> String {
    let mut out = header("Fig. 9 — Boxplots");
    for (name, b) in fig9_boxplots() {
        out.push_str(&format!(
            "{:<14} whiskers [{:.2}, {:.2}]  box [{:.2}, {:.2}, {:.2}]  outliers {:?}\n",
            name, b.whisker_low, b.whisker_high, b.q1, b.median, b.q3, b.outliers
        ));
    }
    out.push_str("paper: higher median and tighter box for graduates, low outliers present\n");
    out
}

/// E16 — Figs. 10–11.
pub fn render_fig10_11() -> String {
    let mut out = header("Figs. 10-11 — Satisfaction (VeryLow..VeryHigh)");
    for (sem, counts, pct) in fig10_11_satisfaction() {
        out.push_str(&format!(
            "{:<12} counts {:?}  percent [{:.1} {:.1} {:.1} {:.1} {:.1}]\n",
            sem, counts, pct[0], pct[1], pct[2], pct[3], pct[4]
        ));
    }
    out.push_str("paper: F24 87.5% VeryHigh + one VeryLow; S25 60% VeryHigh / 40% High\n");
    out
}

/// E17 — GCN scaling.
pub fn render_gcn() -> String {
    let mut out = header("§III-B — Distributed GCN scaling (Algorithm 1)");
    out.push_str(&render_scaling_table(&gcn_scaling(&[2, 3], 25)));
    out.push_str(
        "paper: minimal speedup from splitting; accuracy improves vs sequential (METIS)\n",
    );
    out
}

/// E18 — partition quality.
pub fn render_partition() -> String {
    let mut out = header("Partitioning quality — METIS vs random");
    out.push_str(&format!(
        "{:>2} {:>11} {:>12} {:>9} {:>14}\n",
        "k", "metis-cut", "random-cut", "balance", "metis/random"
    ));
    for row in partition_sweep(&[2, 4, 8]) {
        out.push_str(&format!(
            "{:>2} {:>11.0} {:>12.0} {:>9.3} {:>14.3}\n",
            row.k, row.metis_cut, row.random_cut, row.metis_balance, row.cut_ratio
        ));
    }
    out.push_str("expected: METIS cut far below random on community graphs\n");
    out
}

/// E19 — matmul sweep.
pub fn render_matmul() -> String {
    let mut out = header("Labs 2-3 / Assignment 1 — Matmul and memory bottleneck");
    out.push_str(&format!(
        "{:>5} {:>12} {:>13} {:>12} {:>10}\n",
        "n", "kernel(us)", "transfer(us)", "GFLOP/s", "xfer-frac"
    ));
    for r in matmul_sweep(&[64, 128, 256, 512, 1024]) {
        out.push_str(&format!(
            "{:>5} {:>12.1} {:>13.1} {:>12.1} {:>10.2}\n",
            r.n, r.kernel_us, r.transfer_us, r.achieved_gflops, r.transfer_fraction
        ));
    }
    out.push_str("expected: achieved GFLOP/s climbs with n; transfers dominate end-to-end\n");
    out
}

/// E20 — RAG sweeps.
pub fn render_rag() -> String {
    let mut out = header("Labs 11-13 / Assignment 4 — RAG retrieval and serving");
    out.push_str("retrieval (corpus 200):\n");
    out.push_str(&format!(
        "{:<16} {:>7} {:>11} {:>10}\n",
        "index", "nprobe", "scan-frac", "recall@5"
    ));
    for r in rag_retrieval_sweep(200, &[1, 2, 4, 10]) {
        out.push_str(&format!(
            "{:<16} {:>7} {:>11.2} {:>10.2}\n",
            r.index, r.nprobe, r.scan_fraction, r.mean_recall_at_5
        ));
    }
    out.push_str("serving (32 queries):\n");
    out.push_str(&format!(
        "{:>6} {:>10} {:>10} {:>9}\n",
        "batch", "p50(us)", "p99(us)", "QPS"
    ));
    for r in rag_serving_sweep(&[1, 2, 4, 8, 16, 32]) {
        out.push_str(&format!(
            "{:>6} {:>10.1} {:>10.1} {:>9.0}\n",
            r.batch, r.p50_us, r.p99_us, r.throughput_qps
        ));
    }
    out.push_str("expected: fewer probes = less scanning at lower recall; batching raises QPS\n");
    out
}

/// A05 — online-serving ablation.
pub fn render_serving() -> String {
    let mut out = header("Ablation — online RAG serving: batch window x cache, under faults");
    out.push_str("64 requests (16 distinct x4), 4 workers, crash 10% / slow 5% / drop 5%:\n");
    out.push_str(&format!(
        "{:>6} {:>10} {:>6} {:>9} {:>9} {:>10} {:>9} {:>9} {:>8} {:>8}\n",
        "batch",
        "window(us)",
        "cache",
        "p50(us)",
        "p99(us)",
        "sim-QPS",
        "wait(us)",
        "hit-rate",
        "mean-b",
        "retries"
    ));
    for r in serving_ablation() {
        out.push_str(&format!(
            "{:>6} {:>10} {:>6} {:>9.1} {:>9.1} {:>10.0} {:>9.1} {:>9.2} {:>8.1} {:>8}\n",
            r.max_batch,
            r.window_us,
            if r.cache { "on" } else { "off" },
            r.p50_us,
            r.p99_us,
            r.sim_qps,
            r.mean_queue_wait_us,
            r.cache_hit_rate,
            r.mean_batch,
            r.retries
        ));
    }
    out.push_str("expected: batching amortizes decode, the warm cache removes repeat retrieval,\n");
    out.push_str("          and injected faults are retried without failing any request\n");
    out
}

/// A06 — residency ablation.
pub fn render_residency() -> String {
    let a = residency_ablation();
    let mut out = header("Ablation — device residency: resident vs naive data movement (A06)");
    out.push_str("GCN: 60 epochs, hidden=32, k=2 over NVLink, METIS partitions:\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>9} {:>8} {:>14} {:>9}\n",
        "mode",
        "h2d(KB)",
        "d2h(KB)",
        "p2p(KB)",
        "sim-time(ms)",
        "loss",
        "acc",
        "bottleneck",
        "hit-ratio"
    ));
    for r in &a.gcn {
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>12.2} {:>9.4} {:>8.3} {:>14} {:>9.2}\n",
            r.mode,
            r.h2d_kb,
            r.d2h_kb,
            r.p2p_kb,
            r.sim_time_ms,
            r.final_loss,
            r.test_accuracy,
            r.bottleneck,
            r.residency_hit_ratio
        ));
    }
    out.push_str(&format!(
        "GCN host-link reduction: {:.1}x  (bit-identical: {})\n\n",
        a.gcn_reduction, a.gcn_identical
    ));
    out.push_str("RAG: 32 queries against a 60-doc x 96-dim index:\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>9}\n",
        "mode", "h2d(KB)", "d2h(KB)", "hit-ratio"
    ));
    for r in &a.rag {
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>10.1} {:>9.2}\n",
            r.mode, r.h2d_kb, r.d2h_kb, r.residency_hit_ratio
        ));
    }
    out.push_str(&format!(
        "RAG host-link reduction: {:.1}x  (identical scores: {})\n",
        a.rag_reduction, a.rag_identical
    ));
    out.push_str("expected: >=5x fewer host-link bytes in both domains, identical outputs,\n");
    out.push_str("          and the resident GCN run classified compute-bound\n");
    out
}

/// A07 — fusion + stream-pipelining ablation. Also refreshes the committed
/// `BENCH_A07.json` artifact at the repository root.
pub fn render_fusion() -> String {
    let a = fusion_ablation();
    let json = fusion_ablation_json(&a);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A07.json");
    let mut out = header("Ablation — fused kernels + stream pipelining vs per-op serial (A07)");
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str("wrote BENCH_A07.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_A07.json: {e}\n")),
    }
    out.push_str("GCN: 40 epochs, hidden=32, k=2 over NVLink, METIS, resident:\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>14} {:>9} {:>8}\n",
        "mode", "launches", "sim-time(ms)", "overhead-share", "loss", "acc"
    ));
    for r in &a.gcn {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12.2} {:>14.3} {:>9.4} {:>8.3}\n",
            r.mode,
            r.kernel_launches,
            r.sim_time_ms,
            r.launch_overhead_fraction,
            r.final_loss,
            r.test_accuracy
        ));
    }
    out.push_str(&format!(
        "GCN: {:.2}x fewer launches, {:.2}x faster  (bit-identical: {})\n\n",
        a.gcn_launch_reduction, a.gcn_speedup, a.gcn_identical
    ));
    out.push_str("RAG: 32 queries against a 60-doc x 96-dim resident index:\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>9}\n",
        "mode", "launches", "sim-time(us)", "overlap"
    ));
    for r in &a.rag {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12.2} {:>9.3}\n",
            r.mode, r.kernel_launches, r.sim_time_us, r.overlap_efficiency
        ));
    }
    out.push_str(&format!(
        "RAG: {:.2}x fewer launches, {:.2}x faster  (identical scores: {})\n",
        a.rag_launch_reduction, a.rag_speedup, a.rag_identical
    ));
    out.push_str("expected: strictly fewer launches and strictly lower makespan in both\n");
    out.push_str("          domains with bit-identical outputs; fusion shrinks the launch-\n");
    out.push_str("          overhead share and pipelining lifts overlap efficiency above 1\n");
    out
}

/// A08 — comm-overlap worker-scaling ablation. Also refreshes the
/// committed `BENCH_A08.json` artifact at the repository root.
pub fn render_comm_scaling() -> String {
    let a = comm_scaling_ablation();
    let json = comm_scaling_json(&a);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A08.json");
    let mut out = header("Ablation — overlapped bucketed all-reduce worker scaling (A08)");
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str("wrote BENCH_A08.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_A08.json: {e}\n")),
    }
    out.push_str("GCN: 25 epochs, hidden=128, 800-node SBM, METIS, resident+fused, Ethernet:\n");
    out.push_str(&format!(
        "{:>3} {:<11} {:>12} {:>8} {:>12} {:>12} {:>9} {:>8} {:>9} {:>7}\n",
        "k",
        "comm",
        "sim-time(ms)",
        "speedup",
        "exposed(ms)",
        "overlap(ms)",
        "exp-frac",
        "buckets",
        "loss",
        "acc"
    ));
    for r in &a.rows {
        out.push_str(&format!(
            "{:>3} {:<11} {:>12.2} {:>8.2} {:>12.3} {:>12.3} {:>9.3} {:>8} {:>9.4} {:>7.3}\n",
            r.workers,
            r.comm,
            r.sim_time_ms,
            r.speedup,
            r.exposed_comm_ms,
            r.overlapped_comm_ms,
            r.comm_exposed_fraction,
            r.buckets_per_epoch,
            r.final_loss,
            r.test_accuracy
        ));
    }
    out.push_str(&format!(
        "speedup at 4 workers: monolithic {:.2}x vs bucketed {:.2}x  (overlap win {:.2}x, bit-identical: {})\n",
        a.monolithic_speedup_at_4, a.bucketed_speedup_at_4, a.overlap_win_at_4, a.identical_all_k
    ));
    out.push_str("expected: monolithic scaling stalls as the exposed Ethernet exchange grows\n");
    out.push_str("          with k; bucketed overlap hides part of it inside backward,\n");
    out.push_str("          strictly beating monolithic at every k >= 2 with identical outputs\n");
    out
}

/// A09 — graph capture/replay ablation. Also refreshes the committed
/// `BENCH_A09.json` artifact at the repository root.
pub fn render_graph() -> String {
    let a = graph_ablation();
    let json = graph_ablation_json(&a);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A09.json");
    let mut out = header("Ablation — graph capture/replay vs eager submission (A09)");
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str("wrote BENCH_A09.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_A09.json: {e}\n")),
    }
    out.push_str("GCN: 40 epochs, hidden=32, k=2 over NVLink, METIS, resident+fused:\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>14} {:>9} {:>8}\n",
        "submit", "launches", "sim-time(ms)", "overhead-share", "loss", "acc"
    ));
    for r in &a.gcn {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12.2} {:>14.3} {:>9.4} {:>8.3}\n",
            r.submit,
            r.kernel_launches,
            r.sim_time_ms,
            r.launch_overhead_fraction,
            r.final_loss,
            r.test_accuracy
        ));
    }
    out.push_str(&format!(
        "GCN: {:.2}x fewer submissions  (bit-identical: {})\n\n",
        a.gcn_launch_reduction, a.gcn_identical
    ));
    out.push_str("RAG: 6 rounds x 48 queries against a 60-doc x 96-dim resident index:\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>12}\n",
        "submit", "launches", "sim-time(us)"
    ));
    for r in &a.rag {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12.2}\n",
            r.submit, r.kernel_launches, r.sim_time_us
        ));
    }
    out.push_str(&format!(
        "RAG: {:.2}x fewer submissions  (identical scores: {})\n",
        a.rag_launch_reduction, a.rag_identical
    ));
    out.push_str("expected: one graph launch per replayed epoch/round amortizes per-kernel\n");
    out.push_str("          launch overhead — the eager fused epoch burns >15% of kernel time\n");
    out.push_str("          on submission; replay collapses that with bit-identical outputs\n");
    out
}

/// A10 — two-tier topology x hierarchical collectives ablation. Also
/// refreshes the committed `BENCH_A10.json` artifact at the repository
/// root.
pub fn render_topology() -> String {
    let a = topology_scaling_ablation();
    let json = topology_scaling_json(&a);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A10.json");
    let mut out = header("Ablation — two-tier topology x hierarchical collectives (A10)");
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str("wrote BENCH_A10.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_A10.json: {e}\n")),
    }
    out.push_str(
        "GCN: 25 epochs, hidden=128, 3200-node SBM, METIS, resident+fused;\n\
         flat = VPC Ethernet everywhere, hier = NVLink islands of 4 bridged by Ethernet:\n",
    );
    out.push_str(&format!(
        "{:>3} {:<13} {:<11} {:<5} {:>12} {:>8} {:>12} {:>12} {:>9} {:>9} {:>9} {:>8} {:>9} {:>7}\n",
        "k",
        "topology",
        "comm",
        "wire",
        "sim-time(ms)",
        "speedup",
        "exposed(ms)",
        "overlap(ms)",
        "exp-frac",
        "intra",
        "inter",
        "buckets",
        "loss",
        "acc"
    ));
    for r in &a.rows {
        out.push_str(&format!(
            "{:>3} {:<13} {:<11} {:<5} {:>12.2} {:>8.2} {:>12.3} {:>12.3} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>9.4} {:>7.3}\n",
            r.workers,
            r.topology,
            r.comm,
            r.compression,
            r.sim_time_ms,
            r.speedup,
            r.exposed_comm_ms,
            r.overlapped_comm_ms,
            r.comm_exposed_fraction,
            r.comm_exposed_fraction_intra,
            r.comm_exposed_fraction_inter,
            r.buckets_per_epoch,
            r.final_loss,
            r.test_accuracy
        ));
    }
    out.push_str(&format!(
        "hier+bucketed exposed comm fraction at k=8: {:.3}  (bit-identical f32 arms: {})\n",
        a.hier_bucketed_exposed_fraction_at_8, a.identical_all_k
    ));
    out.push_str(&format!(
        "speedup vs flat-monolithic: {:.2}x at k=8 -> {:.2}x at k=16\n",
        a.speedup_vs_mono_at_8, a.speedup_vs_mono_at_16
    ));
    out.push_str(&format!(
        "fp16 wire: {:.2}x fewer peer-link bytes at k=8, max final-loss drift {:.2e}\n",
        a.fp16_wire_reduction_at_8, a.fp16_max_final_loss_drift
    ));
    out.push_str("expected: the flat Ethernet exchange keeps collapsing past k=8 while the\n");
    out.push_str("          hierarchy folds most ring steps onto NVLink and hides the rest,\n");
    out.push_str("          keeping the exposed fraction under 0.25 at k=8 and widening its\n");
    out.push_str("          lead through k=16 with bit-identical uncompressed training\n");
    out
}

/// A11 — trace record + what-if replay. Also refreshes the committed
/// `BENCH_A11.json` artifact at the repository root.
pub fn render_whatif() -> String {
    let a = whatif_ablation();
    let json = whatif_json(&a);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A11.json");
    let mut out = header("Ablation — trace what-if replay (A11)");
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str("wrote BENCH_A11.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_A11.json: {e}\n")),
    }
    out.push_str(&format!(
        "recorded: k={} hierarchical+bucketed GCN epoch trace — {:.2} ms, {} submissions,\n\
         {} kernel launches (identity replay exact: {})\n",
        a.workers,
        a.recorded_ms,
        a.recorded_submissions,
        a.recorded_kernel_launches,
        a.identity_exact
    ));
    out.push_str(&format!(
        "{:<18} {:>13} {:>11} {:>9} {:>11}\n",
        "arm", "predicted(ms)", "fresh(ms)", "err", "vs-rec"
    ));
    for r in &a.arms {
        let fresh = r.fresh_ms.map_or("-".to_owned(), |v| format!("{v:.2}"));
        let err = r.err_pct.map_or("-".to_owned(), |v| format!("{v:.2}%"));
        out.push_str(&format!(
            "{:<18} {:>13.2} {:>11} {:>9} {:>10.1}%\n",
            r.arm, r.predicted_ms, fresh, err, r.delta_vs_recorded_pct
        ));
    }
    out.push_str(&format!(
        "NVLink-everywhere prediction error vs fresh run: {:.2}%\n",
        a.nvlink_err_pct
    ));
    out.push_str("expected: replay re-prices the recorded schedule without re-running the\n");
    out.push_str("          workload — identity is exact, interconnect what-ifs land within\n");
    out.push_str("          5% of fresh ground-truth runs, and halving the comm streams\n");
    out.push_str("          serializes the bucketed exchange (predicted-only arm)\n");
    out
}

/// A12 — sharded IVF-PQ retrieval at scale. Also refreshes the committed
/// `BENCH_A12.json` artifact at the repository root.
pub fn render_retrieval() -> String {
    let a = retrieval_scale_ablation();
    let json = retrieval_json(&a);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A12.json");
    let mut out = header("Ablation — retrieval at scale: sharded IVF-PQ (A12)");
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str("wrote BENCH_A12.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_A12.json: {e}\n")),
    }
    out.push_str(&format!(
        "corpus {} docs x dim {}, {} queries, nlist {}, PQ m={} nbits={}\n",
        a.corpus, a.dim, a.queries, a.nlist, a.pq_m, a.pq_nbits
    ));
    out.push_str(&format!(
        "{:<9} {:>7} {:>7} {:>10} {:>12} {:>10}\n",
        "arm", "nprobe", "shards", "recall@10", "dev-bytes", "search(ms)"
    ));
    for r in &a.arms {
        out.push_str(&format!(
            "{:<9} {:>7} {:>7} {:>10.3} {:>12} {:>10.3}\n",
            r.arm, r.nprobe, r.shards, r.recall_at_10, r.device_bytes, r.search_ms
        ));
    }
    out.push_str(&format!(
        "memory: flat {} B -> IVF-PQ {} B ({:.1}x smaller); best PQ recall@10 {:.3}\n",
        a.flat_bytes, a.pq_bytes, a.memory_reduction, a.best_pq_recall
    ));
    out.push_str(&format!(
        "sharded speedup 1->4 shards at nprobe 16: {:.2}x (hits bit-identical: {})\n",
        a.sharded_speedup_4x, a.sharded_identical
    ));
    out.push_str("expected: PQ codes shrink the resident index ~10x while exact re-ranking\n");
    out.push_str("          of the merged top candidates keeps recall@10 above 0.9 at some\n");
    out.push_str("          swept nprobe; scattering the coded lists over 4 devices cuts\n");
    out.push_str("          batch-search makespan at least 2x with exactly the same hits,\n");
    out.push_str("          because refine runs after the total-order merge tree\n");
    out
}

/// A13 — tiered-residency serving under device budgets. Also refreshes
/// the committed `BENCH_A13.json` artifact at the repository root.
pub fn render_residency_serving() -> String {
    let a = residency_serving_ablation();
    let json = residency_serving_json(&a);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_A13.json");
    let mut out = header("Ablation — tiered-residency serving under device budgets (A13)");
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str("wrote BENCH_A13.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_A13.json: {e}\n")),
    }
    out.push_str(&format!(
        "corpus {} docs x dim {}, {} shards, nlist {}, nprobe {}, {} requests over {} \
         distinct queries, list codes {} B\n",
        a.corpus, a.dim, a.shards, a.nlist, a.nprobe, a.requests, a.distinct_queries, a.code_bytes
    ));
    out.push_str(&format!(
        "{:<8} {:>7} {:>10} {:>9} {:>9} {:>6} {:>10} {:>11} {:>7} {:>6}\n",
        "skew",
        "budget%",
        "budget-B",
        "sim-qps",
        "p99(ms)",
        "hit%",
        "link-B",
        "highwater-B",
        "ok",
        "ident"
    ));
    for r in &a.arms {
        out.push_str(&format!(
            "{:<8} {:>7} {:>10} {:>9.1} {:>9.3} {:>6.1} {:>10} {:>11} {:>7} {:>6}\n",
            r.skew,
            r.budget_pct,
            r.budget_bytes,
            r.sim_qps,
            r.p99_retrieve_ms,
            r.hit_ratio * 100.0,
            r.host_link_bytes,
            r.high_water_bytes,
            r.budget_ok,
            r.hits_identical
        ));
    }
    out.push_str(&format!(
        "QPS at 25% budget (zipf) vs fully resident: {:.2}x\n",
        a.qps_ratio_25_zipf
    ));
    out.push_str(&format!(
        "profiler attribution of the 25%-zipf arm: promotion H2D {} B, exposed fraction \
         {:.2}, grow-budget/shrink-nprobe advice fired: {}\n",
        a.promotion_h2d_bytes, a.promotion_exposed_fraction, a.advice_fired
    ));
    out.push_str("expected: hits stay bit-identical to the fully-resident index at every\n");
    out.push_str("          budget (residency moves bytes, never values); the resident\n");
    out.push_str("          high-water never exceeds the budget in force; Zipfian skew\n");
    out.push_str("          concentrates probes on hot lists so its hit ratio beats the\n");
    out.push_str("          uniform stream's at tight budgets; and at 25% budget serving\n");
    out.push_str("          keeps at least half the unbudgeted throughput\n");
    out
}

/// S01 — RL agents.
pub fn render_rl() -> String {
    let mut out = header("Supplementary — Labs 8/10 + Assignment 3: RL agents");
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} {:>9} {:>7} {:>9}\n",
        "agent", "early-ret", "late-ret", "greedy", "steps", "sim(ms)"
    ));
    for r in rl_comparison() {
        out.push_str(&format!(
            "{:<22} {:>9.2} {:>9.2} {:>9.2} {:>7} {:>9.2}\n",
            r.agent, r.early_return, r.late_return, r.greedy_return, r.greedy_steps, r.sim_ms
        ));
    }
    out.push_str("expected: all three agents improve and reach the goal greedily\n");
    out
}

/// S02 — distributed dataframes.
pub fn render_df() -> String {
    let mut out = header("Supplementary — Lab 6 / Assignment 2: distributed group-by");
    out.push_str(&format!(
        "{:>8} {:>9} {:>14}\n",
        "workers", "sim(ms)", "max-abs-error"
    ));
    for r in df_scaling(20_000, &[1, 2, 4]) {
        out.push_str(&format!(
            "{:>8} {:>9.2} {:>14.2e}\n",
            r.workers, r.sim_ms, r.max_abs_error
        ));
    }
    out.push_str(
        "expected: two-phase aggregation is exact; per-worker time shrinks with workers\n",
    );
    out
}

/// A01 — interconnect ablation.
pub fn render_interconnect() -> String {
    let mut out = header("Ablation — Algorithm 1 across interconnects (k=3, METIS)");
    out.push_str(&format!(
        "{:<20} {:>12} {:>9}\n",
        "link", "sim-time(ms)", "speedup"
    ));
    for r in interconnect_ablation(15) {
        out.push_str(&format!(
            "{:<20} {:>12.2} {:>9.2}\n",
            r.link, r.sim_time_ms, r.speedup_vs_sequential
        ));
    }
    out.push_str(
        "expected: the course's VPC Ethernet is the slowest; better links recover speedup\n",
    );
    out.push_str("note: speedup can exceed k because METIS partitioning drops cut edges,\n");
    out.push_str("      shrinking total aggregation work relative to the full-graph baseline\n");
    out
}

/// A02 — scheduler-policy ablation.
pub fn render_scheduler() -> String {
    let mut out = header("Ablation — taskflow scheduling policy (skewed fork-join graph)");
    out.push_str(&format!(
        "{:>8} {:>9} {:>14} {:>12}\n",
        "workers", "fifo", "critical-path", "lower-bound"
    ));
    for r in scheduler_ablation(&[1, 2, 4]) {
        out.push_str(&format!(
            "{:>8} {:>9.1} {:>14.1} {:>12.1}\n",
            r.workers, r.fifo_makespan, r.critical_path_makespan, r.lower_bound
        ));
    }
    out.push_str(
        "expected: critical-path ordering tracks the lower bound; FIFO straggles the chain\n",
    );
    out
}

/// A04 — dispatch-mode ablation on the real cluster.
pub fn render_dispatch() -> String {
    let mut out =
        header("Ablation — cluster dispatch: round-robin vs work stealing (imbalanced bag)");
    out.push_str(&format!(
        "{:<16} {:>9} {:>8} {:>11}\n",
        "dispatch", "wall(ms)", "steals", "imbalance"
    ));
    for r in dispatch_ablation(4, 48) {
        out.push_str(&format!(
            "{:<16} {:>9.2} {:>8} {:>11.2}\n",
            r.dispatch, r.wall_ms, r.steals, r.busy_imbalance
        ));
    }
    out.push_str("expected: round-robin piles the long tasks on worker 0; stealing drains them\n");
    out.push_str("          (lower wall time, steals > 0, busy imbalance near 1.0)\n");
    out
}

/// A03 — access-pattern / tiling ablation.
pub fn render_access() -> String {
    let mut out = header("Ablation — memory access patterns and tiling (cost model)");
    out.push_str(&format!(
        "{:<32} {:>10} {:>10}\n",
        "kernel", "sim(us)", "slowdown"
    ));
    for r in access_ablation() {
        out.push_str(&format!(
            "{:<32} {:>10.1} {:>9.1}x\n",
            r.kernel, r.sim_us, r.slowdown_vs_best
        ));
    }
    out.push_str("expected: coalesced < strided < random; tiling collapses naive matmul traffic\n");
    out.push_str("note: the simulator has no cache model, so the naive-matmul penalty is an\n");
    out.push_str("      upper bound; real L2 caches absorb part of the re-read traffic\n");
    out
}

/// E21 — pricing.
pub fn render_pricing() -> String {
    let mut out = header("Appendix A — Pricing reconciliation");
    for (label, modeled, paper) in pricing_reconciliation() {
        out.push_str(&format!(
            "{label:<28} modeled ${modeled:.3}/h   paper ${paper:.3}/h\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_renderer_produces_nonempty_output() {
        for (name, text) in [
            ("fig1", render_fig1()),
            ("fig2", render_fig2()),
            ("table1", render_table1()),
            ("fig3", render_fig3()),
            ("fig5", render_fig5()),
            ("table3", render_table3()),
            ("table4", render_table4()),
            ("fig6", render_fig6()),
            ("fig7_8", render_fig7_8()),
            ("mwu", render_mwu()),
            ("fig9", render_fig9()),
            ("fig10_11", render_fig10_11()),
            ("partition", render_partition()),
            ("pricing", render_pricing()),
            ("dispatch", render_dispatch()),
        ] {
            assert!(text.len() > 80, "{name} output too short");
            assert!(text.contains("==="), "{name} missing header");
        }
    }

    #[test]
    fn table3_render_cites_paper_values() {
        let t = render_table3();
        assert!(t.contains("0.722"));
        assert!(t.contains("2.437"));
    }
}
