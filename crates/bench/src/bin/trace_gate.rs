//! `trace_gate` — the deterministic perf-regression gate over recorded
//! command traces.
//!
//! Usage:
//! ```text
//! trace_gate            # record the gated workloads, diff vs tests/golden/
//! trace_gate --bless    # re-record the goldens (and gate.json) instead
//! ```
//!
//! Exits non-zero when any workload violates the pinned tolerances
//! (sim-time ±1%, submission count exact, exposed-comm fraction +0.02).

use sagegpu_bench::gate;

fn main() {
    let bless = std::env::args().skip(1).any(|a| a == "--bless");
    let outcomes = match gate::run_gate(bless) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("trace_gate: {e}");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    for o in &outcomes {
        if bless {
            println!(
                "blessed {:<10} sim-time {} ns, {} submissions, exposed-comm {:.4}",
                o.workload,
                o.current.sim_time_ns,
                o.current.submissions,
                o.current.exposed_comm_fraction
            );
            continue;
        }
        if o.violations.is_empty() {
            println!(
                "PASS {:<10} sim-time {} ns (golden {}), {} submissions, exposed-comm {:.4}",
                o.workload,
                o.current.sim_time_ns,
                o.golden.sim_time_ns,
                o.current.submissions,
                o.current.exposed_comm_fraction
            );
        } else {
            failed = true;
            println!("FAIL {}", o.workload);
            for v in &o.violations {
                println!("     {v}");
            }
        }
    }
    if failed {
        eprintln!("trace_gate: regression detected; if intentional, re-record with --bless");
        std::process::exit(1);
    }
}
