//! `repro` — regenerates every table and figure of the reproduced paper.
//!
//! Usage:
//! ```text
//! repro                 # run every experiment
//! repro --exp table3    # one experiment
//! repro --list          # list experiment ids
//! ```

use sagegpu_bench::render;

/// (id, description, renderer).
type Experiment = (&'static str, &'static str, fn() -> String);

fn experiments() -> Vec<Experiment> {
    vec![
        (
            "fig1",
            "Enrollment per term",
            render::render_fig1 as fn() -> String,
        ),
        ("fig2", "Grade distributions", render::render_fig2),
        ("table1", "Course modules", render::render_table1),
        ("fig3", "End-of-semester evaluations", render::render_fig3),
        ("fig4", "Confidence surveys (4a-4d)", render::render_fig4),
        ("fig5", "AWS usage and cost", render::render_fig5),
        ("table3", "Shapiro-Wilk + Levene", render::render_table3),
        ("table4", "Descriptive statistics", render::render_table4),
        ("fig6", "Score histograms", render::render_fig6),
        ("fig7_8", "Q-Q straightness", render::render_fig7_8),
        ("mwu", "Mann-Whitney U", render::render_mwu),
        ("fig9", "Boxplots", render::render_fig9),
        ("fig10_11", "Satisfaction", render::render_fig10_11),
        ("gcn", "Distributed GCN scaling", render::render_gcn),
        (
            "partition",
            "METIS vs random partitioning",
            render::render_partition,
        ),
        ("matmul", "Matmul memory bottleneck", render::render_matmul),
        ("rag", "RAG retrieval + serving", render::render_rag),
        ("pricing", "Appendix A pricing", render::render_pricing),
        ("rl", "RL agents (Labs 8/10, Asgn 3)", render::render_rl),
        ("df", "Distributed dataframes (Lab 6)", render::render_df),
        (
            "interconnect",
            "Ablation: Algorithm 1 interconnects",
            render::render_interconnect,
        ),
        (
            "scheduler",
            "Ablation: scheduling policy",
            render::render_scheduler,
        ),
        (
            "dispatch",
            "Ablation: work stealing vs round-robin",
            render::render_dispatch,
        ),
        (
            "access",
            "Ablation: access patterns & tiling",
            render::render_access,
        ),
        (
            "serving",
            "Ablation: online serving (A05)",
            render::render_serving,
        ),
        (
            "residency",
            "Ablation: device residency (A06)",
            render::render_residency,
        ),
        (
            "fusion",
            "Ablation: fused kernels + stream pipelining (A07)",
            render::render_fusion,
        ),
        (
            "scaling",
            "Ablation: comm overlap x worker scaling (A08)",
            render::render_comm_scaling,
        ),
        (
            "graph",
            "Ablation: graph capture/replay (A09)",
            render::render_graph,
        ),
        (
            "topology",
            "Ablation: two-tier topology x hierarchical collectives (A10)",
            render::render_topology,
        ),
        (
            "whatif",
            "Ablation: trace what-if replay (A11)",
            render::render_whatif,
        ),
        (
            "retrieval",
            "Ablation: sharded IVF-PQ retrieval at scale (A12)",
            render::render_retrieval,
        ),
        (
            "residency_serving",
            "Ablation: tiered-residency serving under device budgets (A13)",
            render::render_residency_serving,
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exps = experiments();

    if args.iter().any(|a| a == "--list") {
        for (id, desc, _) in &exps {
            println!("{id:<10} {desc}");
        }
        return;
    }

    let selected: Option<&str> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str());

    let mut matched = false;
    for (id, _, f) in &exps {
        if selected.is_none_or(|s| s == *id) {
            print!("{}", f());
            matched = true;
        }
    }
    if !matched {
        eprintln!(
            "unknown experiment '{}'; try --list",
            selected.unwrap_or_default()
        );
        std::process::exit(1);
    }
}
