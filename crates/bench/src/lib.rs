//! Experiment runners shared by the `repro` binary and the Criterion
//! benches. Each public function regenerates one of the paper's tables or
//! figures (see DESIGN.md's experiment index E01–E21) and returns printable
//! rows; the binary formats them next to the paper's reported values.

pub mod experiments;
pub mod gate;
pub mod render;

pub use experiments::*;
